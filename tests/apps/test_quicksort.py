"""Tests for the Quicksort application."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, SimRuntime, X10WS, paper_cluster
from repro.apps.quicksort import QuicksortApp
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


class TestCorrectness:
    def test_sorts_correctly_under_distws(self):
        app = QuicksortApp(n=20_000, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        out = app.result()
        assert np.array_equal(out, np.sort(app._input))

    def test_sorts_correctly_under_x10ws(self):
        app = QuicksortApp(n=20_000, seed=3)
        app.run(SimRuntime(small_cluster(), X10WS(), seed=1))
        assert np.array_equal(app.result(), app.sequential())

    def test_single_place_single_worker(self):
        spec = ClusterSpec(n_places=1, workers_per_place=1, max_threads=2)
        app = QuicksortApp(n=5_000, seed=3)
        app.run(SimRuntime(spec, DistWS(), seed=1))
        assert np.array_equal(app.result(), app.sequential())

    def test_result_before_run_rejected(self):
        app = QuicksortApp(n=1_000)
        with pytest.raises(AppError):
            app.result()

    def test_apps_are_single_use(self):
        app = QuicksortApp(n=5_000, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        with pytest.raises(AppError):
            app.run(SimRuntime(small_cluster(), DistWS(), seed=1))

    def test_validation_rejects_corrupted_result(self):
        app = QuicksortApp(n=5_000, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1),
                validate=False)
        key = next(iter(app._buckets))
        if len(app._buckets[key]):
            app._buckets[key] = app._buckets[key][:-1]
            with pytest.raises(AppError):
                app.validate()

    def test_parameter_validation(self):
        with pytest.raises(AppError):
            QuicksortApp(n=4)


class TestTaskStructure:
    def test_phases_present(self):
        app = QuicksortApp(n=20_000, seed=3)
        stats = app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        labels = stats.tasks_by_label
        assert labels["qsort-local"] > 0
        assert labels["qsort-lmerge"] == 4
        assert labels["qsort-pivot"] == 1
        assert labels["qsort-split"] == 4
        assert labels["qsort-bucket"] > 0

    def test_deterministic_given_seeds(self):
        def run():
            app = QuicksortApp(n=10_000, seed=5)
            stats = app.run(SimRuntime(small_cluster(), DistWS(), seed=9))
            return (stats.makespan_cycles, stats.steals.total_steals,
                    stats.messages)
        assert run() == run()

    def test_skew_increases_imbalance(self):
        """Higher skew => more uneven bucket tasks => a wider busy-time
        spread under the no-remote-steal baseline."""
        def spread(skew):
            app = QuicksortApp(n=40_000, skew=skew, seed=5)
            stats = app.run(SimRuntime(paper_cluster(), X10WS(), seed=1))
            return stats.utilization_spread()
        assert spread(2.5) > spread(0.0)
