"""Integration matrix: every paper app completes and validates under
every scheduler (test scale, small cluster)."""

from __future__ import annotations

import pytest

from repro import ClusterSpec, SimRuntime, make_scheduler
from repro.apps import PAPER_APPS, make_app

SCHEDULERS = ("X10WS", "DistWS", "DistWS-NS", "RandomWS", "Lifeline")


@pytest.mark.parametrize("app_name", PAPER_APPS)
@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_app_completes_and_validates(app_name, sched_name):
    spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
    app = make_app(app_name, scale="test", seed=11)
    rt = SimRuntime(spec, make_scheduler(sched_name), seed=2)
    stats = app.run(rt)  # validates internally
    assert stats.tasks_executed == stats.tasks_spawned
    assert stats.makespan_cycles > 0


@pytest.mark.parametrize("app_name", PAPER_APPS)
def test_single_worker_equals_work_sum(app_name):
    """On one worker the makespan is within overhead of the pure work."""
    spec = ClusterSpec(n_places=1, workers_per_place=1, max_threads=2)
    app = make_app(app_name, scale="test", seed=11)
    rt = SimRuntime(spec, make_scheduler("X10WS"), seed=2)
    stats = app.run(rt)
    assert stats.makespan_cycles >= stats.work_sum_cycles
    assert stats.makespan_cycles <= stats.work_sum_cycles * 1.3
