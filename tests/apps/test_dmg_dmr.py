"""Tests for Delaunay mesh generation and refinement applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, SimRuntime, X10WS
from repro.apps.delaunay.generation import DMGApp
from repro.apps.delaunay.refinement import DMRApp
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


class TestDMG:
    def small_app(self, **kw):
        defaults = dict(n=500, n_seeds=12, bucket_split=24, seed=5)
        defaults.update(kw)
        return DMGApp(**defaults)

    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS])
    def test_produces_the_delaunay_mesh(self, sched_cls):
        app = self.small_app()
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
        mesh = app.result()
        assert mesh.points_inserted == app.n
        assert mesh.euler_check()
        # validate() compares against the sequential oracle for n<=4000;
        # run() already called it, so reaching here means it matched.

    def test_mesh_equals_sequential_oracle(self):
        app = self.small_app(n=300)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        assert app._coord_triangles(app.result()) == app.sequential()

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            self.small_app().result()

    def test_invalid_params(self):
        with pytest.raises(AppError):
            DMGApp(n=8)

    def test_bucket_tasks_spawned(self):
        app = self.small_app()
        stats = app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        assert stats.tasks_by_label["dmg-bucket"] > 0
        assert stats.tasks_by_label["dmg-seed"] == 1

    def test_points_stay_in_bounds(self):
        app = self.small_app(n=1000)
        assert (app._points >= 0).all()
        assert (app._points <= 100).all()


class TestDMR:
    def small_app(self, **kw):
        defaults = dict(n_points=400, min_angle_deg=24.0, chunk=4, seed=5)
        defaults.update(kw)
        return DMRApp(**defaults)

    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS])
    def test_refines_all_bad_triangles(self, sched_cls):
        app = self.small_app()
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
        mesh = app.result()
        assert app.bad_triangles(mesh) == []
        assert mesh.check_delaunay(vertices_sample=32)

    def test_sequential_refinement_terminates(self):
        app = self.small_app()
        mesh = app.sequential()
        assert app.bad_triangles(mesh) == []
        assert app._insertions > 0

    def test_refinement_adds_points(self):
        app = self.small_app()
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        assert app.result().points_inserted > app.n_points

    def test_angle_quality_improves(self):
        app = self.small_app()
        before = app._build_initial_mesh()
        bad_before = len(app.bad_triangles(before))
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        assert bad_before > 0
        assert app.bad_triangles(app.result()) == []

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            self.small_app().result()

    def test_invalid_params(self):
        with pytest.raises(AppError):
            DMRApp(min_angle_deg=45.0)  # termination not guaranteed
        with pytest.raises(AppError):
            DMRApp(n_points=4)

    def test_deterministic_given_seeds(self):
        def run():
            app = self.small_app()
            app.run(SimRuntime(small_cluster(), DistWS(), seed=9))
            mesh = app.result()
            return (mesh.points_inserted, len(mesh.triangles))
        assert run() == run()
