"""Tests for UTS and the §VIII.2 micro applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, LifelineWS, RandomWS, SimRuntime
from repro.apps.micro import (
    MICRO_APPS,
    MatrixChainMicro,
    MergeSortMicro,
    MonteCarloPiMicro,
    RandomAccessMicro,
    SkylineMatMulMicro,
)
from repro.apps.uts import UTSApp, _child_count
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


class TestUTSTree:
    def test_child_count_deterministic(self):
        a = _child_count(1, "root.0", 3, 4, 0.8, 18)
        b = _child_count(1, "root.0", 3, 4, 0.8, 18)
        assert a == b

    def test_max_depth_cuts_tree(self):
        assert _child_count(1, "x", 18, 4, 0.8, 18) == 0

    def test_tree_is_unbalanced(self):
        """Sibling subtree sizes differ strongly (the point of UTS)."""
        app = UTSApp(decay=0.84, seed=1)

        def subtree(node_id, depth):
            count = 1
            for c in range(app._children_of(node_id, depth)):
                count += subtree(f"{node_id}.{c}", depth + 1)
            return count

        kids = app._children_of("root", 0)
        sizes = [subtree(f"root.{c}", 1) for c in range(kids)]
        assert len(sizes) >= 2
        assert max(sizes) >= 3 * max(1, min(sizes))

    def test_sequential_count_positive(self):
        assert UTSApp(decay=0.75, seed=2).sequential() > 1


class TestUTSApp:
    @pytest.mark.parametrize("sched_cls", [DistWS, RandomWS, LifelineWS])
    def test_counts_match_sequential(self, sched_cls):
        app = UTSApp(decay=0.75, seed=2)
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=3))
        assert app.result() == app.sequential()

    def test_invalid_params(self):
        with pytest.raises(AppError):
            UTSApp(b0=0)
        with pytest.raises(AppError):
            UTSApp(decay=0.0)

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            UTSApp().result()


class TestMicroApps:
    @pytest.mark.parametrize("app_cls", MICRO_APPS)
    def test_validates_under_distws(self, app_cls):
        app = app_cls(n_tasks=40, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        # run() validates; spot-check output size too.
        assert len(app.result()) == 40

    def test_granularities_match_paper_order(self):
        """Paper §VIII.2: 0.12, 0.93, 0.005, 0.09, 0.006 ms."""
        g = [cls.granularity_ms for cls in MICRO_APPS]
        assert g == [0.12, 0.93, 0.005, 0.09, 0.006]

    def test_pi_estimate_reasonable(self):
        app = MonteCarloPiMicro(n_tasks=400, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        assert abs(app.pi_estimate() - np.pi) < 0.15

    def test_mergesort_tasks_sorted(self):
        app = MergeSortMicro(n_tasks=10, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        for arr in app.result().values():
            assert (np.diff(arr) >= 0).all()

    def test_invalid_n_tasks(self):
        with pytest.raises(AppError):
            MergeSortMicro(n_tasks=0)

    def test_matchain_value_positive(self):
        app = MatrixChainMicro(n_tasks=5, seed=3)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=1))
        assert all(v > 0 for v in app.result().values())
