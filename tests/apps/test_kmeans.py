"""Tests for the k-means application."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, DistWSNS, SimRuntime, X10WS
from repro.apps.kmeans import KMeansApp
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


def small_app(**kw):
    defaults = dict(n=2_000, k=3, iterations=3, subchunks_per_place=6,
                    seed=5)
    defaults.update(kw)
    return KMeansApp(**defaults)


class TestCorrectness:
    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS, DistWSNS])
    def test_matches_oracle_bit_exact(self, sched_cls):
        app = small_app()
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
        assert np.array_equal(app.result(), app.sequential())

    def test_single_worker(self):
        spec = ClusterSpec(n_places=1, workers_per_place=1, max_threads=2)
        app = small_app()
        app.run(SimRuntime(spec, DistWS(), seed=2))
        assert np.array_equal(app.result(), app.sequential())

    def test_centroids_move_from_init(self):
        app = small_app()
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        assert not np.allclose(app.result(), app._init_centroids)

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            small_app().result()

    def test_invalid_params_rejected(self):
        with pytest.raises(AppError):
            KMeansApp(n=2, k=4)
        with pytest.raises(AppError):
            KMeansApp(iterations=0)


class TestStructure:
    def test_partition_covers_everything(self):
        app = small_app()
        parts = app._partition(4)
        covered = sorted(
            i for lo, hi in parts for i in range(lo, hi))
        assert covered == list(range(app.n))

    def test_task_counts(self):
        app = small_app()
        stats = app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        labels = stats.tasks_by_label
        assert labels["kmeans-reduce"] == 3
        assert labels["kmeans-assign"] > 0
        assert labels["kmeans-combine"] > 0

    def test_weights_positive(self):
        app = small_app()
        assert (app._weights > 0).all()

    def test_uneven_per_place_weight(self):
        """The spatially correlated weights must create place imbalance."""
        app = KMeansApp(n=48_000, seed=5)
        from repro.cluster.memory import block_distribution
        totals = [app._weights[c.start:c.stop].sum()
                  for c in block_distribution(app.n, 16)]
        assert max(totals) / min(totals) > 2.0
