"""Tests for agglomerative clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, SimRuntime, X10WS
from repro.apps.agglomerative import AgglomerativeApp, agglomerate
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


def small_app(**kw):
    defaults = dict(n=600, n_regions=24, region_clusters=6, k=4, seed=5)
    defaults.update(kw)
    return AgglomerativeApp(**defaults)


class TestAgglomerateCore:
    def test_merges_to_target_count(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(40, 2))
        c, w, merges = agglomerate(pts, np.ones(40), 5)
        assert len(c) == 5
        assert len(merges) == 35
        assert w.sum() == pytest.approx(40)

    def test_no_merge_needed(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        c, w, merges = agglomerate(pts, np.ones(2), 2)
        assert len(c) == 2
        assert merges == []

    def test_nearest_pair_merged_first(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [50.0, 50.0]])
        c, w, merges = agglomerate(pts, np.ones(3), 2)
        assert merges[0] == pytest.approx(0.1)
        # merged centroid is the midpoint of the close pair
        assert any(np.allclose(ci, [0.05, 0.0]) for ci in c)

    def test_weighted_centroid(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0]])
        c, w, _ = agglomerate(pts, np.array([2.0, 1.0]), 1)
        assert np.allclose(c[0], [1.0, 0.0])
        assert w[0] == pytest.approx(3.0)

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(30, 2))
        a = agglomerate(pts, np.ones(30), 4)
        b = agglomerate(pts, np.ones(30), 4)
        assert np.array_equal(a[0], b[0])
        assert a[2] == b[2]


class TestApp:
    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS])
    def test_matches_oracle(self, sched_cls):
        app = small_app()
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
        got_c, got_w = app.result()
        want_c, want_w = app.sequential()
        assert np.array_equal(got_c, want_c)
        assert np.array_equal(got_w, want_w)

    def test_weight_conservation(self):
        app = small_app()
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        _, w = app.result()
        assert w.sum() == pytest.approx(app.n)

    def test_single_region_equals_classic(self):
        app = small_app(n=80, n_regions=1, region_clusters=4, k=4)
        # With one region the regionalised algorithm degenerates to a
        # single global agglomeration pass down to region_clusters (=k).
        got_c, got_w = app.sequential()
        want_c, want_w = app.sequential_classic()
        assert np.allclose(got_c, want_c)
        assert np.allclose(got_w, want_w)

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            small_app().result()

    def test_invalid_params(self):
        with pytest.raises(AppError):
            AgglomerativeApp(n=4)
        with pytest.raises(AppError):
            AgglomerativeApp(k=100, region_clusters=10)

    def test_regions_cover_all_points(self):
        app = small_app()
        covered = sorted(i for lo, hi in app._regions
                         for i in range(lo, hi))
        assert covered == list(range(app.n))
