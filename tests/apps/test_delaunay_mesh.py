"""Unit and property tests for the Delaunay substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.delaunay.geometry import (
    circumcenter,
    in_circle,
    is_ccw,
    min_angle,
    orient2d,
    point_in_triangle,
    triangle_angles,
)
from repro.apps.delaunay.mesh import DelaunayMesh
from repro.errors import AppError


class TestPredicates:
    def test_orient2d_signs(self):
        assert orient2d((0, 0), (1, 0), (0, 1)) > 0   # CCW
        assert orient2d((0, 0), (0, 1), (1, 0)) < 0   # CW
        assert orient2d((0, 0), (1, 1), (2, 2)) == 0  # collinear

    def test_in_circle_basic(self):
        a, b, c = (0, 0), (1, 0), (0, 1)
        assert in_circle(a, b, c, (0.4, 0.4))
        assert not in_circle(a, b, c, (5, 5))

    def test_circumcenter_equidistant(self):
        a, b, c = (0, 0), (4, 0), (1, 3)
        cc = circumcenter(a, b, c)
        ra = math.dist(cc, a)
        assert math.dist(cc, b) == pytest.approx(ra)
        assert math.dist(cc, c) == pytest.approx(ra)

    def test_circumcenter_degenerate_rejected(self):
        with pytest.raises(ZeroDivisionError):
            circumcenter((0, 0), (1, 1), (2, 2))

    def test_angles_sum_to_180(self):
        angles = triangle_angles((0, 0), (5, 1), (2, 4))
        assert sum(angles) == pytest.approx(180.0)

    def test_equilateral_min_angle(self):
        a, b, c = (0, 0), (1, 0), (0.5, math.sqrt(3) / 2)
        assert min_angle(a, b, c) == pytest.approx(60.0)

    def test_point_in_triangle(self):
        a, b, c = (0, 0), (4, 0), (0, 4)
        assert point_in_triangle((1, 1), a, b, c)
        assert point_in_triangle((0, 0), a, b, c)  # vertex counts
        assert not point_in_triangle((3, 3), a, b, c)

    @settings(max_examples=50, deadline=None)
    @given(st.tuples(*[st.floats(-100, 100) for _ in range(8)]))
    def test_in_circle_requires_ccw_consistency(self, vals):
        ax, ay, bx, by, cx, cy, dx, dy = vals
        a, b, c, d = (ax, ay), (bx, by), (cx, cy), (dx, dy)
        if abs(orient2d(a, b, c)) < 1e-6:
            return  # degenerate
        if not is_ccw(a, b, c):
            a, b, c = a, c, b
        # d strictly inside the triangle must be inside the circumcircle.
        if point_in_triangle(d, a, b, c) and min(
                orient2d(a, b, d), orient2d(b, c, d),
                orient2d(c, a, d)) > 1e-6:
            assert in_circle(a, b, c, d)


class TestMeshConstruction:
    def make_mesh(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, size=(n, 2))
        mesh = DelaunayMesh((0, 0, 100, 100))
        for p in pts:
            mesh.insert((float(p[0]), float(p[1])))
        return mesh, pts

    def test_invalid_bounds_rejected(self):
        with pytest.raises(AppError):
            DelaunayMesh((0, 0, 0, 10))

    def test_all_points_inserted(self):
        mesh, pts = self.make_mesh()
        assert mesh.points_inserted == len(pts)
        assert len(mesh.vertices) == len(pts) + 3

    def test_delaunay_property_full(self):
        mesh, _ = self.make_mesh(n=80)
        assert mesh.check_delaunay(vertices_sample=None)

    def test_euler_relation(self):
        mesh, _ = self.make_mesh()
        assert mesh.euler_check()

    def test_order_independence(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 50, size=(60, 2))

        def coord_tris(order):
            mesh = DelaunayMesh((0, 0, 50, 50))
            for p in pts[order]:
                mesh.insert((float(p[0]), float(p[1])))
            return sorted(
                tuple(sorted(mesh.vertices[v] for v in mesh.triangles[t]))
                for t in mesh.interior_tids())

        fwd = coord_tris(np.arange(60))
        rev = coord_tris(np.arange(59, -1, -1))
        assert fwd == rev

    def test_locate_finds_containing_triangle(self):
        mesh, pts = self.make_mesh(n=50, seed=1)
        tid = mesh.locate((25.0, 25.0))
        from repro.apps.delaunay.geometry import point_in_triangle
        a, b, c = (mesh.vertices[v] for v in mesh.triangles[tid])
        assert point_in_triangle((25.0, 25.0), a, b, c)

    def test_locate_outside_domain_rejected(self):
        mesh, _ = self.make_mesh(n=10)
        with pytest.raises(AppError):
            mesh.locate((1e6, 1e6))

    def test_neighbours_share_an_edge(self):
        mesh, _ = self.make_mesh(n=40)
        for tid in list(mesh.triangles)[:10]:
            tri = set(mesh.triangles[tid])
            for nb in mesh.neighbours(tid):
                assert len(tri & set(mesh.triangles[nb])) == 2

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mesh_invariants_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(30, 2))
        mesh = DelaunayMesh((0, 0, 10, 10))
        for p in pts:
            mesh.insert((float(p[0]), float(p[1])))
        assert mesh.euler_check()
        assert mesh.points_inserted == 30
        # every interior triangle is CCW with positive area
        for tid in mesh.interior_tids():
            a, b, c = (mesh.vertices[v] for v in mesh.triangles[tid])
            assert orient2d(a, b, c) > 0
