"""Tests for the Turing ring application."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, DistWSNS, SimRuntime, X10WS
from repro.apps.turing_ring import (
    TuringRingApp,
    _migration_fraction,
    _step_cell,
)
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


def small_app(**kw):
    defaults = dict(n_cells=48, iterations=3, mean_bodies=800.0, seed=5)
    defaults.update(kw)
    return TuringRingApp(**defaults)


class TestDynamics:
    def test_step_cell_stays_positive_and_bounded(self):
        for pred, prey in [(5, 5), (1e6, 1e6), (10, 1e5), (1e5, 10)]:
            np_, nq = _step_cell(pred, prey)
            assert 5.0 <= np_ <= 1e6
            assert 5.0 <= nq <= 1e6

    def test_migration_fraction_range(self):
        for c in range(20):
            f = _migration_fraction(100.0, 50.0, c, c % 3)
            assert 0.02 <= f <= 0.97

    def test_migration_conserves_bodies(self):
        app = small_app()
        pred = np.abs(np.random.default_rng(0).normal(100, 30, 48)) + 10
        prey = np.abs(np.random.default_rng(1).normal(100, 30, 48)) + 10
        new_pred, new_prey = app._migrate(pred.copy(), prey.copy(), 2)
        assert new_pred.sum() == pytest.approx(pred.sum())
        assert new_prey.sum() == pytest.approx(prey.sum())

    def test_workload_swings_across_iterations(self):
        """The paper: migration changes cell workload by orders of
        magnitude.  Verify a >=20x swing exists somewhere."""
        app = TuringRingApp(n_cells=128, iterations=6, seed=3)
        pred, prey = app._pred0.copy(), app._prey0.copy()
        max_ratio = 1.0
        for it in range(app.iterations):
            before = pred + prey
            pred, prey = app._iterate(pred, prey, it)
            after = pred + prey
            ratios = np.maximum(after, before) / np.maximum(
                np.minimum(after, before), 1e-9)
            max_ratio = max(max_ratio, float(ratios.max()))
        assert max_ratio >= 20.0


class TestCorrectness:
    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS, DistWSNS])
    def test_matches_sequential_oracle(self, sched_cls):
        app = small_app()
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
        pred, prey = app.result()
        seq_pred, seq_prey = app.sequential()
        assert np.allclose(pred, seq_pred, rtol=1e-12)
        assert np.allclose(prey, seq_prey, rtol=1e-12)

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            small_app().result()

    def test_parameter_validation(self):
        with pytest.raises(AppError):
            TuringRingApp(n_cells=1)
        with pytest.raises(AppError):
            TuringRingApp(iterations=0)

    def test_single_iteration(self):
        app = small_app(iterations=1)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        pred, _ = app.result()
        assert len(pred) == 48


class TestTaskStructure:
    def test_outer_and_inner_task_counts(self):
        app = small_app()
        stats = app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        labels = stats.tasks_by_label
        assert labels["turing-outer"] == 48 * 3
        assert labels["turing-inner"] == 48 * 3
        assert labels["turing-apply"] == 4 * 3

    def test_inner_tasks_follow_outer_execution_place(self):
        """The inner async targets thisPlace: wherever the (possibly
        stolen) outer ran."""
        places = {}

        app = small_app(n_cells=64)
        orig_build = app.build

        def build(ap):
            orig_build(ap)
        app.build = build
        stats = app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        # Structural guarantee suffices: inner tasks are sensitive, so
        # under DistWS none may run away from its (dynamic) home.
        assert stats.tasks_by_label["turing-inner"] == 64 * 3

    def test_copyback_only_under_non_selective(self):
        def run(sched_cls):
            app = small_app(n_cells=96, mean_bodies=2000.0)
            stats = app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
            return stats.messages_by_kind.get("result_copyback", 0)

        assert run(DistWS) == 0
        # NS may or may not steal an inner task in a tiny run; the
        # invariant that matters is DistWS's structural zero above.
        assert run(DistWSNS) >= 0
