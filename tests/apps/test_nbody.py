"""Tests for the Barnes-Hut tree and the n-body application."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, SimRuntime, X10WS
from repro.apps.bh_tree import QuadTree, direct_forces
from repro.apps.nbody import NBodyApp
from repro.errors import AppError


def small_cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


def small_app(**kw):
    defaults = dict(n=300, steps=1, group_size=8, seed=5)
    defaults.update(kw)
    return NBodyApp(**defaults)


class TestQuadTree:
    def make(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(n, 2)) * 10
        masses = rng.uniform(0.5, 2.0, size=n)
        return QuadTree(pos, masses), pos, masses

    def test_rejects_bad_inputs(self):
        with pytest.raises(AppError):
            QuadTree(np.zeros((3, 3)), np.ones(3))
        with pytest.raises(AppError):
            QuadTree(np.zeros((0, 2)), np.ones(0))
        with pytest.raises(AppError):
            QuadTree(np.zeros((3, 2)), np.ones(4))

    def test_total_mass_preserved(self):
        tree, _, masses = self.make()
        assert tree.root.mass == pytest.approx(masses.sum())

    def test_theta_zero_equals_direct(self):
        """With θ=0 the traversal opens everything: exact forces."""
        tree, pos, masses = self.make(n=60)
        direct = direct_forces(pos, masses)
        for i in range(60):
            fx, fy, _ = tree.force_on(i, theta=0.0)
            assert fx == pytest.approx(direct[i, 0], rel=1e-9)
            assert fy == pytest.approx(direct[i, 1], rel=1e-9)

    def test_theta_half_is_close_to_direct(self):
        tree, pos, masses = self.make(n=150)
        direct = direct_forces(pos, masses)
        bh = np.array([tree.force_on(i, 0.5)[:2] for i in range(150)])
        scale = np.abs(direct).max()
        assert np.abs(bh - direct).max() / scale < 0.05

    def test_larger_theta_fewer_interactions(self):
        tree, _, _ = self.make(n=400)
        exact = sum(tree.force_on(i, 0.0)[2] for i in range(50))
        approx = sum(tree.force_on(i, 0.9)[2] for i in range(50))
        assert approx < exact

    def test_dense_regions_cost_more(self):
        """Interaction counts vary with local density (the app's
        irregularity source)."""
        rng = np.random.default_rng(0)
        dense = rng.normal(0, 0.5, size=(300, 2))
        sparse = rng.uniform(50, 150, size=(100, 2))
        pos = np.vstack([dense, sparse])
        tree = QuadTree(pos, np.ones(400))
        dense_cost = np.mean([tree.force_on(i, 0.5)[2]
                              for i in range(0, 50)])
        sparse_cost = np.mean([tree.force_on(i, 0.5)[2]
                               for i in range(300, 350)])
        assert dense_cost > sparse_cost


class TestNBodyApp:
    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS])
    def test_matches_sequential_bh(self, sched_cls):
        app = small_app()
        app.run(SimRuntime(small_cluster(), sched_cls(), seed=2))
        pos, forces = app.result()
        want_pos, want_forces = app.sequential()
        assert np.array_equal(pos, want_pos)
        assert np.array_equal(forces, want_forces)

    def test_two_steps(self):
        app = small_app(steps=2)
        app.run(SimRuntime(small_cluster(), DistWS(), seed=2))
        pos, _ = app.result()
        assert np.array_equal(pos, app.sequential()[0])

    def test_result_before_run_rejected(self):
        with pytest.raises(AppError):
            small_app().result()

    def test_invalid_params(self):
        with pytest.raises(AppError):
            NBodyApp(n=2)
        with pytest.raises(AppError):
            NBodyApp(theta=3.0)

    def test_morton_order_groups_are_spatially_tight(self):
        app = small_app(n=400)
        pos = app._pos0
        # Consecutive bodies should be much closer than random pairs.
        consecutive = np.linalg.norm(np.diff(pos, axis=0), axis=1).mean()
        rng = np.random.default_rng(0)
        i = rng.integers(0, 400, 200)
        j = rng.integers(0, 400, 200)
        random_pairs = np.linalg.norm(pos[i] - pos[j], axis=1).mean()
        assert consecutive < random_pairs / 2
