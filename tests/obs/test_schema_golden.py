"""Golden-file pin of the event vocabulary + stream determinism.

The schema (kind -> ordered field names) is the contract between the
runtime and every archived event stream.  Changing it must be a
deliberate act: update ``golden_event_schema.json`` in the same commit
and call it out in the PR.
"""

from __future__ import annotations

import io
import json
import os

from repro.cluster.topology import ClusterSpec
from repro.obs import EVENT_SCHEMA, EventBus, JsonlSink
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import _reset_task_ids
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program

GOLDEN = os.path.join(os.path.dirname(__file__),
                      "golden_event_schema.json")


class TestGoldenSchema:
    def test_schema_matches_golden_file(self):
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        current = {kind: list(fields)
                   for kind, fields in EVENT_SCHEMA.items()}
        assert current == golden, (
            "EVENT_SCHEMA changed.  If intentional, regenerate "
            "tests/obs/golden_event_schema.json and flag the break "
            "for consumers of archived JSONL streams.")

    def test_jsonl_rows_follow_schema_order(self):
        stream = io.StringIO()
        _reset_task_ids()
        rt = SimRuntime(
            ClusterSpec(n_places=4, workers_per_place=2, max_threads=4),
            make_scheduler("DistWS"), seed=7)
        bus = EventBus(sample_interval=200_000)
        bus.subscribe(JsonlSink(stream=stream))
        bus.attach(rt)
        rt.run(fanout_program(24, work=500_000, n_places=4))
        lines = stream.getvalue().splitlines()
        assert lines
        for line in lines:
            row = json.loads(line)
            keys = list(row)
            assert keys[:2] == ["t", "kind"]
            assert keys[2:] == list(EVENT_SCHEMA[row["kind"]])


class TestDeterminism:
    """Two identically-seeded runs emit byte-identical event streams."""

    @staticmethod
    def run_stream(scheduler_name="DistWS"):
        _reset_task_ids()  # task ids are a process-global counter
        stream = io.StringIO()
        rt = SimRuntime(
            ClusterSpec(n_places=4, workers_per_place=2, max_threads=4),
            make_scheduler(scheduler_name), seed=7)
        bus = EventBus(sample_interval=100_000)
        bus.subscribe(JsonlSink(stream=stream))
        bus.attach(rt)
        rt.run(fanout_program(24, work=500_000, n_places=4))
        return stream.getvalue()

    def test_byte_identical_streams(self):
        assert self.run_stream() == self.run_stream()

    def test_different_scheduler_differs(self):
        # Sanity: the check has teeth — a different policy produces a
        # different stream.
        assert self.run_stream("DistWS") != self.run_stream("X10WS")
