"""Event-bus wiring: attach semantics, schema validation, counts."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.obs import EVENT_SCHEMA, EventBus, InMemorySink
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program


def make_rt(n_places=4, workers=2, seed=7):
    spec = ClusterSpec(n_places=n_places, workers_per_place=workers,
                       max_threads=workers + 2)
    return SimRuntime(spec, make_scheduler("DistWS"), seed=seed)


def observed_run(sample_interval=None, n_places=4):
    rt = make_rt(n_places=n_places)
    bus = EventBus(sample_interval=sample_interval)
    sink = bus.subscribe(InMemorySink())
    bus.attach(rt)
    stats = rt.run(fanout_program(24, work=500_000, n_places=n_places))
    return bus, sink, stats


class TestAttach:
    def test_no_sinks_attach_is_noop(self):
        rt = make_rt()
        bus = EventBus()
        bus.attach(rt)
        assert rt.obs is None
        assert rt.network.obs is None
        assert not bus.active

    def test_attach_installs_bus_and_opens_sinks(self):
        rt = make_rt()
        bus = EventBus()
        bus.subscribe(InMemorySink())
        bus.attach(rt)
        assert rt.obs is bus
        assert rt.network.obs is bus
        assert bus.active

    def test_attach_after_start_rejected(self):
        rt = make_rt(n_places=2)
        rt.run(fanout_program(4, work=100_000, n_places=2))
        bus = EventBus()
        bus.subscribe(InMemorySink())
        with pytest.raises(ConfigError):
            bus.attach(rt)

    def test_double_attach_rejected(self):
        rt = make_rt()
        bus = EventBus()
        bus.subscribe(InMemorySink())
        bus.attach(rt)
        other = EventBus()
        other.subscribe(InMemorySink())
        with pytest.raises(ConfigError):
            other.attach(rt)
        with pytest.raises(ConfigError):
            bus.attach(make_rt())

    def test_bad_sample_interval_rejected(self):
        with pytest.raises(ConfigError):
            EventBus(sample_interval=0)
        with pytest.raises(ConfigError):
            EventBus(sample_interval=-5)


class TestEmit:
    def test_unknown_kind_rejected(self):
        bus, _, _ = observed_run()
        with pytest.raises(ConfigError):
            bus.emit("nosuch_event", foo=1)

    def test_wrong_fields_rejected(self):
        rt = make_rt()
        bus = EventBus()
        bus.subscribe(InMemorySink())
        bus.attach(rt)
        with pytest.raises(ConfigError):
            bus.emit("task_start", task=1)  # missing place/worker
        with pytest.raises(ConfigError):
            bus.emit("task_start", task=1, place=0, worker=0, extra=9)

    def test_counts_match_sink(self):
        bus, sink, _ = observed_run()
        assert sum(bus.counts.values()) == len(sink.events)
        for kind in sink.kinds():
            assert bus.counts[kind] == sum(
                1 for ev in sink.events if ev.kind == kind)

    def test_events_cover_core_kinds(self):
        _, sink, stats = observed_run()
        kinds = set(sink.kinds())
        assert {"task_spawn", "task_start", "task_end"} <= kinds
        ends = [ev for ev in sink.events if ev.kind == "task_end"]
        assert len(ends) == stats.tasks_executed
        spawns = [ev for ev in sink.events if ev.kind == "task_spawn"]
        assert len(spawns) == stats.tasks_spawned

    def test_every_event_matches_schema(self):
        _, sink, _ = observed_run(sample_interval=50_000)
        for ev in sink.events:
            schema = EVENT_SCHEMA[ev.kind]
            assert tuple(sorted(ev.fields)) == tuple(sorted(schema))

    def test_timestamps_monotone(self):
        _, sink, stats = observed_run()
        times = [ev.t for ev in sink.events]
        assert times == sorted(times)
        assert times[-1] <= stats.makespan_cycles


class TestSnapshot:
    def test_obs_key_present_with_sinks(self):
        _, _, stats = observed_run()
        snap = stats.snapshot()
        assert "obs" in snap
        assert snap["obs"]["events"]["task_end"] == stats.tasks_executed

    def test_sampler_emits_per_place(self):
        bus, sink, _ = observed_run(sample_interval=100_000, n_places=3)
        samples = [ev for ev in sink.events if ev.kind == "sample"]
        assert samples, "sampler produced no events"
        assert len(samples) % 3 == 0  # one per place per trigger
        for ev in samples:
            assert ev.fields["private"] >= 0
            assert ev.fields["shared"] >= 0
            assert ev.fields["mailbox"] >= 0
            assert ev.fields["outstanding"] >= 0

    def test_no_sampler_no_samples(self):
        bus, sink, _ = observed_run(sample_interval=None)
        assert "sample" not in sink.kinds()


class TestSimulatedScheduleUnchanged:
    """Sinks observe; they never perturb the simulated run."""

    def test_snapshot_identical_modulo_obs_key(self):
        import json
        rt = make_rt()
        plain = rt.run(fanout_program(24, work=500_000, n_places=4))
        bus, _, observed = observed_run()
        a = plain.snapshot()
        b = observed.snapshot()
        assert "obs" not in a
        b.pop("obs")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
