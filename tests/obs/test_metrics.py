"""Metrics registry: histograms, time series, snapshot diffing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterSpec
from repro.obs import (
    HISTOGRAM_NAMES,
    EventBus,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    diff_snapshots,
    flatten,
    max_regression_pct,
)
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["buckets"] == []

    def test_exact_stats(self):
        h = Histogram()
        for v in (1, 10, 100):
            h.record(v)
        assert h.count == 3
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(37.0)

    def test_log2_bucketing(self):
        h = Histogram()
        for v in (3, 4, 5):
            h.record(v)
        buckets = dict(h.snapshot()["buckets"])
        assert buckets == {4.0: 2, 8.0: 1}  # 3,4 -> <=4; 5 -> <=8

    def test_nonpositive_values_bucket_zero(self):
        h = Histogram()
        h.record(0)
        h.record(-7)
        buckets = dict(h.snapshot()["buckets"])
        assert buckets == {0.0: 2}
        assert h.min == -7

    def test_percentile_bounded_by_max(self):
        h = Histogram()
        for v in (100, 200, 900):
            h.record(v)
        # p99 falls in the 1024-bucket but can never exceed the true max.
        assert h.percentile(0.99) == 900
        assert h.percentile(0.01) <= h.percentile(0.99)

    def test_percentile_extremes_are_exact(self):
        # Regression: p0 used to report the first occupied bucket's
        # upper bound (an octave above the true minimum).
        h = Histogram()
        for v in (3, 40, 500):
            h.record(v)
        assert h.percentile(0.0) == 3
        assert h.percentile(1.0) == 500
        # Out-of-range quantiles clamp to the same exact extremes.
        assert h.percentile(-0.5) == 3
        assert h.percentile(1.5) == 500

    def test_percentiles_monotone_in_q(self):
        h = Histogram()
        for v in (1, 2, 4, 8, 16, 900):
            h.record(v)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        ps = [h.percentile(q) for q in qs]
        assert ps == sorted(ps)
        assert ps[0] == h.min and ps[-1] == h.max


def histogram_from(values):
    h = Histogram()
    for v in values:
        h.record(v)
    return h


# Integer-valued floats keep count/sum/min/max bit-exact under any
# merge order (float addition is associative on exactly-representable
# integers of this size).
hist_values = st.lists(
    st.integers(min_value=-(2 ** 20), max_value=2 ** 20).map(float),
    max_size=40)


class TestHistogramMerge:
    def test_merge_empty_is_identity(self):
        h = histogram_from([5, 9])
        before = h.snapshot()
        h.merge(Histogram())
        assert h.snapshot() == before
        e = Histogram()
        e.merge(h)
        assert e.snapshot() == h.snapshot()

    def test_merge_returns_self(self):
        h = Histogram()
        assert h.merge(histogram_from([1])) is h

    def test_from_snapshot_roundtrip(self):
        h = histogram_from([3, 40, 500, -2, 0])
        rebuilt = Histogram.from_snapshot(h.snapshot())
        assert rebuilt.snapshot() == h.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(a=hist_values, b=hist_values)
    def test_merge_matches_single_stream(self, a, b):
        merged = histogram_from(a).merge(histogram_from(b))
        combined = histogram_from(a + b)
        assert merged.snapshot() == combined.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(a=hist_values, b=hist_values)
    def test_merge_commutative(self, a, b):
        ab = histogram_from(a).merge(histogram_from(b))
        ba = histogram_from(b).merge(histogram_from(a))
        assert ab.snapshot() == ba.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(a=hist_values, b=hist_values, c=hist_values)
    def test_merge_associative(self, a, b, c):
        left = histogram_from(a).merge(
            histogram_from(b).merge(histogram_from(c)))
        right = histogram_from(a).merge(
            histogram_from(b)).merge(histogram_from(c))
        assert left.snapshot() == right.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(a=hist_values, b=hist_values)
    def test_merge_count_sum_min_max_exact(self, a, b):
        merged = histogram_from(a).merge(histogram_from(b))
        both = a + b
        assert merged.count == len(both)
        assert merged.total == sum(both)
        if both:
            assert merged.min == min(both)
            assert merged.max == max(both)


class TestTimeSeries:
    def test_records_in_order(self):
        s = TimeSeries()
        for i in range(10):
            s.record(float(i), float(i * i))
        assert s.snapshot() == [[float(i), float(i * i)]
                                for i in range(10)]

    def test_decimation_bounds_memory(self):
        s = TimeSeries(max_points=64)
        for i in range(10_000):
            s.record(float(i), 1.0)
        assert len(s.points) < 64
        # Retained points stay ordered and uniformly strided.
        ts = [t for t, _ in s.points]
        assert ts == sorted(ts)

    def test_decimation_deterministic(self):
        def fill():
            s = TimeSeries(max_points=32)
            for i in range(5_000):
                s.record(float(i), float(i % 7))
            return s.snapshot()
        assert fill() == fill()

    def test_stride_doubles_exactly_at_max_points(self):
        s = TimeSeries(max_points=16)
        for i in range(15):
            s.record(float(i), 0.0)
        # One short of the cap: everything retained, stride untouched.
        assert len(s.points) == 15 and s._stride == 1
        s.record(15.0, 0.0)
        # Hitting the cap halves the stored points and doubles the
        # input stride in the same record call.
        assert len(s.points) == 8 and s._stride == 2
        assert [t for t, _ in s.points] == [float(i)
                                            for i in range(0, 16, 2)]

    def test_post_decimation_points_align_with_stride(self):
        s = TimeSeries(max_points=16)
        for i in range(64):
            s.record(float(i), float(i))
        # Every retained timestamp is a multiple of the final stride.
        assert s._stride > 1
        assert all(t % s._stride == 0 for t, _ in s.points)

    def test_equal_streams_retain_identical_points(self):
        def fill(n, cap):
            s = TimeSeries(max_points=cap)
            for i in range(n):
                s.record(float(i) * 0.5, float(i % 11))
            return s.snapshot()
        for n in (15, 16, 17, 31, 32, 33, 1000):
            assert fill(n, 16) == fill(n, 16)

    def test_min_cap_floor(self):
        s = TimeSeries(max_points=1)  # floors to 8
        assert s.max_points == 8
        for i in range(100):
            s.record(float(i), 1.0)
        assert len(s.points) < 8


def observed_run():
    rt = SimRuntime(
        ClusterSpec(n_places=4, workers_per_place=2, max_threads=4),
        make_scheduler("DistWS"), seed=7)
    bus = EventBus(sample_interval=100_000)
    metrics = bus.subscribe(MetricsRegistry())
    bus.attach(rt)
    stats = rt.run(fanout_program(24, work=500_000, n_places=4))
    return metrics, stats


class TestMetricsRegistry:
    def test_all_histograms_always_present(self):
        metrics, _ = observed_run()
        snap = metrics.snapshot()
        assert set(snap["histograms"]) == set(HISTOGRAM_NAMES)

    def test_granularity_counts_every_task(self):
        metrics, stats = observed_run()
        h = metrics.histograms["task_granularity_cycles"]
        assert h.count == stats.tasks_executed
        assert h.total == pytest.approx(stats.work_sum_cycles)

    def test_steal_latency_matches_remote_hits(self):
        metrics, stats = observed_run()
        h = metrics.histograms["steal_latency_cycles"]
        assert h.count == stats.steals.remote_hits
        if h.count:
            assert h.min > 0  # a steal can never resolve instantly

    def test_chunk_sizes_bounded_by_chunk_size(self):
        metrics, stats = observed_run()
        h = metrics.histograms["chunk_tasks"]
        assert h.count == stats.steals.remote_hits
        if h.count:
            assert 1 <= h.min and h.max <= 2  # remote_chunk_size

    def test_queue_depth_series_per_place(self):
        metrics, _ = observed_run()
        for p in range(4):
            for suffix in ("private", "shared", "mailbox",
                           "outstanding_steals"):
                assert f"p{p}.{suffix}" in metrics.series

    def test_snapshot_in_run_stats(self):
        _, stats = observed_run()
        block = stats.snapshot()["obs"]["metrics"]
        assert set(block) == {"histograms", "series"}

    def test_merge_adds_histograms_not_series(self):
        a, _ = observed_run()
        b, _ = observed_run()
        expect = {name: a.histograms[name].count + b.histograms[name].count
                  for name in HISTOGRAM_NAMES}
        series_before = {name: s.snapshot()
                         for name, s in a.series.items()}
        assert a.merge(b) is a
        for name in HISTOGRAM_NAMES:
            assert a.histograms[name].count == expect[name]
        # Series carry per-run simulated clocks; merging must not
        # interleave them.
        assert {name: s.snapshot()
                for name, s in a.series.items()} == series_before

    def test_merge_unions_unknown_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        extra = Histogram()
        extra.record(7)
        b.histograms["custom"] = extra
        a.merge(b)
        assert a.histograms["custom"].count == 1
        assert a.histograms["custom"] is not extra


class TestDiff:
    def test_flatten_paths(self):
        flat = flatten({"a": {"b": 1, "c": [2, {"d": 3}]}, "e": "x"})
        assert flat == {"a.b": 1, "a.c[0]": 2, "a.c[1].d": 3, "e": "x"}

    def test_identical_snapshots_no_rows(self):
        snap = {"x": 1, "y": [1, 2]}
        assert diff_snapshots(snap, snap) == []

    def test_numeric_delta_and_pct(self):
        rows = diff_snapshots({"n": 100}, {"n": 110})
        assert len(rows) == 1
        assert rows[0].delta == pytest.approx(10)
        assert rows[0].pct == pytest.approx(10.0)

    def test_missing_and_nonnumeric_leaves(self):
        rows = diff_snapshots({"a": 1, "s": "x"}, {"b": 2, "s": "y"})
        by_key = {r.key: r for r in rows}
        assert by_key["a"].cand is None and by_key["a"].delta is None
        assert by_key["b"].base is None
        assert by_key["s"].delta is None

    def test_max_regression_pct(self):
        rows = diff_snapshots({"a": 100, "b": 10}, {"a": 99, "b": 13})
        assert max_regression_pct(rows) == pytest.approx(30.0)
        assert max_regression_pct([]) == 0.0

    def test_zero_baseline_has_no_pct(self):
        rows = diff_snapshots({"n": 0}, {"n": 5})
        assert rows[0].delta == 5
        assert rows[0].pct is None
