"""Metrics registry: histograms, time series, snapshot diffing."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec
from repro.obs import (
    HISTOGRAM_NAMES,
    EventBus,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    diff_snapshots,
    flatten,
    max_regression_pct,
)
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["buckets"] == []

    def test_exact_stats(self):
        h = Histogram()
        for v in (1, 10, 100):
            h.record(v)
        assert h.count == 3
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(37.0)

    def test_log2_bucketing(self):
        h = Histogram()
        for v in (3, 4, 5):
            h.record(v)
        buckets = dict(h.snapshot()["buckets"])
        assert buckets == {4.0: 2, 8.0: 1}  # 3,4 -> <=4; 5 -> <=8

    def test_nonpositive_values_bucket_zero(self):
        h = Histogram()
        h.record(0)
        h.record(-7)
        buckets = dict(h.snapshot()["buckets"])
        assert buckets == {0.0: 2}
        assert h.min == -7

    def test_percentile_bounded_by_max(self):
        h = Histogram()
        for v in (100, 200, 900):
            h.record(v)
        # p99 falls in the 1024-bucket but can never exceed the true max.
        assert h.percentile(0.99) == 900
        assert h.percentile(0.01) <= h.percentile(0.99)


class TestTimeSeries:
    def test_records_in_order(self):
        s = TimeSeries()
        for i in range(10):
            s.record(float(i), float(i * i))
        assert s.snapshot() == [[float(i), float(i * i)]
                                for i in range(10)]

    def test_decimation_bounds_memory(self):
        s = TimeSeries(max_points=64)
        for i in range(10_000):
            s.record(float(i), 1.0)
        assert len(s.points) < 64
        # Retained points stay ordered and uniformly strided.
        ts = [t for t, _ in s.points]
        assert ts == sorted(ts)

    def test_decimation_deterministic(self):
        def fill():
            s = TimeSeries(max_points=32)
            for i in range(5_000):
                s.record(float(i), float(i % 7))
            return s.snapshot()
        assert fill() == fill()


def observed_run():
    rt = SimRuntime(
        ClusterSpec(n_places=4, workers_per_place=2, max_threads=4),
        make_scheduler("DistWS"), seed=7)
    bus = EventBus(sample_interval=100_000)
    metrics = bus.subscribe(MetricsRegistry())
    bus.attach(rt)
    stats = rt.run(fanout_program(24, work=500_000, n_places=4))
    return metrics, stats


class TestMetricsRegistry:
    def test_all_histograms_always_present(self):
        metrics, _ = observed_run()
        snap = metrics.snapshot()
        assert set(snap["histograms"]) == set(HISTOGRAM_NAMES)

    def test_granularity_counts_every_task(self):
        metrics, stats = observed_run()
        h = metrics.histograms["task_granularity_cycles"]
        assert h.count == stats.tasks_executed
        assert h.total == pytest.approx(stats.work_sum_cycles)

    def test_steal_latency_matches_remote_hits(self):
        metrics, stats = observed_run()
        h = metrics.histograms["steal_latency_cycles"]
        assert h.count == stats.steals.remote_hits
        if h.count:
            assert h.min > 0  # a steal can never resolve instantly

    def test_chunk_sizes_bounded_by_chunk_size(self):
        metrics, stats = observed_run()
        h = metrics.histograms["chunk_tasks"]
        assert h.count == stats.steals.remote_hits
        if h.count:
            assert 1 <= h.min and h.max <= 2  # remote_chunk_size

    def test_queue_depth_series_per_place(self):
        metrics, _ = observed_run()
        for p in range(4):
            for suffix in ("private", "shared", "mailbox",
                           "outstanding_steals"):
                assert f"p{p}.{suffix}" in metrics.series

    def test_snapshot_in_run_stats(self):
        _, stats = observed_run()
        block = stats.snapshot()["obs"]["metrics"]
        assert set(block) == {"histograms", "series"}


class TestDiff:
    def test_flatten_paths(self):
        flat = flatten({"a": {"b": 1, "c": [2, {"d": 3}]}, "e": "x"})
        assert flat == {"a.b": 1, "a.c[0]": 2, "a.c[1].d": 3, "e": "x"}

    def test_identical_snapshots_no_rows(self):
        snap = {"x": 1, "y": [1, 2]}
        assert diff_snapshots(snap, snap) == []

    def test_numeric_delta_and_pct(self):
        rows = diff_snapshots({"n": 100}, {"n": 110})
        assert len(rows) == 1
        assert rows[0].delta == pytest.approx(10)
        assert rows[0].pct == pytest.approx(10.0)

    def test_missing_and_nonnumeric_leaves(self):
        rows = diff_snapshots({"a": 1, "s": "x"}, {"b": 2, "s": "y"})
        by_key = {r.key: r for r in rows}
        assert by_key["a"].cand is None and by_key["a"].delta is None
        assert by_key["b"].base is None
        assert by_key["s"].delta is None

    def test_max_regression_pct(self):
        rows = diff_snapshots({"a": 100, "b": 10}, {"a": 99, "b": 13})
        assert max_regression_pct(rows) == pytest.approx(30.0)
        assert max_regression_pct([]) == 0.0

    def test_zero_baseline_has_no_pct(self):
        rows = diff_snapshots({"n": 0}, {"n": 5})
        assert rows[0].delta == 5
        assert rows[0].pct is None
