"""Sink behaviours: JSONL streaming and the Chrome trace exporter."""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.obs import ChromeTraceSink, EventBus, JsonlSink
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program

N_PLACES = 4
WORKERS = 2


def run_with(*sinks, sample_interval=100_000):
    rt = SimRuntime(
        ClusterSpec(n_places=N_PLACES, workers_per_place=WORKERS,
                    max_threads=WORKERS + 2),
        make_scheduler("DistWS"), seed=7)
    bus = EventBus(sample_interval=sample_interval)
    for sink in sinks:
        bus.subscribe(sink)
    bus.attach(rt)
    stats = rt.run(fanout_program(24, work=500_000, n_places=N_PLACES))
    return stats


class TestJsonlSink:
    def test_requires_exactly_one_of_path_stream(self, tmp_path):
        with pytest.raises(ConfigError):
            JsonlSink()
        with pytest.raises(ConfigError):
            JsonlSink(path=str(tmp_path / "x.jsonl"), stream=object())

    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path=str(path))
        run_with(sink)
        lines = path.read_text().splitlines()
        assert len(lines) == sink.lines_written > 0
        for line in lines:
            row = json.loads(line)
            assert "t" in row and "kind" in row


class TestChromeTraceSink:
    def run_trace(self, tmp_path):
        path = tmp_path / "run.trace.json"
        stats = run_with(ChromeTraceSink(str(path)))
        with open(path) as fh:
            doc = json.load(fh)
        return doc, stats

    def test_document_shape(self, tmp_path):
        doc, _ = self.run_trace(tmp_path)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_one_process_row_per_place(self, tmp_path):
        doc, _ = self.run_trace(tmp_path)
        names = {e["pid"]: e["args"]["name"]
                 for e in doc["traceEvents"]
                 if e.get("name") == "process_name"}
        assert names == {p: f"place {p}" for p in range(N_PLACES)}

    def test_one_thread_lane_per_worker(self, tmp_path):
        doc, _ = self.run_trace(tmp_path)
        lanes = {(e["pid"], e["tid"]): e["args"]["name"]
                 for e in doc["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert lanes == {(p, w): f"worker {w}"
                         for p in range(N_PLACES)
                         for w in range(WORKERS)}

    def test_task_slices_within_makespan(self, tmp_path):
        doc, stats = self.run_trace(tmp_path)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == stats.tasks_executed
        makespan_us = stats.makespan_cycles / 2_000.0  # 2e6 cycles/ms
        for e in slices:
            assert 0 <= e["ts"] <= makespan_us + 1e-6
            assert e["ts"] + e["dur"] <= makespan_us + 1e-6
            assert 0 <= e["pid"] < N_PLACES
            assert 0 <= e["tid"] < WORKERS

    def test_counter_tracks_present_with_sampler(self, tmp_path):
        doc, _ = self.run_trace(tmp_path)
        counters = {e["name"] for e in doc["traceEvents"]
                    if e.get("ph") == "C"}
        assert counters == {"queue depth", "outstanding steals"}
