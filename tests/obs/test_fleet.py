"""Fleet observability: shipping, rollups, merged traces, the live view."""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.harness.db import ExperimentStore, drain
from repro.harness.parallel import RunSpec, simulate
from repro.obs.fleet import (
    FleetSnapshot,
    FleetTelemetry,
    FleetView,
    WorkerView,
    merge_chrome_traces,
    observe_run,
    render_top,
    rollup_histograms,
    rollup_rows,
    shard_filename,
    store_trace_shards,
)


def tiny_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


def specs(n=2):
    return [RunSpec.build("uts", "DistWS", tiny_spec(), sched_seed=s,
                          scale="test") for s in range(1, n + 1)]


class TestObserveRun:
    def test_result_byte_identical_to_bare_run(self):
        spec = specs(1)[0]
        result, telemetry, trace_path = observe_run(
            spec, spec.cache_key(), "h:1:w", 1, FleetTelemetry())
        bare = simulate(spec)
        assert (json.dumps(result.stats.snapshot(), sort_keys=True)
                == json.dumps(bare.stats.snapshot(), sort_keys=True))
        assert "obs" not in result.stats.snapshot()
        assert trace_path is None

    def test_telemetry_payload_shape(self):
        spec = specs(1)[0]
        _, telemetry, _ = observe_run(
            spec, spec.cache_key(), "h:1:w", 2, FleetTelemetry())
        assert telemetry["attempt"] == 2
        assert telemetry["wall_seconds"] > 0
        assert telemetry["sims_per_sec"] > 0
        hists = telemetry["obs"]["metrics"]["histograms"]
        assert hists["task_granularity_cycles"]["count"] \
            == telemetry["tasks_executed"]
        # JSON-safe end to end (what the store serializes).
        json.dumps(telemetry, sort_keys=True)

    def test_trace_dir_writes_shard(self, tmp_path):
        spec = specs(1)[0]
        fleet = FleetTelemetry(trace_dir=str(tmp_path / "traces"))
        _, _, trace_path = observe_run(
            spec, spec.cache_key(), "h:1:w", 1, fleet)
        assert trace_path is not None and os.path.exists(trace_path)
        doc = json.load(open(trace_path))
        assert doc["traceEvents"]

    def test_shard_filename_sanitizes_owner(self):
        name = shard_filename("host:12:ab/cd", "f" * 64)
        assert "/" not in name and ":" not in name
        assert name.endswith(".trace.json")


class TestRollup:
    def test_counts_add_across_runs(self):
        payloads = []
        for spec in specs(3):
            _, telemetry, _ = observe_run(
                spec, spec.cache_key(), "h:1:w", 1, FleetTelemetry())
            payloads.append(telemetry)
        rollup = rollup_histograms(payloads)
        for name, hist in rollup.items():
            per_run = sum(
                p["obs"]["metrics"]["histograms"][name]["count"]
                for p in payloads)
            assert hist.count == per_run
        assert rollup["task_granularity_cycles"].count > 0

    def test_rows_and_empty_payloads_skipped(self):
        rollup = rollup_histograms([None, {}, {"obs": None},
                                    {"obs": {"metrics": None}}])
        assert rollup == {}
        assert rollup_rows(rollup) == []


def shard(path, pid, tid, ts, dur, name="task"):
    doc = {"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": f"place {pid}"}},
        {"name": name, "ph": "X", "pid": pid, "tid": tid, "ts": ts,
         "dur": dur, "cat": "task", "args": {}},
        {"name": "queue", "ph": "C", "pid": pid, "tid": 0, "ts": ts,
         "args": {"depth": 1}},
    ]}
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return str(path)


class TestMergeChromeTraces:
    def test_one_process_row_per_worker(self, tmp_path):
        shards = [
            ("w1", shard(tmp_path / "a.json", 0, 0, 0.0, 100.0)),
            ("w2", shard(tmp_path / "b.json", 0, 1, 0.0, 50.0)),
            ("w1", shard(tmp_path / "c.json", 1, 0, 0.0, 70.0)),
        ]
        doc = merge_chrome_traces(shards)
        names = [e for e in doc["traceEvents"]
                 if e.get("name") == "process_name"]
        assert {e["args"]["name"] for e in names} \
            == {"worker w1", "worker w2"}
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}

    def test_cells_laid_end_to_end(self, tmp_path):
        shards = [
            ("w1", shard(tmp_path / "a.json", 0, 0, 0.0, 100.0)),
            ("w1", shard(tmp_path / "b.json", 0, 0, 0.0, 40.0)),
        ]
        doc = merge_chrome_traces(shards, gap_us=10.0)
        xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert xs[0]["ts"] == 0.0
        # Second cell starts after the first's extent plus the gap.
        assert xs[1]["ts"] == pytest.approx(110.0)

    def test_lanes_and_counters_keep_place_identity(self, tmp_path):
        shards = [
            ("w1", shard(tmp_path / "a.json", 0, 0, 0.0, 10.0)),
            ("w1", shard(tmp_path / "b.json", 1, 2, 0.0, 10.0)),
        ]
        doc = merge_chrome_traces(shards)
        threads = {e["args"]["name"] for e in doc["traceEvents"]
                   if e.get("name") == "thread_name"}
        assert {"p0.w0", "p1.w2"} <= threads
        counters = {e["name"] for e in doc["traceEvents"]
                    if e.get("ph") == "C"}
        assert counters == {"queue (p0)", "queue (p1)"}

    def test_writes_valid_json(self, tmp_path):
        shards = [("w1", shard(tmp_path / "a.json", 0, 0, 0.0, 10.0))]
        out = tmp_path / "merged.json"
        merge_chrome_traces(shards, out_path=str(out))
        doc = json.load(open(out))
        assert doc["displayTimeUnit"] == "ms"


def drained_store(tmp_path, fleet=None, n=2):
    path = str(tmp_path / "store.db")
    store = ExperimentStore(path)
    store.add_specs(specs(n))
    drain(store, owner="host:9:aa", heartbeat_seconds=0.5, fleet=fleet)
    return store, path


class TestStoreIntegration:
    def test_trace_shards_from_store(self, tmp_path):
        fleet = FleetTelemetry(trace_dir=str(tmp_path / "traces"))
        store, _ = drained_store(tmp_path, fleet=fleet)
        shards = store_trace_shards(store)
        assert len(shards) == 2
        assert all(owner == "host:9:aa" for owner, _ in shards)
        store.close()

    def test_missing_shard_files_skipped(self, tmp_path):
        fleet = FleetTelemetry(trace_dir=str(tmp_path / "traces"))
        store, _ = drained_store(tmp_path, fleet=fleet)
        for _, path in store_trace_shards(store):
            os.unlink(path)
        assert store_trace_shards(store) == []
        store.close()


class TestFleetView:
    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            FleetView(str(tmp_path / "nope.db"))

    def test_snapshot_of_drained_store(self, tmp_path):
        store, path = drained_store(tmp_path)
        store.close()
        with FleetView(path) as view:
            snap = view.snapshot()
        assert snap.counts["done"] == 2
        assert snap.open_cells == 0
        assert snap.telemetry_runs == 2
        assert snap.mean_wall_seconds > 0
        assert len(snap.workers) == 1
        w = snap.workers[0]
        assert w.owner == "host:9:aa"
        assert w.state == "stopped" and w.cells_done == 2
        assert snap.eta_seconds() == 0.0

    def test_readonly_connection_cannot_write(self, tmp_path):
        store, path = drained_store(tmp_path)
        store.close()
        view = FleetView(path)
        assert view.readonly
        with pytest.raises(Exception):
            view._conn.execute("DELETE FROM experiments")
        view.close()

    def test_pre_fleet_store_degrades_to_counts(self, tmp_path):
        store, path = drained_store(tmp_path)
        with store._lock:
            store._conn.execute("DROP TABLE telemetry")
            store._conn.execute("DROP TABLE worker_status")
            store._conn.commit()
        store.close()
        with FleetView(path) as view:
            snap = view.snapshot()
        assert snap.counts["done"] == 2
        assert snap.workers == [] and snap.telemetry_runs == 0

    def test_failure_views_carry_last_error_line(self, tmp_path):
        path = str(tmp_path / "store.db")
        store = ExperimentStore(path, max_attempts=1)
        store.add_specs([RunSpec.build(
            "uts", "DistWS", tiny_spec(), sched_seed=1, scale="test",
            app_overrides={"bogus_option": 1})])
        drain(store, owner="host:9:aa", heartbeat_seconds=0.5)
        store.close()
        with FleetView(path) as view:
            snap = view.snapshot()
        assert snap.counts["failed"] == 1
        assert len(snap.failures) == 1
        assert snap.failures[0].error  # last traceback line, non-empty


class TestRenderTop:
    def make_snapshot(self, **kw):
        defaults = dict(
            path="s.db", now=1000.0,
            counts={"pending": 3, "leased": 1, "done": 5, "failed": 1},
            workers=[WorkerView(
                owner="host:1:aa", state="running", current_key="k" * 20,
                started_at=900.0, last_seen=999.0, cells_done=5,
                cells_failed=1, leases=6, heartbeat_misses=0, reclaims=1,
                quarantines=0)],
            failures=[], telemetry_runs=5, mean_wall_seconds=0.5,
            total_wall_seconds=2.5, recent_done=5, recent_window=60.0)
        defaults.update(kw)
        return FleetSnapshot(**defaults)

    def test_frame_contains_counts_workers_eta(self):
        frame = render_top(self.make_snapshot())
        assert "5/10 done" in frame
        assert "1 leased" in frame and "3 pending" in frame
        assert "host:1:aa" in frame and "running" in frame
        assert "ETA" in frame

    def test_eta_uses_recent_rate(self):
        snap = self.make_snapshot()
        # 5 done in 60s -> 4 open cells / (5/60) = 48s.
        assert snap.fleet_rate() == pytest.approx(5 / 60)
        assert snap.eta_seconds() == pytest.approx(48.0)

    def test_eta_falls_back_to_mean_wall(self):
        snap = self.make_snapshot(recent_done=0)
        # 4 open cells * 0.5s mean / 1 active worker.
        assert snap.eta_seconds() == pytest.approx(2.0)

    def test_eta_unknown_without_signal(self):
        snap = self.make_snapshot(recent_done=0, mean_wall_seconds=0.0)
        assert snap.eta_seconds() is None
        assert "ETA ?" in render_top(snap)

    def test_empty_store_renders(self):
        snap = self.make_snapshot(
            counts={"pending": 0, "leased": 0, "done": 0, "failed": 0},
            workers=[], telemetry_runs=0, mean_wall_seconds=0.0,
            total_wall_seconds=0.0, recent_done=0)
        frame = render_top(snap)
        assert "0/0 done" in frame
