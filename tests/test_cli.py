"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quicksort" in out
        assert "DistWS" in out
        assert "fig6" in out

    def test_run(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks_executed" in out

    def test_trace_with_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["trace", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "parallelism" in out
        data = json.loads(path.read_text())
        assert data["tasks"]

    def test_reproduce_unknown_artifact(self, capsys):
        assert main(["reproduce", "nosuch"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
