"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quicksort" in out
        assert "DistWS" in out
        assert "fig6" in out

    def test_run(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks_executed" in out

    def test_trace_with_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["trace", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "parallelism" in out
        data = json.loads(path.read_text())
        assert data["tasks"]

    def test_reproduce_unknown_artifact(self, capsys):
        assert main(["reproduce", "nosuch"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_profile_writes_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        events = tmp_path / "events.jsonl"
        snapshot = tmp_path / "snap.json"
        code = main(["profile", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--chrome-trace", str(trace),
                     "--events", str(events),
                     "--snapshot", str(snapshot)])
        assert code == 0
        out = capsys.readouterr().out
        assert "metric histograms" in out
        assert "event counts" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert all(json.loads(line)
                   for line in events.read_text().splitlines())
        snap = json.loads(snapshot.read_text())
        assert "obs" in snap and "metrics" in snap["obs"]

    def test_diff_stats_identical(self, capsys, tmp_path):
        snap = tmp_path / "a.json"
        snap.write_text(json.dumps({"makespan_cycles": 5, "tasks": 3}))
        assert main(["diff-stats", str(snap), str(snap)]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_diff_stats_fail_over(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"makespan_cycles": 100}))
        b.write_text(json.dumps({"makespan_cycles": 150}))
        assert main(["diff-stats", str(a), str(b)]) == 0
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "10"]) == 1
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "60"]) == 0

    def test_profile_without_artifact_flags(self, capsys, tmp_path,
                                            monkeypatch):
        """The default profile path prints tables and writes nothing."""
        monkeypatch.chdir(tmp_path)
        code = main(["profile", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "metric histograms" in out
        assert "event counts" in out
        assert "chrome trace written" not in out
        assert list(tmp_path.iterdir()) == []

    def test_diff_stats_nested_and_missing_keys(self, capsys, tmp_path):
        """Nested snapshots flatten to dotted keys; non-numeric or
        one-sided leaves diff without a pct and never trip --fail-over."""
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"steals": {"remote_hits": 10},
                                 "only_base": 5}))
        b.write_text(json.dumps({"steals": {"remote_hits": 12},
                                 "only_cand": 7}))
        assert main(["diff-stats", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "steals.remote_hits" in out
        assert "only_base" in out and "only_cand" in out
        # remote_hits regressed 20%; the one-sided keys have no pct.
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "19"]) == 1
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "21"]) == 0

    def test_diff_stats_fail_over_boundary_is_exclusive(self, capsys,
                                                        tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"makespan_cycles": 100}))
        b.write_text(json.dumps({"makespan_cycles": 110}))
        # Exactly at the threshold passes; only exceeding it fails.
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "10"]) == 0
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "9.9"]) == 1


class TestCliParallel:
    def test_reproduce_wires_context_flags(self, capsys, tmp_path,
                                           monkeypatch):
        """--parallel/--cache-dir install the execution context the
        artifact functions run under."""
        from types import SimpleNamespace

        from repro.harness import EXPERIMENTS, current_context

        observed = {}

        def fake(scale="bench", sched_kwargs=None):
            ctx = current_context()
            observed["parallel"] = ctx.parallel
            observed["cached"] = ctx.cache is not None
            observed["scale"] = scale
            return SimpleNamespace(rendered="fake artifact body")

        monkeypatch.setitem(EXPERIMENTS, "fakeart", fake)
        code = main(["reproduce", "fakeart", "--scale", "test",
                     "--parallel", "2", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert observed == {"parallel": 2, "cached": True,
                            "scale": "test"}
        out = capsys.readouterr().out
        assert "fake artifact body" in out
        assert "0 simulations" in out

    def test_reproduce_warm_cache_skips_simulation(self, capsys,
                                                   tmp_path, monkeypatch):
        from types import SimpleNamespace

        from repro.cluster.topology import ClusterSpec
        from repro.harness import CellRequest, EXPERIMENTS, run_cells

        def tiny(scale="bench", sched_kwargs=None):
            cell = run_cells([CellRequest.build(
                "uts", "DistWS",
                ClusterSpec(n_places=2, workers_per_place=2,
                            max_threads=4),
                sched_seeds=(1,), scale="test")])[0]
            return SimpleNamespace(
                rendered=f"tasks={cell.runs[0].stats.tasks_executed}")

        monkeypatch.setitem(EXPERIMENTS, "tinyart", tiny)
        argv = ["reproduce", "tinyart", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "[1 simulations, 0 cache hits, 1 stored" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "[0 simulations, 1 cache hits, 0 stored" in warm
        # The cached replay renders the identical artifact.
        assert [l for l in cold.splitlines() if l.startswith("tasks=")] \
            == [l for l in warm.splitlines() if l.startswith("tasks=")]

    def test_reproduce_rejects_nonpositive_parallel(self, capsys):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig6", "--parallel", "0"])


class TestTuneCli:
    def test_list_shows_knob_tables(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "knobs (set with --sched-arg key=value" in out
        assert "remote_chunk_size" in out
        assert "attempts_per_round" in out

    def test_run_accepts_sched_args(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--sched-arg", "remote_chunk_size=4",
                     "--sched-arg", "victim_order=nearest"])
        assert code == 0
        assert "tasks_executed" in capsys.readouterr().out

    def test_run_rejects_unknown_knob_without_traceback(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--sched-arg", "bogus=1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown knob 'bogus'" in err
        assert "Traceback" not in err

    def test_run_rejects_unparseable_value(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--sched-arg", "remote_chunk_size=lots"])
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_run_with_controller_prints_state(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--controller", "aimd-chunk"])
        assert code == 0
        out = capsys.readouterr().out
        assert "online controller (aimd-chunk)" in out
        assert "chunk" in out

    def test_run_rejects_unknown_controller(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--controller", "pid"])
        assert code == 2
        assert "unknown controller" in capsys.readouterr().err

    def test_reproduce_rejects_unknown_sched_arg(self, capsys):
        code = main(["reproduce", "fig6", "--sched-arg", "bogus=1"])
        assert code == 2
        assert "unknown knob" in capsys.readouterr().err

    def test_tune_grid_deterministic_and_cached(self, capsys, tmp_path):
        argv = ["tune", "--app", "uts", "--scheduler", "distws",
                "--engine", "grid", "--budget", "3",
                "--knob", "remote_chunk_size",
                "--places", "2", "--workers", "2", "--seeds", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(tmp_path / "report.json")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "tuning uts x DistWS" in cold
        assert "default rank" in cold
        assert "(default)" in cold
        first = (tmp_path / "report.json").read_bytes()
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "[0 simulations," in warm
        # Byte-identical report across cold and warm runs.
        assert (tmp_path / "report.json").read_bytes() == first
        data = json.loads(first)
        assert data["cells"][0]["scheduler"] == "DistWS"
        assert data["cells"][0]["n_trials"] == 3

    def test_list_shows_new_steal_variants_with_knob_tables(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for sched in ("StealHalfWS", "MultiStealWS", "LocalizedWS"):
            assert sched in out
        # Each variant's distinctive knob is documented in its table.
        assert "steal_width" in out
        assert "steal_radius" in out
        assert "radius_strikes" in out
        # StealHalfWS sizes chunks from the deque, so it has no
        # remote_chunk_size knob of its own.
        from repro.tune import SCHEDULER_KNOBS
        names = {k.name for k in SCHEDULER_KNOBS["StealHalfWS"]}
        assert "remote_chunk_size" not in names

    @pytest.mark.parametrize("sched,knob", [
        ("StealHalfWS", "victim_order=nearest"),
        ("MultiStealWS", "steal_width=3"),
        ("LocalizedWS", "steal_radius=1"),
    ])
    def test_run_accepts_each_new_variant(self, capsys, sched, knob):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--scheduler", sched, "--sched-arg", knob])
        assert code == 0
        assert "tasks_executed" in capsys.readouterr().out

    @pytest.mark.parametrize("sched,knob", [
        ("stealhalfws", "shared_fifo"),
        ("multistealws", "steal_width"),
        ("localizedws", "radius_strikes"),
    ])
    def test_tune_accepts_each_new_variant(self, capsys, tmp_path,
                                           sched, knob):
        code = main(["tune", "--app", "uts", "--scheduler", sched,
                     "--engine", "grid", "--budget", "2",
                     "--knob", knob,
                     "--places", "2", "--workers", "2", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tuning uts x" in out
        assert knob in out

    def test_tune_random_requires_budget(self, capsys):
        code = main(["tune", "--app", "uts", "--engine", "random"])
        assert code == 2
        assert "needs --budget" in capsys.readouterr().err

    def test_tune_rejects_unknown_scheduler(self, capsys):
        code = main(["tune", "--app", "uts", "--scheduler", "TurboWS",
                     "--engine", "grid", "--budget", "2"])
        assert code == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_tune_rejects_unknown_knob(self, capsys):
        code = main(["tune", "--app", "uts", "--engine", "grid",
                     "--budget", "2", "--knob", "warp",
                     "--places", "2", "--workers", "2"])
        assert code == 2
        assert "unknown knob" in capsys.readouterr().err


class TestTheoryCli:
    def test_theory_quick_writes_figure_and_verdict(self, capsys,
                                                    tmp_path):
        code = main(["theory", "--quick", "--app", "uts",
                     "--scheduler", "randomws",
                     "--places", "2", "--workers", "2", "--seeds", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan = W/p + c*lambda*log2(W)" in out
        assert "RandomWS" in out
        verdict = json.loads((tmp_path / "theory_verdict.json")
                             .read_text())
        assert verdict["lower_bound_holds"] is True
        assert verdict["fits"][0]["scheduler"] == "RandomWS"
        svg = (tmp_path / "theory_uts.svg").read_text()
        assert svg.startswith("<svg") and len(svg) > 500

    def test_theory_accepts_new_variants_and_caches(self, capsys,
                                                    tmp_path):
        argv = ["theory", "--app", "uts",
                "--scheduler", "stealhalfws",
                "--lambda", "2000", "--lambda", "8000",
                "--places", "2", "--workers", "2", "--seeds", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "StealHalfWS" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "[0 simulations," in warm

    def test_theory_rejects_unknown_scheduler(self, capsys):
        code = main(["theory", "--quick", "--scheduler", "TurboWS"])
        assert code == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_theory_rejects_degenerate_lambda_grid(self, capsys):
        code = main(["theory", "--lambda", "5000",
                     "--places", "2", "--workers", "2"])
        assert code == 2
        assert "lambdas" in capsys.readouterr().err


class TestStoreCli:
    """The durable-store subcommands: enqueue -> workers -> query."""

    def _enqueue(self, store, capsys):
        code = main(["enqueue", "--store", store,
                     "--app", "uts", "--scheduler", "DistWS",
                     "--scheduler", "RandomWS", "--places", "2",
                     "--workers", "2", "--seeds", "2",
                     "--scale", "test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pending" in out
        assert "repro workers" in out  # tells the user how to drain
        return out

    def test_enqueue_workers_query_roundtrip(self, capsys, tmp_path):
        store = str(tmp_path / "grid.sqlite")
        self._enqueue(store, capsys)

        events = tmp_path / "store-events.jsonl"
        code = main(["workers", "--store", store, "--workers", "1",
                     "--heartbeat", "0.2", "--events", str(events)])
        assert code == 0
        out = capsys.readouterr().out
        assert "done" in out
        leases = [json.loads(line)
                  for line in events.read_text().splitlines()]
        assert {ev["kind"] for ev in leases} == {"store_lease"}
        assert len(leases) == 4  # one lease per cell, no retries

        code = main(["query", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "uts" in out and "DistWS" in out and "RandomWS" in out

    def test_enqueue_is_idempotent(self, capsys, tmp_path):
        store = str(tmp_path / "grid.sqlite")
        first = self._enqueue(store, capsys)
        second = self._enqueue(store, capsys)
        assert "enqueued 4 new cell(s)" in first
        assert "enqueued 0 new cell(s) (4 already present)" in second

    def test_query_json_and_filters(self, capsys, tmp_path):
        store = str(tmp_path / "grid.sqlite")
        self._enqueue(store, capsys)
        assert main(["workers", "--store", store,
                     "--heartbeat", "0.2"]) == 0
        capsys.readouterr()
        dump = tmp_path / "rows.json"
        code = main(["query", "--store", store, "--json", str(dump),
                     "--scheduler", "DistWS", "--status", "done"])
        assert code == 0
        assert "totals" in capsys.readouterr().out
        rows = json.loads(dump.read_text())
        assert len(rows) == 2
        assert all(r["status"] == "done" for r in rows)
        assert all(r["payload"]["scheduler"] == "DistWS" for r in rows)

    def test_workers_reports_quarantined_cells(self, capsys, tmp_path):
        from repro.harness.db import ExperimentStore
        from repro.harness.parallel import RunSpec
        from repro.cluster.topology import ClusterSpec

        store_path = str(tmp_path / "grid.sqlite")
        spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
        poison = RunSpec.build("uts", "DistWS", spec, scale="test",
                               app_overrides={"no_such_parameter": 1})
        with ExperimentStore(store_path) as store:
            store.add_specs([poison])
        code = main(["workers", "--store", store_path,
                     "--heartbeat", "0.2", "--max-attempts", "1"])
        assert code == 1  # quarantined cells are a reportable failure
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "no_such_parameter" in out

    def test_reproduce_with_store_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "repro.sqlite")
        assert main(["reproduce", "table2", "--scale", "test",
                     "--store", store]) == 0
        first = capsys.readouterr().out
        assert main(["reproduce", "table2", "--scale", "test",
                     "--store", store]) == 0
        second = capsys.readouterr().out
        assert "21 cells simulated here, 21 done total" in first
        # Identical artifact either way; second run re-simulates nothing.
        assert "0 cells simulated here, 21 done total" in second


class TestFleetCli:
    """Fleet observability subcommands: top, report, query rollups."""

    def _drained_store(self, tmp_path, capsys, trace_dir=None):
        store = str(tmp_path / "grid.sqlite")
        assert main(["enqueue", "--store", store, "--app", "uts",
                     "--scheduler", "DistWS", "--places", "2",
                     "--workers", "2", "--seeds", "2",
                     "--scale", "test"]) == 0
        argv = ["workers", "--store", store, "--heartbeat", "0.2"]
        if trace_dir:
            argv += ["--trace-dir", trace_dir]
        assert main(argv) == 0
        capsys.readouterr()
        return store

    def test_top_single_frame(self, capsys, tmp_path):
        store = self._drained_store(tmp_path, capsys)
        assert main(["top", store, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "2/2 done" in out
        assert "ETA" in out and "owner" in out

    def test_top_missing_store_is_config_error(self, capsys, tmp_path):
        code = main(["top", str(tmp_path / "nope.db"),
                     "--iterations", "1"])
        assert code == 2
        assert "no store at" in capsys.readouterr().err

    def test_query_rollup(self, capsys, tmp_path):
        store = self._drained_store(tmp_path, capsys)
        assert main(["query", "--store", store, "--rollup"]) == 0
        out = capsys.readouterr().out
        assert "rollup over 2 telemetry row(s)" in out
        assert "steal_latency_cycles" in out

    def test_query_rollup_respects_filters(self, capsys, tmp_path):
        store = self._drained_store(tmp_path, capsys)
        assert main(["query", "--store", store, "--rollup",
                     "--scheduler", "RandomWS"]) == 0
        out = capsys.readouterr().out
        assert "rollup over 0 telemetry row(s)" in out
        assert "no telemetry shipped" in out

    def test_query_quarantined_prints_tracebacks(self, capsys, tmp_path):
        from repro.cluster.topology import ClusterSpec
        from repro.harness.db import ExperimentStore
        from repro.harness.parallel import RunSpec

        store = str(tmp_path / "grid.sqlite")
        spec = ClusterSpec(n_places=2, workers_per_place=2,
                           max_threads=4)
        poison = RunSpec.build("uts", "DistWS", spec, scale="test",
                               app_overrides={"no_such_parameter": 1})
        with ExperimentStore(store) as s:
            s.add_specs([poison])
        main(["workers", "--store", store, "--heartbeat", "0.2",
              "--max-attempts", "1"])
        capsys.readouterr()
        assert main(["query", "--store", store, "--quarantined"]) == 0
        out = capsys.readouterr().out
        assert "Traceback" in out and "no_such_parameter" in out

    def test_query_quarantined_empty(self, capsys, tmp_path):
        store = self._drained_store(tmp_path, capsys)
        assert main(["query", "--store", store, "--quarantined"]) == 0
        assert "no quarantined cells" in capsys.readouterr().out

    def test_workers_no_telemetry_ships_nothing(self, capsys, tmp_path):
        from repro.harness.db import ExperimentStore

        store = str(tmp_path / "grid.sqlite")
        assert main(["enqueue", "--store", store, "--app", "uts",
                     "--scheduler", "DistWS", "--places", "2",
                     "--workers", "2", "--seeds", "1",
                     "--scale", "test"]) == 0
        assert main(["workers", "--store", store, "--heartbeat", "0.2",
                     "--no-telemetry"]) == 0
        capsys.readouterr()
        with ExperimentStore(store) as s:
            assert s.counts()["done"] == 1
            assert s.telemetry_rows() == []

    def test_report_writes_html_and_merged_trace(self, capsys, tmp_path):
        trace_dir = str(tmp_path / "traces")
        store = self._drained_store(tmp_path, capsys,
                                    trace_dir=trace_dir)
        out_dir = str(tmp_path / "report")
        assert main(["report", store, "--out", out_dir]) == 0
        printed = capsys.readouterr().out
        assert "report.html" in printed
        html = open(f"{out_dir}/report.html").read()
        assert "<svg" in html and "Throughput timeline" in html
        assert "steal_latency_cycles" in html
        merged = json.load(open(f"{out_dir}/merged.trace.json"))
        assert merged["traceEvents"]

    def test_report_without_traces_still_writes_html(self, capsys,
                                                     tmp_path):
        store = self._drained_store(tmp_path, capsys)
        out_dir = str(tmp_path / "report")
        assert main(["report", store, "--out", out_dir]) == 0
        capsys.readouterr()
        import os
        assert os.path.exists(f"{out_dir}/report.html")
        assert not os.path.exists(f"{out_dir}/merged.trace.json")
