"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quicksort" in out
        assert "DistWS" in out
        assert "fig6" in out

    def test_run(self, capsys):
        code = main(["run", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks_executed" in out

    def test_trace_with_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["trace", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "parallelism" in out
        data = json.loads(path.read_text())
        assert data["tasks"]

    def test_reproduce_unknown_artifact(self, capsys):
        assert main(["reproduce", "nosuch"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_profile_writes_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        events = tmp_path / "events.jsonl"
        snapshot = tmp_path / "snap.json"
        code = main(["profile", "--app", "uts", "--scale", "test",
                     "--places", "2", "--workers", "2",
                     "--chrome-trace", str(trace),
                     "--events", str(events),
                     "--snapshot", str(snapshot)])
        assert code == 0
        out = capsys.readouterr().out
        assert "metric histograms" in out
        assert "event counts" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert all(json.loads(line)
                   for line in events.read_text().splitlines())
        snap = json.loads(snapshot.read_text())
        assert "obs" in snap and "metrics" in snap["obs"]

    def test_diff_stats_identical(self, capsys, tmp_path):
        snap = tmp_path / "a.json"
        snap.write_text(json.dumps({"makespan_cycles": 5, "tasks": 3}))
        assert main(["diff-stats", str(snap), str(snap)]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_diff_stats_fail_over(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"makespan_cycles": 100}))
        b.write_text(json.dumps({"makespan_cycles": 150}))
        assert main(["diff-stats", str(a), str(b)]) == 0
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "10"]) == 1
        assert main(["diff-stats", str(a), str(b),
                     "--fail-over", "60"]) == 0
