"""Unit tests for the DistWS policy (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.apgas import Apgas
from repro.cluster.topology import ClusterSpec
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import FLEXIBLE, SENSITIVE, Task
from repro.sched import DistWS


def fresh_rt(n_places=2, workers=2, max_threads=4, **sched_kwargs):
    spec = ClusterSpec(n_places=n_places, workers_per_place=workers,
                       max_threads=max_threads)
    rt = SimRuntime(spec, DistWS(**sched_kwargs), seed=0)
    return rt


class TestMapping:
    def test_sensitive_goes_private(self):
        rt = fresh_rt()
        t = Task(None, 0, locality=SENSITIVE)
        rt.scheduler.map_task(t)
        assert rt.places[0].queued_private() == 1
        assert len(rt.places[0].shared) == 0

    def test_flexible_fills_spare_workers_first(self):
        rt = fresh_rt(workers=2, max_threads=2)
        for _ in range(2):
            rt.scheduler.map_task(Task(None, 0, locality=FLEXIBLE))
        # Two idle workers: both redirected to private deques.
        assert rt.places[0].queued_private() == 2
        assert len(rt.places[0].shared) == 0

    def test_flexible_overflows_to_shared_when_saturated(self):
        rt = fresh_rt(workers=2, max_threads=2)
        for _ in range(5):
            rt.scheduler.map_task(Task(None, 0, locality=FLEXIBLE))
        # max_threads=2: once two are queued, the rest must go shared.
        assert rt.places[0].queued_private() == 2
        assert len(rt.places[0].shared) == 3

    def test_under_utilized_place_keeps_tasks_private(self):
        rt = fresh_rt(workers=2, max_threads=6)
        for w in rt.places[0].workers:
            w.executing = True  # no spares
        rt.places[0].running_activities = 2
        for _ in range(3):
            rt.scheduler.map_task(Task(None, 0, locality=FLEXIBLE))
        # size() = 2 running + queued; stays < 6 until 4 queued.
        assert rt.places[0].queued_private() == 3
        assert len(rt.places[0].shared) == 0

    def test_inactive_place_keeps_tasks_private(self):
        rt = fresh_rt(workers=2, max_threads=2)
        place = rt.places[0]
        for w in place.workers:
            w.executing = True
            w.deque.push(Task(None, 0))  # kill both spare slots
        place.running_activities = 2
        place.active = False
        rt.scheduler.map_task(Task(None, 0, locality=FLEXIBLE))
        # Despite saturation, inactivity redirects to a private deque.
        assert len(place.shared) == 0

    def test_mapping_cost_sensitive_cheaper_than_flexible(self):
        rt = fresh_rt()
        costs = rt.costs
        s = rt.scheduler.mapping_cost(Task(None, 0, locality=SENSITIVE))
        f = rt.scheduler.mapping_cost(Task(None, 0, locality=FLEXIBLE))
        assert s == costs.private_deque_op
        assert f >= costs.locality_mapping_overhead


class TestChunking:
    def test_default_chunk_is_two(self):
        assert DistWS().remote_chunk_size == 2

    def test_chunk_extras_land_in_thief_mailbox(self):
        spec = ClusterSpec(n_places=2, workers_per_place=1, max_threads=1)
        rt = SimRuntime(spec, DistWS(remote_chunk_size=2), seed=0)
        executed = []

        def program(rt):
            ap = Apgas(rt)

            def leaf(i):
                def body(ctx):
                    executed.append((i, ctx.place))
                return body

            # Eight flexible tasks at place 0; place 1 idle.
            for i in range(8):
                ap.async_at(0, leaf(i), work=4_000_000, flexible=True,
                            label="leaf")

        stats = rt.run(program)
        assert stats.steals.remote_hits > 0
        # Chunked steals deliver at least as many tasks as hit count.
        assert (stats.steals.remote_tasks_received
                >= stats.steals.remote_hits)

    def test_chunk_one_never_overfetches(self):
        spec = ClusterSpec(n_places=2, workers_per_place=1, max_threads=1)
        rt = SimRuntime(spec, DistWS(remote_chunk_size=1), seed=0)

        def program(rt):
            ap = Apgas(rt)
            for i in range(8):
                ap.async_at(0, None, work=4_000_000, flexible=True,
                            label="leaf")

        stats = rt.run(program)
        assert (stats.steals.remote_tasks_received
                == stats.steals.remote_hits)


class TestVictimOrder:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            DistWS(victim_order="alphabetical")

    def test_nearest_order_on_ring(self):
        """With nearest-first on a ring, thieves prefer adjacent places."""
        spec = ClusterSpec(n_places=6, workers_per_place=1, max_threads=1,
                           topology="ring")
        rt = SimRuntime(spec, DistWS(victim_order="nearest"), seed=0)
        shipped = []
        orig = rt.network.send

        def send(src, dst, nbytes, kind="task_ship"):
            if kind == "task_ship" and src != dst:
                shipped.append((src, dst))
            return orig(src, dst, nbytes, kind)

        rt.network.send = send

        def program(rt):
            ap = Apgas(rt)
            def driver(ctx):
                for i in range(12):
                    ctx.spawn(None, place=3, work=4_000_000,
                              flexible=True, label="leaf")
            ap.async_at(3, driver, work=1_000, label="driver")

        rt.run(program)
        assert shipped, "expected cross-place task shipping"
        # All steals originate from place 3; nearest thieves (2 and 4)
        # get first pick, so they appear among the receivers.
        receivers = {dst for _src, dst in shipped}
        assert receivers & {2, 4}

    def test_nearest_completes_work(self):
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4,
                           topology="ring")
        rt = SimRuntime(spec, DistWS(victim_order="nearest"), seed=0)

        def program(rt):
            ap = Apgas(rt)
            for i in range(24):
                ap.async_at(0, None, work=2_000_000, flexible=True,
                            label="leaf")

        stats = rt.run(program)
        assert stats.tasks_executed == 24


class TestStealOrderPreference:
    def test_local_work_preferred_over_remote(self):
        """With work available locally, no remote steal request is sent."""
        spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=2)
        rt = SimRuntime(spec, DistWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)
            # Evenly loaded places: everything can be satisfied locally.
            for p in (0, 1):
                for i in range(4):
                    ap.async_at(p, None, work=100_000, label="leaf")

        stats = rt.run(program)
        assert stats.steals.remote_hits == 0

    def test_single_place_never_attempts_remote(self):
        spec = ClusterSpec(n_places=1, workers_per_place=4, max_threads=4)
        rt = SimRuntime(spec, DistWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)
            for i in range(16):
                ap.async_at(0, None, work=500_000, flexible=True,
                            label="leaf")

        stats = rt.run(program)
        assert stats.steals.remote_attempts == 0
        assert stats.messages == 0
