"""Property tests for Algorithm 1's mapping rules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterSpec, DistWS, SimRuntime
from repro.runtime.task import FLEXIBLE, SENSITIVE, Task


def fresh_rt(workers=4, max_threads=6):
    spec = ClusterSpec(n_places=2, workers_per_place=workers,
                       max_threads=max_threads)
    return SimRuntime(spec, DistWS(), seed=0)


class TestMappingProperties:
    @settings(max_examples=40, deadline=None)
    @given(flags=st.lists(st.booleans(), min_size=1, max_size=40))
    def test_sensitive_tasks_never_enter_shared_deque(self, flags):
        rt = fresh_rt()
        for flexible in flags:
            rt.scheduler.map_task(Task(
                None, 0, locality=FLEXIBLE if flexible else SENSITIVE))
        shared_tasks = list(rt.places[0].shared._items)
        assert all(t.is_flexible for t in shared_tasks)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=60))
    def test_conservation_every_task_lands_somewhere(self, n):
        rt = fresh_rt()
        for i in range(n):
            rt.scheduler.map_task(Task(
                None, 0, locality=FLEXIBLE if i % 3 else SENSITIVE))
        place = rt.places[0]
        total = place.queued_private() + len(place.shared)
        assert total == n

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=60))
    def test_flexible_overflow_only_after_saturation(self, n):
        """Nothing reaches the shared deque while the place still has
        spare capacity (Algorithm 1 lines 4-6)."""
        rt = fresh_rt(workers=4, max_threads=6)
        place = rt.places[0]
        for i in range(n):
            before_spares = place.spares()
            before_size = place.size()
            shared_before = len(place.shared)
            rt.scheduler.map_task(Task(None, 0, locality=FLEXIBLE))
            if len(place.shared) > shared_before:
                # It overflowed: the place really was saturated.
                assert before_spares == 0
                assert before_size >= rt.spec.max_threads

    def test_mapping_cost_consistent_with_destination(self):
        rt = fresh_rt(workers=2, max_threads=2)
        place = rt.places[0]
        costs = rt.costs
        # Saturate the place.
        for _ in range(4):
            rt.scheduler.map_task(Task(None, 0, locality=FLEXIBLE))
        assert len(place.shared) > 0
        # With the place saturated the flexible mapping pays shared cost.
        t = Task(None, 0, locality=FLEXIBLE)
        quoted = rt.scheduler.mapping_cost(t)
        assert quoted == pytest.approx(
            costs.locality_mapping_overhead + costs.shared_deque_op)
