"""Tests for the annotation-free adaptive classifier (§II extension)."""

from __future__ import annotations

import pytest

from repro import ClusterSpec, SimRuntime
from repro.apps import make_app
from repro.cluster.memory import DataBlock
from repro.runtime.task import FLEXIBLE, SENSITIVE, Task
from repro.sched import AdaptiveDistWS, DistWS, X10WS


def fresh_rt(**kw):
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    return SimRuntime(spec, AdaptiveDistWS(**kw), seed=0)


class TestClassifier:
    def test_large_self_contained_task_is_flexible(self):
        rt = fresh_rt()
        t = Task(None, 0, work=2_000_000, closure_bytes=256)
        assert rt.scheduler.classify_flexible(t)

    def test_tiny_task_is_sensitive(self):
        rt = fresh_rt()
        t = Task(None, 0, work=10_000)
        assert not rt.scheduler.classify_flexible(t)

    def test_copy_back_pins_task(self, memory):
        rt = fresh_rt()
        b = memory.allocate(0, 64)
        t = Task(None, 0, work=2_000_000, copy_back=[b])
        assert not rt.scheduler.classify_flexible(t)

    def test_data_heavy_task_is_sensitive(self, memory):
        rt = fresh_rt()
        big = memory.allocate(0, 10_000_000)  # 10 MB for 2M cycles
        t = Task(None, 0, work=2_000_000, reads=[big])
        assert not rt.scheduler.classify_flexible(t)

    def test_annotation_is_ignored(self):
        rt = fresh_rt()
        # Annotated flexible but tiny: classified sensitive anyway.
        t = Task(None, 0, work=1_000, locality=FLEXIBLE)
        assert not rt.scheduler.classify_flexible(t)
        # Annotated sensitive but big and light: classified flexible.
        t2 = Task(None, 0, work=5_000_000, locality=SENSITIVE)
        assert rt.scheduler.classify_flexible(t2)

    def test_counters_track_decisions(self):
        rt = fresh_rt()
        rt.scheduler.map_task(Task(None, 0, work=5_000_000))
        rt.scheduler.map_task(Task(None, 0, work=100))
        assert rt.scheduler.classified_flexible == 1
        assert rt.scheduler.classified_sensitive == 1


class TestEndToEnd:
    def test_runs_paper_app_correctly(self):
        app = make_app("turing", scale="test", seed=5)
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, AdaptiveDistWS(), seed=1)
        stats = app.run(rt)  # oracle validation
        assert stats.tasks_executed > 0

    def test_recovers_distributed_balancing(self):
        """Annotation-free classification still distributes an imbalanced
        coarse workload across places."""
        from repro.apgas import Apgas

        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, AdaptiveDistWS(), seed=1)
        places = set()

        def program(rt):
            ap = Apgas(rt)

            def driver(ctx):
                for i in range(48):
                    def body(c):
                        places.add(c.place)
                    ctx.spawn(body, place=0, work=2_000_000,
                              label="leaf")

            ap.async_at(0, driver, work=10_000, label="driver")

        rt.run(program)
        assert len(places) > 1
