"""Unit tests for the baseline policies (X10WS, DistWS-NS, RandomWS,
Lifeline)."""

from __future__ import annotations

import pytest

from repro.apgas import Apgas
from repro.cluster.topology import ClusterSpec
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import FLEXIBLE, SENSITIVE, Task
from repro.sched import DistWS, DistWSNS, LifelineWS, RandomWS, X10WS
from repro.sched.lifeline import lifeline_graph


def imbalanced_program(n_tasks=48, work=2_000_000, flexible=True):
    def program(rt):
        ap = Apgas(rt)
        for i in range(n_tasks):
            ap.async_at(0, None, work=work, flexible=flexible, label="leaf")
    return program


class TestX10WS:
    def test_maps_everything_private(self):
        spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, X10WS(), seed=0)
        for loc in (SENSITIVE, FLEXIBLE):
            rt.scheduler.map_task(Task(None, 0, locality=loc))
        assert rt.places[0].queued_private() == 2
        assert len(rt.places[0].shared) == 0

    def test_local_steals_happen(self):
        spec = ClusterSpec(n_places=1, workers_per_place=4, max_threads=4)
        rt = SimRuntime(spec, X10WS(), seed=0)

        def program(rt):
            ap = Apgas(rt)

            def driver(ctx):
                # Help-first: children pile onto the driver's own deque,
                # so peers must steal them.
                for i in range(16):
                    ctx.spawn(None, work=2_000_000, label="leaf")

            ap.async_at(0, driver, work=1_000, label="driver")

        stats = rt.run(program)
        assert stats.steals.local_hits > 0
        assert stats.steals.remote_attempts == 0

    def test_children_map_to_spawning_workers_deque(self):
        spec = ClusterSpec(n_places=1, workers_per_place=4, max_threads=4)
        rt = SimRuntime(spec, X10WS(), seed=0)

        def program(rt):
            ap = Apgas(rt)

            def driver(ctx):
                for i in range(8):
                    ctx.spawn(None, work=1_000, label="leaf")

            ap.async_at(0, driver, work=1_000, label="driver")

        rt.run(program)
        # The driver's worker received the driver plus all 8 children on
        # its own deque; no other worker got a direct push.
        pushes = sorted(w.deque.pushes for w in rt.places[0].workers)
        assert pushes == [0, 0, 0, 9]


class TestDistWSNS:
    def test_round_robin_mapping(self):
        spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, DistWSNS(), seed=0)
        for _ in range(6):
            rt.scheduler.map_task(Task(None, 0, locality=SENSITIVE))
        assert rt.places[0].queued_private() == 3
        assert len(rt.places[0].shared) == 3

    def test_round_robin_is_per_place(self):
        spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, DistWSNS(), seed=0)
        rt.scheduler.map_task(Task(None, 0))
        rt.scheduler.map_task(Task(None, 1))
        # Both first-at-place: both private.
        assert rt.places[0].queued_private() == 1
        assert rt.places[1].queued_private() == 1

    def test_more_remote_refs_than_distws_on_mixed_workload(self):
        """NS ships sensitive tasks too, paying per-touch remote references
        and copy-backs that DistWS structurally avoids (Table II/III
        mechanism)."""
        def program(rt):
            ap = Apgas(rt)
            blocks = [ap.alloc(0, 4096, f"b{i}") for i in range(64)]
            for i in range(64):
                flexible = i % 2 == 0
                ap.async_at(0, None, work=2_000_000,
                            reads=[blocks[i]] * 4,
                            flexible=flexible, encapsulates=flexible,
                            copy_back=() if flexible else (blocks[i],),
                            label="leaf")

        def run(sched):
            spec = ClusterSpec(n_places=4, workers_per_place=2,
                               max_threads=4)
            rt = SimRuntime(spec, sched, seed=2)
            return rt.run(program)

        ns = run(DistWSNS())
        ws = run(DistWS())
        # NS executed sensitive tasks remotely: their written data had to
        # travel back home; DistWS structurally never pays that.
        assert ns.messages_by_kind["result_copyback"] > 0
        assert ws.messages_by_kind["result_copyback"] == 0


class TestRandomWS:
    def test_single_task_chunks(self):
        assert RandomWS().remote_chunk_size == 1

    def test_completes_and_distributes(self):
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, RandomWS(), seed=0)
        stats = rt.run(imbalanced_program(48))
        assert stats.tasks_executed == 48
        assert stats.tasks_executed_remote > 0


class TestLifeline:
    def test_lifeline_graph_structure(self):
        g = lifeline_graph(8)
        # Cyclic hypercube over 8 places: strides 1, 2, 4.
        assert g[0] == [1, 2, 4]
        assert g[7] == [0, 1, 3]
        for p, targets in g.items():
            assert p not in targets

    def test_lifeline_graph_trivial_cases(self):
        assert lifeline_graph(1) == {0: []}
        assert lifeline_graph(2) == {0: [1], 1: [0]}

    def test_completes_and_distributes(self):
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, LifelineWS(), seed=0)
        stats = rt.run(imbalanced_program(48))
        assert stats.tasks_executed == 48
        assert stats.tasks_executed_remote > 0

    def test_quiesced_places_receive_pushed_work(self):
        """After lifeline registration, new work is pushed, not stolen."""
        spec = ClusterSpec(n_places=4, workers_per_place=1, max_threads=1)
        sched = LifelineWS()
        rt = SimRuntime(spec, sched, seed=0)
        executed_places = []

        def program(rt):
            ap = Apgas(rt)

            def leaf(ctx):
                executed_places.append(ctx.place)

            def driver(ctx):
                # Burst of flexible work spawned *after* other places have
                # had time to quiesce onto their lifelines.
                for i in range(12):
                    ctx.spawn(leaf, work=3_000_000, locality=FLEXIBLE,
                              label="leaf")

            ap.async_at(0, driver, work=30_000_000, label="driver")

        rt.run(program)
        assert len(set(executed_places)) > 1
