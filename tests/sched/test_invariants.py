"""Scheduler invariants — the selectivity guarantees of §X-A.

"DistWS guarantees that the programmer-specified locality preferences are
honoured, unless they are explicitly marked as being flexible."
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas import Apgas
from repro.cluster.topology import ClusterSpec
from repro.runtime.runtime import SimRuntime
from repro.sched import DistWS, DistWSNS, LifelineWS, RandomWS, X10WS, make_scheduler


def mixed_workload(n_tasks, flexible_mask, work=800_000):
    """Tasks all born at place 0; ``flexible_mask[i]`` picks the class."""
    trace = []

    def program(rt):
        ap = Apgas(rt)

        def leaf(i):
            def body(ctx):
                trace.append((i, ctx.place))
            return body

        for i in range(n_tasks):
            ap.async_at(0, leaf(i), work=work,
                        flexible=bool(flexible_mask[i % len(flexible_mask)]),
                        label="leaf")

    return program, trace


@pytest.mark.parametrize("sched_name", ["DistWS", "X10WS", "RandomWS",
                                        "Lifeline"])
def test_sensitive_tasks_never_leave_home(sched_name):
    """Under every locality-honouring policy, sensitive tasks stay put."""
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler(sched_name), seed=3)
    program, trace = mixed_workload(32, flexible_mask=[0, 1])
    rt.run(program)
    for i, place in trace:
        if i % 2 == 0:  # sensitive
            assert place == 0, f"sensitive task {i} ran at {place}"


def test_distws_ns_moves_sensitive_tasks():
    """The non-selective control must, by design, violate locality."""
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, DistWSNS(), seed=3)
    program, trace = mixed_workload(64, flexible_mask=[0], work=2_000_000)
    rt.run(program)
    assert any(place != 0 for _, place in trace)


def test_x10ws_never_crosses_places():
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, X10WS(), seed=3)
    program, trace = mixed_workload(64, flexible_mask=[1], work=2_000_000)
    rt.run(program)
    assert all(place == 0 for _, place in trace)
    assert rt.stats.steals.remote_hits == 0
    assert rt.stats.tasks_executed_remote == 0


def test_distws_only_flexible_tasks_travel():
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, DistWS(), seed=3)
    program, trace = mixed_workload(64, flexible_mask=[0, 1],
                                    work=2_000_000)
    rt.run(program)
    moved = [i for i, place in trace if place != 0]
    assert moved, "expected some flexible tasks to migrate"
    assert all(i % 2 == 1 for i in moved)


@settings(max_examples=10, deadline=None)
@given(mask=st.lists(st.booleans(), min_size=1, max_size=8),
       seed=st.integers(min_value=0, max_value=1000))
def test_distws_selectivity_property(mask, seed):
    """Property: whatever the flexible/sensitive mix and seed, DistWS never
    executes a sensitive task away from its home place."""
    spec = ClusterSpec(n_places=3, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, DistWS(), seed=seed)
    program, trace = mixed_workload(24, flexible_mask=mask, work=400_000)
    rt.run(program)
    assert len(trace) == 24
    for i, place in trace:
        if not mask[i % len(mask)]:
            assert place == 0


def test_remote_chunk_accounting():
    """Each successful distributed steal ships at most ``remote_chunk_size``
    tasks, and the per-deque counters agree with the global stats."""
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, DistWS(), seed=3)
    program, trace = mixed_workload(64, flexible_mask=[1], work=2_000_000)
    rt.run(program)
    counters = rt.stats.steals
    assert counters.remote_hits > 0
    assert counters.remote_tasks_received \
        <= counters.remote_hits * rt.scheduler.remote_chunk_size
    assert counters.remote_tasks_received \
        == sum(p.shared.remote_takes for p in rt.places)
    assert rt.stats.tasks_executed_remote \
        == sum(1 for _, place in trace if place != 0)


def test_paper_chunk_sizes():
    """§V-B fixes the steal chunk at two tasks; the baselines steal singly."""
    assert DistWS().remote_chunk_size == 2
    assert DistWSNS().remote_chunk_size == 2
    assert RandomWS().remote_chunk_size == 1
    assert LifelineWS().remote_chunk_size == 1


def test_locality_guard_catches_scheduler_bugs():
    """The runtime aborts if a locality-guaranteeing scheduler ever lets
    a sensitive task execute away from home (a planted bug here)."""
    from repro.errors import SimulationError

    class BuggyDistWS(DistWS):
        name = "BuggyDistWS"

        def map_task(self, task, from_worker=None):
            # Bug: publish everything on the shared deque, sensitive
            # tasks included, while still claiming the guarantee.
            self._push_shared(task)

    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, BuggyDistWS(), seed=3)
    program, _trace = mixed_workload(48, flexible_mask=[0],
                                     work=2_000_000)
    with pytest.raises(SimulationError) as err:
        rt.run(program)
    assert "locality violation" in str(err.value.__cause__)


def test_all_schedulers_complete_all_tasks():
    for name in ("X10WS", "DistWS", "DistWS-NS", "RandomWS", "Lifeline"):
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, make_scheduler(name), seed=11)
        program, trace = mixed_workload(40, flexible_mask=[1, 0, 1])
        rt.run(program)
        assert len(trace) == 40, name
        assert sorted(i for i, _ in trace) == list(range(40)), name
