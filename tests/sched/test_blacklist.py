"""Victim-blacklist strike semantics (fault injection, sched/base.py).

The cost model promises: the blacklist span starts at
``victim_blacklist_cycles``, doubles per consecutive strike, expires on
its own, and resets after a successful steal.
"""

from __future__ import annotations

from repro.cluster.topology import ClusterSpec
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.runtime import SimRuntime
from repro.sched import DistWS


def bound_scheduler():
    """A DistWS bound to a runtime with an (inactive-crash) fault plan."""
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    sched = DistWS()
    rt = SimRuntime(spec, sched, seed=0)
    FaultInjector(FaultPlan.parse("loss:steal=0.1")).attach(rt)
    return rt, sched


class TestBlacklistStrikes:
    def test_span_doubles_per_consecutive_strike(self):
        rt, sched = bound_scheduler()
        base = rt.costs.victim_blacklist_cycles
        for expected in (base, 2 * base, 4 * base, 8 * base):
            sched._blacklist_victim(3)
            assert sched._victim_blacklist[3] == rt.env.now + expected
        assert rt.faults.stats.blacklists == 4

    def test_successful_steal_resets_strikes(self):
        rt, sched = bound_scheduler()
        base = rt.costs.victim_blacklist_cycles
        sched._blacklist_victim(3)
        sched._blacklist_victim(3)
        assert sched._victim_blacklist[3] == rt.env.now + 2 * base
        sched._note_steal_success(3)
        sched._blacklist_victim(3)
        assert sched._victim_blacklist[3] == rt.env.now + base

    def test_strikes_are_per_victim(self):
        rt, sched = bound_scheduler()
        base = rt.costs.victim_blacklist_cycles
        sched._blacklist_victim(1)
        sched._blacklist_victim(1)
        sched._blacklist_victim(2)
        assert sched._victim_blacklist[1] == rt.env.now + 2 * base
        assert sched._victim_blacklist[2] == rt.env.now + base

    def test_entry_decays_but_strikes_persist(self):
        rt, sched = bound_scheduler()
        base = rt.costs.victim_blacklist_cycles
        sched._blacklist_victim(3)
        assert sched._victim_blacklisted(3)
        rt.env.run(until=rt.env.now + base + 1)
        # The entry expired on its own...
        assert not sched._victim_blacklisted(3)
        assert 3 not in sched._victim_blacklist
        # ...but without a successful steal the next strike still doubles.
        sched._blacklist_victim(3)
        assert sched._victim_blacklist[3] == rt.env.now + 2 * base

    def test_doubling_is_capped(self):
        rt, sched = bound_scheduler()
        base = rt.costs.victim_blacklist_cycles
        for _ in range(40):
            sched._blacklist_victim(3)
        assert sched._victim_blacklist[3] == rt.env.now + base * 2 ** 16
