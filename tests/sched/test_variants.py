"""Golden-snapshot regression for the steal-variant schedulers.

Two halves of the registry-growth contract:

- the *existing* schedulers must stay byte-identical after StealHalfWS /
  MultiStealWS / LocalizedWS are registered — that is pinned by
  ``tests/sim/test_kernel_fastpath.py`` against its pre-existing golden
  file, which runs in the same tree as the new registrations (named RNG
  streams make new policies unable to perturb old draws);
- the new schedulers themselves must stay deterministic from PR to PR —
  pinned here by ``golden_variant_snapshots.json``, captured at
  introduction time with the same harness (4 places x 2 workers,
  ``scale="test"``, app seed 12345) as the kernel goldens.

Regenerate deliberately after an intentional physics change::

    PYTHONPATH=src python -c "from tests.sched.test_variants import \
regenerate; regenerate()"
"""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import make_app
from repro.cluster.topology import ClusterSpec
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import _reset_task_ids
from repro.sched import make_scheduler

GOLDEN = os.path.join(os.path.dirname(__file__),
                      "golden_variant_snapshots.json")

#: scheduler -> constructor kwargs exercising its distinctive knob.
VARIANTS = {
    "StealHalfWS": {},
    "MultiStealWS": {"steal_width": 3},
    "LocalizedWS": {"steal_radius": 1, "radius_strikes": 2},
}

#: The pinned grid: every variant on two apps plus one faulted cell.
CELL_KEYS = tuple(
    f"{sched}|{app}|{seed}"
    for sched in sorted(VARIANTS)
    for app, seed in (("uts", 1), ("mcpi", 7))
) + tuple(
    f"{sched}|uts|1|crash:p2@600000,loss:steal=0.05,seed:3"
    for sched in sorted(VARIANTS)
)


def _snapshot_bytes(key: str) -> str:
    parts = key.split("|")
    _reset_task_ids()
    topology = "ring" if parts[0] == "LocalizedWS" else "full"
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4,
                       topology=topology)
    sched = make_scheduler(parts[0], **VARIANTS[parts[0]])
    rt = SimRuntime(spec, sched, seed=int(parts[2]))
    if len(parts) > 3:
        FaultInjector(FaultPlan.parse(parts[3])).attach(rt)
    app = make_app(parts[1], scale="test", seed=12345)
    stats = app.run(rt)
    return json.dumps(stats.snapshot(), sort_keys=True, indent=1)


def regenerate() -> None:  # pragma: no cover - maintenance helper
    cells = {key: json.loads(_snapshot_bytes(key)) for key in CELL_KEYS}
    with open(GOLDEN, "w") as fh:
        json.dump(cells, fh, sort_keys=True, indent=1)
        fh.write("\n")


with open(GOLDEN) as _fh:
    _GOLDEN_CELLS = json.load(_fh)


def test_golden_covers_the_pinned_grid():
    assert sorted(_GOLDEN_CELLS) == sorted(CELL_KEYS)


@pytest.mark.parametrize("key", sorted(_GOLDEN_CELLS))
def test_variant_matches_golden(key):
    expected = json.dumps(_GOLDEN_CELLS[key], sort_keys=True, indent=1)
    assert _snapshot_bytes(key) == expected
