"""Every scheduler must fail clearly when used before bind()."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.runtime.task import FLEXIBLE, Task
from repro.sched import SCHEDULERS, make_scheduler


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_mapping_cost_unbound_raises_scheduler_error(name):
    sched = make_scheduler(name)
    task = Task(None, 0, locality=FLEXIBLE, work=100)
    with pytest.raises(SchedulerError, match="scheduler not bound"):
        sched.mapping_cost(task)
