"""Property-based scheduler invariants over seeded random task graphs.

Three guarantees the paper's schedulers must hold for *every* workload,
not just the curated ones:

- **Selectivity** (§X-A): a locality-sensitive ``async (p)`` task never
  executes outside its home place, whatever the graph shape, scheduler
  or seed.
- **Steal discipline** (§V-A/B): distributed steals only ever touch
  shared deques, and each takes the FIFO-oldest chunk of at most
  ``remote_chunk_size`` (2) tasks.
- **Exactly-once completion**: every spawned task's body runs exactly
  once, including under randomized fault plans (crashes, message loss,
  latency spikes, stragglers).

Each property runs dozens of hypothesis-generated cases (>=200 across
the module); failures replay from the printed falsifying example /
``reproduce_failure`` blob (``print_blob`` is enabled).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apgas import Apgas
from repro.cluster.topology import ClusterSpec
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import LatencySpike, PlaceCrash, SensitivePolicy, Straggler
from repro.runtime.deques import SharedDeque
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

#: Shared settings: randomized but replayable — hypothesis prints the
#: failure blob, and ``deadline=None`` keeps slow-host runs green.
PROPERTY_SETTINGS = dict(deadline=None, print_blob=True,
                         suppress_health_check=[HealthCheck.too_slow])


@st.composite
def task_graphs(draw):
    """A random two-level task graph on a random tiny cluster.

    Returns ``(spec, tasks)`` where each task is
    ``(home_place, flexible, work, n_children)``; children spawn at the
    parent's executing place (help-first), inheriting its flexibility.
    """
    n_places = draw(st.integers(min_value=2, max_value=4))
    spec = ClusterSpec(n_places=n_places, workers_per_place=2,
                       max_threads=4)
    tasks = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=n_places - 1),
                  st.booleans(),
                  st.sampled_from([100_000, 250_000, 600_000]),
                  st.integers(min_value=0, max_value=2)),
        min_size=6, max_size=18))
    return spec, tasks


def run_graph(spec, tasks, sched_name, seed, scheduler=None):
    """Execute a drawn graph; returns ``(runtime, trace)``.

    ``trace`` records ``(task_id, home, executed_place, flexible)`` per
    body execution — a child's home is its spawn-time place (the place
    its parent was executing at), so the selectivity and steal checks
    apply to the whole graph, not just the roots.  ``scheduler`` lets a
    test pass a pre-built (possibly instrumented) policy instance.
    """
    if scheduler is None:
        scheduler = make_scheduler(sched_name)
    rt = SimRuntime(spec, scheduler, seed=seed)
    trace = []

    def program(runtime):
        ap = Apgas(runtime)

        def record(ctx, flexible):
            trace.append((ctx.task.task_id, ctx.task.home_place,
                          ctx.place, flexible))

        def leaf(flexible):
            def body(ctx):
                record(ctx, flexible)
            return body

        def parent(flexible, n_children, work):
            def body(ctx):
                record(ctx, flexible)
                for _ in range(n_children):
                    ctx.spawn(leaf(flexible), work=work // 2,
                              flexible=flexible, label="child")
            return body

        for home, flexible, work, n_children in tasks:
            ap.async_at(home, parent(flexible, n_children, work),
                        work=work, flexible=flexible, label="root")

    rt.run(program)
    return rt, trace


class TestSelectivity:
    @settings(max_examples=70, **PROPERTY_SETTINGS)
    @given(graph=task_graphs(),
           sched_name=st.sampled_from(["DistWS", "X10WS", "RandomWS",
                                       "Lifeline", "StealHalfWS",
                                       "MultiStealWS", "LocalizedWS"]),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_sensitive_tasks_never_leave_home(self, graph, sched_name,
                                              seed):
        """No locality-honouring policy moves a sensitive task, ever."""
        spec, tasks = graph
        _rt, trace = run_graph(spec, tasks, sched_name, seed)
        expected = len(tasks) + sum(t[3] for t in tasks)
        assert len(trace) == expected
        for task_id, home, place, flexible in trace:
            if not flexible:
                assert place == home, (
                    f"sensitive task {task_id} (home {home}) ran at "
                    f"{place} under {sched_name}")


class TestStealDiscipline:
    @settings(max_examples=60, **PROPERTY_SETTINGS)
    @given(graph=task_graphs(),
           sched_name=st.sampled_from(["DistWS", "RandomWS", "Lifeline",
                                       "MultiStealWS", "LocalizedWS"]),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_remote_steals_take_fifo_oldest_chunk_from_shared(
            self, graph, sched_name, seed):
        """Distributed steals: shared deques only, FIFO-oldest, <=chunk.

        Wraps the two shared-deque take paths to check every remote take
        against the deque's state at that instant, then cross-checks
        that exactly the remotely-taken tasks executed away from home.
        Tasks leave a place over the network through two channels only:
        chunked distributed steals (``take_chunk``) and, for the
        Lifeline policy, mapping-time pushes to registered lifeliners
        (single ``take_oldest`` takes).
        """
        spec, tasks = graph
        chunk_taken = set()
        push_taken = set()
        violations = []
        in_chunk = []
        original_chunk = SharedDeque.take_chunk
        original_oldest = SharedDeque.take_oldest

        def checked_chunk(self, n, remote):
            before = list(self._items)
            in_chunk.append(True)
            try:
                chunk = original_chunk(self, n, remote)
            finally:
                in_chunk.pop()
            if remote:
                if len(chunk) > n:
                    violations.append(f"chunk of {len(chunk)} > {n}")
                if chunk != before[:len(chunk)]:
                    violations.append("remote chunk was not FIFO-oldest")
                for task in chunk:
                    chunk_taken.add(task.task_id)
            return chunk

        def checked_oldest(self, remote):
            before = self._items[0] if self._items else None
            task = original_oldest(self, remote)
            if remote and not in_chunk and task is not None:
                if task is not before:
                    violations.append("remote take was not the oldest")
                push_taken.add(task.task_id)
            if remote and task is not None and not task.is_flexible:
                violations.append(
                    f"sensitive task {task.task_id} left via the "
                    "shared deque")
            return task

        SharedDeque.take_chunk = checked_chunk
        SharedDeque.take_oldest = checked_oldest
        try:
            rt, trace = run_graph(spec, tasks, sched_name, seed)
        finally:
            SharedDeque.take_chunk = original_chunk
            SharedDeque.take_oldest = original_oldest

        assert not violations, violations
        counters = rt.stats.steals
        # Each successful distributed steal took at most one chunk.
        assert len(chunk_taken) \
            <= counters.remote_hits * rt.scheduler.remote_chunk_size
        # Every remote take went through a shared deque (the wrappers saw
        # it), and the stats agree with the per-deque counters.
        remote_taken = chunk_taken | push_taken
        assert counters.remote_tasks_received == len(remote_taken) \
            == sum(p.shared.remote_takes for p in rt.places)
        # Exactly the remotely-stolen tasks executed away from home; the
        # paper's discipline leaves no other migration channel.
        executed_off_home = {task_id
                             for task_id, home, place, _flex in trace
                             if place != home}
        assert executed_off_home == remote_taken
        assert rt.stats.tasks_executed_remote == len(executed_off_home)


class TestStealHalfContract:
    @settings(max_examples=40, **PROPERTY_SETTINGS)
    @given(graph=task_graphs(),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_remote_takes_exactly_ceil_half(self, graph, seed):
        """Every StealHalfWS distributed take asks for — and receives —
        exactly ``ceil(n/2)`` of the victim deque's ``n`` tasks, oldest
        first, measured under the victim's lock at the take instant."""
        spec, tasks = graph
        violations = []
        remote_takes = []
        original_chunk = SharedDeque.take_chunk

        def checked_chunk(self, n, remote):
            before = list(self._items)
            chunk = original_chunk(self, n, remote)
            if remote:
                want = -(-len(before) // 2)
                if n != want:
                    violations.append(
                        f"requested {n} from a deque of {len(before)}, "
                        f"expected ceil half = {want}")
                if len(chunk) != want:
                    violations.append(
                        f"took {len(chunk)} from a deque of "
                        f"{len(before)}, expected {want}")
                if chunk != before[:len(chunk)]:
                    violations.append("chunk was not the FIFO-oldest half")
                remote_takes.append(len(chunk))
            return chunk

        SharedDeque.take_chunk = checked_chunk
        try:
            rt, trace = run_graph(spec, tasks, "StealHalfWS", seed)
        finally:
            SharedDeque.take_chunk = original_chunk
        assert not violations, violations
        expected = len(tasks) + sum(t[3] for t in tasks)
        assert len(trace) == expected
        assert rt.stats.steals.remote_tasks_received == sum(remote_takes)


class TestMultiStealContract:
    @settings(max_examples=40, **PROPERTY_SETTINGS)
    @given(graph=task_graphs(),
           steal_width=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_no_double_claim_across_in_flight_requests(self, graph,
                                                       steal_width, seed):
        """Concurrent in-flight requests never double-deliver: each
        round's token is claimed at most once, and no task is ever taken
        remotely twice."""
        spec, tasks = graph
        from repro.sched import MultiStealWS, StealToken

        class CountingToken(StealToken):
            __slots__ = ("claims",)

            def __init__(self):
                super().__init__()
                self.claims = 0

            def claim(self):
                self.claims += 1
                super().claim()

        tokens = []
        sched = make_scheduler("MultiStealWS", steal_width=steal_width)
        assert isinstance(sched, MultiStealWS)

        def make_token():
            token = CountingToken()
            tokens.append(token)
            return token

        sched._make_token = make_token
        taken = []
        original_chunk = SharedDeque.take_chunk

        def recording_chunk(self, n, remote):
            chunk = original_chunk(self, n, remote)
            if remote:
                taken.extend(t.task_id for t in chunk)
            return chunk

        SharedDeque.take_chunk = recording_chunk
        try:
            rt, trace = run_graph(spec, tasks, "MultiStealWS", seed,
                                  scheduler=sched)
        finally:
            SharedDeque.take_chunk = original_chunk
        assert len(taken) == len(set(taken)), (
            "a task was delivered by two in-flight steal requests")
        assert all(token.claims <= 1 for token in tokens), (
            "one steal round claimed work twice")
        expected = len(tasks) + sum(t[3] for t in tasks)
        assert len(trace) == expected
        assert rt.stats.steals.remote_tasks_received == len(taken)


class TestLocalizedContract:
    @settings(max_examples=40, **PROPERTY_SETTINGS)
    @given(graph=task_graphs(),
           radius_strikes=st.integers(min_value=1, max_value=4),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_never_probes_beyond_radius_before_strikes(self, graph,
                                                       radius_strikes,
                                                       seed):
        """On a ring, radius-1 rounds only visit hop-1 neighbours until
        ``radius_strikes`` consecutive local failures ran up; every
        wider round is an earned global fallback."""
        _spec, tasks = graph
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4,
                           topology="ring")
        tasks = [(home % spec.n_places, flexible, work, n_children)
                 for home, flexible, work, n_children in tasks]
        sched = make_scheduler("LocalizedWS", steal_radius=1,
                               radius_strikes=radius_strikes)
        rounds = []
        original_round = sched._steal_remote

        def recording_round(worker, order):
            rounds.append((worker.place.place_id,
                           sched._strikes.get(worker.wid, 0), list(order)))
            return original_round(worker, order)

        sched._steal_remote = recording_round
        rt, trace = run_graph(spec, tasks, "LocalizedWS", seed,
                              scheduler=sched)
        assert len(trace) == len(tasks) + sum(t[3] for t in tasks)
        for place, strikes, order in rounds:
            beyond = [pj for pj in order
                      if spec.hop_distance(place, pj) > 1]
            if beyond:
                assert strikes >= radius_strikes, (
                    f"place {place} probed beyond the radius "
                    f"({beyond}) after only {strikes} strikes")
            else:
                assert strikes < radius_strikes


@st.composite
def fault_runs(draw):
    """A random fan-out workload plus a random (valid) fault plan."""
    n_places = draw(st.integers(min_value=3, max_value=4))
    n_tasks = draw(st.integers(min_value=8, max_value=20))
    flexible_mask = draw(st.lists(st.booleans(), min_size=1, max_size=4))
    crash_place = draw(st.integers(min_value=0, max_value=n_places - 1))
    # Absolute cycle times: values in (0, 1] would denote horizon
    # fractions, so draw comfortably above 1.
    crash_at = draw(st.floats(min_value=10.0, max_value=4e6))
    loss_steal = draw(st.sampled_from([0.0, 0.05, 0.2]))
    with_spike = draw(st.booleans())
    straggle_factor = draw(st.sampled_from([1.0, 2.0, 4.0]))
    inj_seed = draw(st.integers(min_value=0, max_value=10_000))
    sched_seed = draw(st.integers(min_value=0, max_value=10_000))

    spikes = ()
    if with_spike:
        spikes = (LatencySpike(start=draw(st.floats(min_value=10.0,
                                                    max_value=1e6)),
                               duration=5e5, factor=8.0),)
    stragglers = ()
    if straggle_factor > 1.0:
        # Slow a place other than the crashed one.
        stragglers = (Straggler(place=(crash_place + 1) % n_places,
                                factor=straggle_factor),)
    loss = {}
    if loss_steal:
        loss = {"steal_request": loss_steal, "steal_reply": loss_steal}
    plan = FaultPlan(crashes=(PlaceCrash(crash_place, crash_at),),
                     loss=loss, spikes=spikes, stragglers=stragglers,
                     sensitive_policy=SensitivePolicy.RELAX,
                     seed=inj_seed)
    return n_places, n_tasks, flexible_mask, plan, sched_seed


class TestExactlyOnceUnderFaults:
    @settings(max_examples=80, **PROPERTY_SETTINGS)
    @given(case=fault_runs(),
           sched_name=st.sampled_from(["DistWS", "StealHalfWS",
                                       "MultiStealWS", "LocalizedWS"]))
    def test_every_task_completes_exactly_once(self, case, sched_name):
        """Random crash/loss/spike/straggler plans never lose or double-
        execute a task (relax policy: orphaned sensitive tasks degrade),
        for the paper's scheduler and all three steal variants."""
        n_places, n_tasks, flexible_mask, plan, sched_seed = case
        plan.validate(n_places)
        spec = ClusterSpec(n_places=n_places, workers_per_place=2,
                           max_threads=4)
        rt = SimRuntime(spec, make_scheduler(sched_name), seed=sched_seed)
        FaultInjector(plan).attach(rt)
        executed = []

        def program(runtime):
            ap = Apgas(runtime)

            def leaf(i):
                def body(ctx):
                    executed.append(i)
                return body

            for i in range(n_tasks):
                ap.async_at(
                    i % n_places, leaf(i), work=300_000,
                    flexible=bool(flexible_mask[i % len(flexible_mask)]),
                    label="leaf")

        stats = rt.run(program)
        assert sorted(executed) == list(range(n_tasks)), (
            f"bodies ran {sorted(executed)}, expected exactly once each "
            f"under {plan}")
        assert stats.tasks_executed == stats.tasks_spawned
        # Loss accounting stays consistent: every loss event was answered
        # by exactly one relocation.
        assert stats.faults.tasks_reexecuted == stats.faults.tasks_lost
