"""Property tests for the NIC contention (LogGP store-and-forward) model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import CostModel
from repro.cluster.network import Network
from repro.cluster.topology import ClusterSpec
from repro.sim.engine import Environment


def make_net(n_places=4):
    env = Environment()
    spec = ClusterSpec(n_places=n_places, workers_per_place=1,
                       max_threads=1)
    return Network(spec, CostModel(), env=env), env


class TestNicModel:
    def test_latency_at_least_wire_time(self):
        net, _ = make_net()
        costs = net.costs
        d = net.send(0, 1, 10_000)
        wire = costs.net_latency + 2 * 10_000 * costs.net_cycles_per_byte
        assert d >= wire * 0.999

    def test_same_sender_serialises(self):
        net, _ = make_net()
        first = net.send(0, 1, 100_000)
        second = net.send(0, 2, 100_000)  # different receiver, same TX
        assert second > first

    def test_different_endpoints_pipeline(self):
        net, _ = make_net()
        a = net.send(0, 1, 100_000)
        b = net.send(2, 3, 100_000)  # disjoint NICs: no queueing
        assert b == pytest.approx(a)

    def test_receiver_serialises_arrivals(self):
        net, _ = make_net()
        a = net.send(0, 3, 100_000)
        b = net.send(1, 3, 100_000)  # different sender, same RX
        assert b > a

    def test_time_advances_frees_nics(self):
        net, env = make_net()
        first = net.send(0, 1, 1_000_000)
        env._now = first * 10  # long after the transfer drained
        again = net.send(0, 1, 1_000_000)
        assert again == pytest.approx(first)

    @settings(max_examples=40, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=200_000),
                          min_size=1, max_size=20))
    def test_delays_monotone_in_queue(self, sizes):
        """Back-to-back same-pair transfers have non-decreasing delays."""
        net, _ = make_net()
        delays = [net.send(0, 1, s) for s in sizes]
        # Each successive transfer waits for all previous bytes, so the
        # completion times (now + delay) are strictly increasing.
        completion = 0.0
        for d in delays:
            assert d > 0
            assert d >= completion or d == pytest.approx(completion)
            completion = d

    @settings(max_examples=40, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=50_000),
                          min_size=1, max_size=30))
    def test_packet_count_tracks_volume(self, sizes):
        net, _ = make_net()
        for s in sizes:
            net.send(0, 1, s)
        expected = sum(max(1, -(-s // net.costs.packet_bytes))
                       for s in sizes)
        assert net.stats.messages == expected
        assert net.stats.bytes == sum(sizes)

    def test_reset_clears_nic_state(self):
        net, _ = make_net()
        slow = net.send(0, 1, 1_000_000)
        net.reset()
        fresh = net.send(0, 1, 1_000_000)
        assert fresh == pytest.approx(slow)  # first-transfer cost again