"""Unit tests for the distributed memory model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cache import LruCache
from repro.cluster.memory import block_distribution
from repro.cluster.network import MSG_DATA_BLOCK, MSG_RESULT_COPYBACK
from repro.errors import PlacementError


class TestAllocation:
    def test_allocate_homes_block(self, memory):
        b = memory.allocate(2, 1024, "x")
        assert b.home_place == 2
        assert memory.replicas(b) == {2}
        assert memory.block(b.block_id) is b

    def test_unknown_block_rejected(self, memory):
        with pytest.raises(PlacementError):
            memory.block(999)

    def test_negative_size_rejected(self, memory):
        with pytest.raises(PlacementError):
            memory.allocate(0, -1)


class TestTouch:
    def test_local_touch_uses_cache(self, memory, costs):
        b = memory.allocate(1, 512)  # 512 B = 8 cache lines
        cache = LruCache(64)
        first = memory.touch(1, cache, b)
        second = memory.touch(1, cache, b)
        assert first == pytest.approx(8 * costs.l1_miss_penalty)
        assert second == 0.0
        assert memory.remote_references == 0

    def test_touch_cost_scales_with_block_size(self, memory, costs):
        small = memory.allocate(1, 64)
        big = memory.allocate(1, 64 * 100)
        cache = LruCache(1024)
        assert (memory.touch(1, cache, big)
                == pytest.approx(100 * memory.touch(1, LruCache(1024), small)))

    def test_local_touch_without_cache_free(self, memory):
        b = memory.allocate(1, 512)
        assert memory.touch(1, None, b) == 0.0

    def test_remote_touch_pays_reference(self, memory, costs):
        b = memory.allocate(0, 512)
        cost = memory.touch(3, None, b)
        assert cost >= costs.remote_access_penalty
        assert memory.remote_references == 1
        assert memory.network.stats.messages == 2  # request + reply

    def test_remote_touch_does_not_replicate(self, memory):
        b = memory.allocate(0, 512)
        memory.touch(3, None, b)
        assert memory.replicas(b) == {0}


class TestMigrate:
    def test_migrate_creates_replica(self, memory):
        b = memory.allocate(0, 4096)
        latency = memory.migrate(b, 2)
        assert latency > 0
        assert memory.has_copy(b, 2)
        assert memory.migrations == 1
        assert memory.network.stats.by_kind[MSG_DATA_BLOCK] == 1

    def test_migrate_to_holder_is_free(self, memory):
        b = memory.allocate(0, 4096)
        memory.migrate(b, 2)
        assert memory.migrate(b, 2) == 0.0
        assert memory.migrations == 1

    def test_migrate_warms_cache(self, memory):
        b = memory.allocate(0, 4096)
        cache = LruCache(4)
        memory.migrate(b, 2, warm_cache=cache)
        assert memory.touch(2, cache, b) == 0.0  # warm hit

    def test_touch_after_migration_is_local(self, memory, costs):
        b = memory.allocate(0, 4096)
        memory.migrate(b, 2)
        cost = memory.touch(2, None, b)
        assert cost == 0.0
        assert memory.remote_references == 0

    def test_invalidate_replicas(self, memory):
        b = memory.allocate(0, 64)
        memory.migrate(b, 1)
        memory.invalidate_replicas(b)
        assert memory.replicas(b) == {0}

    def test_drop_replica(self, memory):
        b = memory.allocate(0, 64)
        memory.migrate(b, 1)
        memory.drop_replica(b, 1)
        assert memory.replicas(b) == {0}

    def test_drop_replica_never_drops_home(self, memory):
        b = memory.allocate(0, 64)
        memory.drop_replica(b, 0)
        assert memory.replicas(b) == {0}


class TestCopyBack:
    def test_copy_back_from_home_is_free(self, memory):
        b = memory.allocate(1, 256)
        assert memory.copy_back(b, 1) == 0.0
        assert memory.network.stats.messages == 0

    def test_copy_back_from_remote_counted(self, memory):
        b = memory.allocate(1, 256)
        cost = memory.copy_back(b, 3)
        assert cost > 0
        assert memory.network.stats.by_kind[MSG_RESULT_COPYBACK] == 1


class TestBlockDistribution:
    def test_even_split(self):
        chunks = block_distribution(8, 4)
        assert [len(c) for c in chunks] == [2, 2, 2, 2]

    def test_remainder_goes_to_early_places(self):
        chunks = block_distribution(10, 4)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]

    def test_empty_array(self):
        chunks = block_distribution(0, 3)
        assert all(len(c) == 0 for c in chunks)

    def test_invalid_args_rejected(self):
        with pytest.raises(PlacementError):
            block_distribution(5, 0)
        with pytest.raises(PlacementError):
            block_distribution(-1, 2)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=0, max_value=1000),
           p=st.integers(min_value=1, max_value=32))
    def test_partition_property(self, n, p):
        chunks = block_distribution(n, p)
        assert len(chunks) == p
        covered = [i for c in chunks for i in c]
        assert covered == list(range(n))
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1
