"""Unit tests for cluster topology specs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterSpec, paper_cluster, worker_sweep
from repro.errors import ConfigError


class TestClusterSpec:
    def test_defaults_match_paper_platform(self):
        spec = ClusterSpec()
        assert spec.n_places == 16
        assert spec.workers_per_place == 8
        assert spec.total_workers == 128

    @pytest.mark.parametrize("kwargs", [
        {"n_places": 0},
        {"workers_per_place": 0},
        {"max_threads": 2, "workers_per_place": 4},
        {"topology": "torus"},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterSpec(**kwargs)

    def test_worker_ids_enumerates_all(self):
        spec = ClusterSpec(n_places=3, workers_per_place=2, max_threads=3)
        ids = list(spec.worker_ids())
        assert len(ids) == 6
        assert ids[0] == (0, 0)
        assert ids[-1] == (2, 1)

    def test_full_topology_distance(self):
        spec = ClusterSpec(n_places=5, workers_per_place=1, max_threads=1)
        assert spec.hop_distance(0, 0) == 0
        assert spec.hop_distance(0, 4) == 1
        assert spec.hop_distance(3, 1) == 1

    def test_ring_topology_distance(self):
        spec = ClusterSpec(n_places=6, workers_per_place=1, max_threads=1,
                           topology="ring")
        assert spec.hop_distance(0, 1) == 1
        assert spec.hop_distance(0, 5) == 1  # wraps around
        assert spec.hop_distance(0, 3) == 3

    def test_ring_neighbours_nearest_first(self):
        spec = ClusterSpec(n_places=6, workers_per_place=1, max_threads=1,
                           topology="ring")
        order = spec.neighbours_by_distance(0)
        assert order[0:2] == [1, 5]
        assert order[-1] == 3

    def test_out_of_range_place_rejected(self):
        spec = ClusterSpec(n_places=2, workers_per_place=1, max_threads=1)
        with pytest.raises(ConfigError):
            spec.hop_distance(0, 2)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=32),
           src=st.integers(min_value=0, max_value=31),
           dst=st.integers(min_value=0, max_value=31))
    def test_ring_distance_symmetric(self, n, src, dst):
        src, dst = src % n, dst % n
        spec = ClusterSpec(n_places=n, workers_per_place=1, max_threads=1,
                           topology="ring")
        assert spec.hop_distance(src, dst) == spec.hop_distance(dst, src)
        assert spec.hop_distance(src, dst) <= n // 2


class TestNeighbourMemoisation:
    """The neighbour order is computed once per (spec, src).

    Nearest-order stealers ask for it on every distributed steal round;
    re-sorting all places there put an O(P log P) step with O(P)
    ``hop_distance`` calls on the hot path.
    """

    def test_repeat_calls_do_not_recompute(self, monkeypatch):
        # A unique spec shape so earlier tests can't have warmed the cache.
        spec = ClusterSpec(n_places=23, workers_per_place=1, max_threads=1,
                           topology="ring")
        calls = []
        real = ClusterSpec.hop_distance

        def counting(self, src, dst):
            calls.append((src, dst))
            return real(self, src, dst)

        monkeypatch.setattr(ClusterSpec, "hop_distance", counting)
        first = spec.neighbours_by_distance(7)
        assert calls, "first call must compute the order"
        calls.clear()
        for _ in range(100):
            assert spec.neighbours_by_distance(7) == first
        assert calls == [], "memoised order must not re-derive distances"

    def test_equal_specs_share_the_cache(self, monkeypatch):
        a = ClusterSpec(n_places=29, workers_per_place=1, max_threads=1,
                        topology="ring")
        b = ClusterSpec(n_places=29, workers_per_place=1, max_threads=1,
                        topology="ring")
        first = a.neighbours_by_distance(3)
        calls = []
        real = ClusterSpec.hop_distance

        def counting(self, src, dst):
            calls.append((src, dst))
            return real(self, src, dst)

        monkeypatch.setattr(ClusterSpec, "hop_distance", counting)
        # Frozen dataclasses hash by value: b hits a's cache entry.
        assert b.neighbours_by_distance(3) == first
        assert calls == []

    def test_returned_list_is_a_private_copy(self):
        spec = ClusterSpec(n_places=8, workers_per_place=1, max_threads=1,
                           topology="ring")
        order = spec.neighbours_by_distance(0)
        order.append(999)
        assert 999 not in spec.neighbours_by_distance(0)


class TestFactories:
    def test_paper_cluster_is_128_workers(self):
        spec = paper_cluster()
        assert spec.total_workers == 128
        assert spec.topology == "full"

    def test_worker_sweep_matches_fig5_axis(self):
        specs = worker_sweep()
        totals = [s.total_workers for s in specs]
        assert totals == [1, 2, 4, 8, 16, 32, 64, 128]
        # <= 8 workers on one place, beyond that 8 per place
        assert all(s.n_places == 1 for s in specs[:4])
        assert [s.n_places for s in specs[4:]] == [2, 4, 8, 16]

    def test_worker_sweep_rejects_non_multiples(self):
        with pytest.raises(ConfigError):
            worker_sweep([12])

    def test_worker_sweep_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            worker_sweep([0])
