"""Unit tests for the cycle cost model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.errors import ConfigError


class TestConversions:
    def test_ms_round_trip(self, costs):
        assert costs.ms(costs.cycles(3.5)) == pytest.approx(3.5)

    def test_default_is_2ghz(self):
        assert DEFAULT_COST_MODEL.cycles_per_ms == 2_000_000.0
        assert DEFAULT_COST_MODEL.ms(2_000_000) == pytest.approx(1.0)

    def test_transfer_cycles_linear_in_bytes(self, costs):
        small = costs.transfer_cycles(0)
        big = costs.transfer_cycles(1000)
        assert small == costs.net_latency
        assert big == pytest.approx(
            costs.net_latency + 1000 * costs.net_cycles_per_byte)

    def test_negative_transfer_rejected(self, costs):
        with pytest.raises(ConfigError):
            costs.transfer_cycles(-1)


class TestValidation:
    def test_default_model_valid(self):
        DEFAULT_COST_MODEL.validate()

    def test_ordering_invariants_enforced(self):
        bad = dataclasses.replace(DEFAULT_COST_MODEL,
                                  private_deque_op=1000.0,
                                  shared_deque_op=10.0)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_remote_access_must_exceed_l1_miss(self):
        bad = dataclasses.replace(DEFAULT_COST_MODEL,
                                  remote_access_penalty=1.0)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_local_steal_cheaper_than_network(self):
        bad = dataclasses.replace(DEFAULT_COST_MODEL,
                                  local_steal_success=1e9)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_positive_rates_required(self):
        bad = dataclasses.replace(DEFAULT_COST_MODEL, cycles_per_ms=0.0)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_positive_cache_capacity_required(self):
        bad = dataclasses.replace(DEFAULT_COST_MODEL, l1_capacity_lines=0)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COST_MODEL.net_latency = 1.0  # type: ignore[misc]
