"""Unit and property tests for the LRU L1 cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cache import LruCache
from repro.errors import ConfigError


class TestLruBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            LruCache(0)

    def test_first_access_misses_then_hits(self):
        c = LruCache(4)
        assert not c.access(1)
        assert c.access(1)
        assert c.stats.hits == 1
        assert c.stats.misses == 1
        assert c.stats.miss_rate == 0.5

    def test_eviction_is_lru(self):
        c = LruCache(2)
        c.access(1)
        c.access(2)
        c.access(1)      # 1 becomes most recent
        c.access(3)      # evicts 2
        assert 1 in c
        assert 3 in c
        assert 2 not in c

    def test_warm_does_not_count_access(self):
        c = LruCache(2)
        c.warm(5)
        assert c.stats.accesses == 0
        assert c.access(5)  # hit thanks to the warm-up

    def test_warm_refreshes_recency(self):
        c = LruCache(2)
        c.access(1)
        c.access(2)
        c.warm(1)
        c.access(3)  # evicts 2, not 1
        assert 1 in c
        assert 2 not in c

    def test_invalidate(self):
        c = LruCache(2)
        c.access(1)
        c.invalidate(1)
        assert 1 not in c
        c.invalidate(99)  # absent: no-op

    def test_clear_keeps_stats(self):
        c = LruCache(2)
        c.access(1)
        c.clear()
        assert len(c) == 0
        assert c.stats.misses == 1

    def test_miss_rate_zero_when_untouched(self):
        assert LruCache(2).stats.miss_rate == 0.0

    def test_resident_blocks_lru_order(self):
        c = LruCache(3)
        for b in (1, 2, 3):
            c.access(b)
        c.access(1)
        assert c.resident_blocks() == [2, 3, 1]


class TestLruProperties:
    @settings(max_examples=50, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=16),
           accesses=st.lists(st.integers(min_value=0, max_value=40),
                             max_size=200))
    def test_never_exceeds_capacity(self, capacity, accesses):
        c = LruCache(capacity)
        for a in accesses:
            c.access(a)
        assert len(c) <= capacity

    @settings(max_examples=50, deadline=None)
    @given(accesses=st.lists(st.integers(min_value=0, max_value=40),
                             min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, accesses):
        c = LruCache(8)
        for a in accesses:
            c.access(a)
        assert c.stats.accesses == len(accesses)

    @settings(max_examples=50, deadline=None)
    @given(accesses=st.lists(st.integers(min_value=0, max_value=5),
                             min_size=1, max_size=100))
    def test_working_set_within_capacity_never_misses_twice(self, accesses):
        # If the distinct-block count fits the capacity, each block misses
        # exactly once (cold) and never again.
        c = LruCache(6)
        for a in accesses:
            c.access(a)
        assert c.stats.misses == len(set(accesses))
