"""Unit tests for the message-counting interconnect."""

from __future__ import annotations

import pytest

from repro.cluster.network import (
    MSG_DATA_BLOCK,
    MSG_STEAL_REPLY,
    MSG_STEAL_REQUEST,
    MSG_TASK_SHIP,
    Network,
)
from repro.errors import ConfigError


class TestSend:
    def test_intra_place_is_free_and_uncounted(self, network):
        latency = network.send(1, 1, 4096)
        assert latency == 0.0
        assert network.stats.messages == 0

    def test_cross_place_counted(self, network):
        latency = network.send(0, 2, 1024, MSG_TASK_SHIP)
        assert latency > 0
        assert network.stats.messages == 1
        assert network.stats.bytes == 1024
        assert network.stats.by_kind[MSG_TASK_SHIP] == 1
        assert network.stats.by_pair[(0, 2)] == 1

    def test_latency_scales_with_bytes(self, network, costs):
        small = network.send(0, 1, 100)
        large = network.send(0, 1, 100_000)
        assert large > small
        assert small == pytest.approx(costs.transfer_cycles(100))

    def test_unknown_kind_rejected(self, network):
        with pytest.raises(ConfigError):
            network.send(0, 1, 10, "gossip")

    def test_negative_bytes_rejected(self, network):
        with pytest.raises(ConfigError):
            network.send(0, 1, -5)

    def test_ring_topology_multiplies_hops(self, costs):
        from repro.cluster.topology import ClusterSpec
        ring = Network(ClusterSpec(n_places=8, workers_per_place=1,
                                   max_threads=1, topology="ring"), costs)
        near = ring.send(0, 1, 100)
        far = ring.send(0, 4, 100)
        assert far == pytest.approx(4 * near)


class TestRoundTrip:
    def test_steal_round_trip_counts_two_messages(self, network):
        latency = network.round_trip(0, 3, 64, 64)
        assert latency > 0
        assert network.stats.messages == 2
        assert network.stats.by_kind[MSG_STEAL_REQUEST] == 1
        assert network.stats.by_kind[MSG_STEAL_REPLY] == 1

    def test_ref_round_trip_uses_remote_ref_kind(self, network):
        from repro.cluster.network import MSG_REMOTE_REF
        network.round_trip(0, 3, 64, 64, kind_prefix="ref")
        assert network.stats.by_kind[MSG_REMOTE_REF] == 2

    def test_reset_clears_counters(self, network):
        network.send(0, 1, 10, MSG_DATA_BLOCK)
        network.reset()
        assert network.stats.messages == 0
        assert network.stats.bytes == 0

    def test_snapshot_is_plain_data(self, network):
        network.send(0, 1, 10)
        snap = network.stats.snapshot()
        assert snap["messages"] == 1
        assert isinstance(snap["by_kind"], dict)

    def test_snapshot_by_pair_rows_sorted(self, network):
        network.send(2, 0, 10, MSG_DATA_BLOCK)
        network.send(0, 1, 10, MSG_DATA_BLOCK)
        network.send(0, 1, 10, MSG_DATA_BLOCK)
        snap = network.stats.snapshot()
        # [src, dst, packets] rows, sorted by (src, dst) so snapshots are
        # deterministic and JSON-serializable.
        assert snap["by_pair"] == [[0, 1, 2], [2, 0, 1]]
