"""Tests for the live threaded executor."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError, SchedulerError
from repro.live import LiveExecutor


class TestBasics:
    def test_submit_and_result(self):
        with LiveExecutor(n_places=2, workers_per_place=2) as ex:
            f = ex.submit(lambda a, b: a + b, 2, 3)
            assert f.result(timeout=5) == 5

    def test_map_local(self):
        with LiveExecutor(n_places=2, workers_per_place=2) as ex:
            out = ex.map_local(lambda x: x * x, range(20))
            assert out == [i * i for i in range(20)]

    def test_exceptions_propagate(self):
        with LiveExecutor() as ex:
            f = ex.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                f.result(timeout=5)

    def test_invalid_place_rejected(self):
        with LiveExecutor(n_places=2) as ex:
            with pytest.raises(ConfigError):
                ex.submit(lambda: None, place=7)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            LiveExecutor(n_places=0)

    def test_submit_after_shutdown_rejected(self):
        ex = LiveExecutor()
        ex.shutdown()
        with pytest.raises(SchedulerError):
            ex.submit(lambda: None)


class TestLocality:
    def test_sensitive_tasks_run_at_home_place(self):
        executed = {}
        lock = threading.Lock()

        def record(i):
            name = threading.current_thread().name  # live-p{p}w{w}
            with lock:
                executed[i] = int(name.split("p")[1].split("w")[0])

        with LiveExecutor(n_places=3, workers_per_place=2) as ex:
            futures = [ex.submit(record, i, place=i % 3, flexible=False)
                       for i in range(60)]
            for f in futures:
                f.result(timeout=10)
        for i, place in executed.items():
            assert place == i % 3

    def test_flexible_tasks_may_migrate(self):
        import time
        executed = set()
        lock = threading.Lock()

        def record(i):
            time.sleep(0.002)
            name = threading.current_thread().name
            with lock:
                executed.add(int(name.split("p")[1].split("w")[0]))

        with LiveExecutor(n_places=4, workers_per_place=1) as ex:
            futures = [ex.submit(record, i, place=0, flexible=True)
                       for i in range(64)]
            for f in futures:
                f.result(timeout=20)
        # Work born at place 0 got stolen by other places.
        assert len(executed) > 1
        assert ex.stats["remote_steals"] > 0

    def test_non_selective_raids_private_deques(self):
        import time

        with LiveExecutor(n_places=2, workers_per_place=1,
                          selective=False) as ex:
            futures = [ex.submit(time.sleep, 0.002, place=0,
                                 flexible=False)
                       for _ in range(40)]
            for f in futures:
                f.result(timeout=20)
        # The non-selective executor may steal sensitive tasks remotely.
        assert ex.stats["remote_steals"] >= 0  # counter exists; no leak


class TestCancellation:
    def test_cancelled_future_does_not_kill_worker(self):
        gate = threading.Event()
        with LiveExecutor(n_places=1, workers_per_place=1) as ex:
            blocker = ex.submit(gate.wait, 5)
            queued = ex.submit(lambda: "never")
            assert queued.cancel()
            gate.set()
            assert blocker.result(timeout=5) is True
            # The worker must have survived skipping the cancelled task.
            assert ex.submit(lambda: 42).result(timeout=5) == 42
            assert queued.cancelled()
        assert ex.stats["cancelled"] == 1

    def test_running_task_is_not_cancellable(self):
        started = threading.Event()
        gate = threading.Event()

        def block():
            started.set()
            gate.wait(5)
            return "done"

        with LiveExecutor(n_places=1, workers_per_place=1) as ex:
            f = ex.submit(block)
            assert started.wait(timeout=5)
            assert not f.cancel()
            gate.set()
            assert f.result(timeout=5) == "done"


class TestJoin:
    def test_join_timeout_raises(self):
        gate = threading.Event()
        ex = LiveExecutor(n_places=1, workers_per_place=1)
        try:
            ex.submit(gate.wait, 5)
            with pytest.raises(TimeoutError):
                ex.join(timeout=0.05)
        finally:
            gate.set()
            ex.shutdown()

    def test_join_wakes_when_last_task_completes(self):
        import time

        with LiveExecutor(n_places=2, workers_per_place=2) as ex:
            for i in range(32):
                ex.submit(time.sleep, 0.001, place=i % 2, flexible=True)
            t0 = time.perf_counter()
            ex.join(timeout=10)
            assert time.perf_counter() - t0 < 10
        # After join, nothing is pending and a fresh join returns at once.
        ex2 = LiveExecutor()
        ex2.join(timeout=0.01)
        ex2.shutdown()


class TestCounters:
    def test_stats_account_pops_and_steals(self):
        with LiveExecutor(n_places=2, workers_per_place=2) as ex:
            out = ex.map_local(lambda x: x + 1, range(50), flexible=True)
            assert len(out) == 50
        total = (ex.stats["own_pops"] + ex.stats["local_steals"]
                 + ex.stats["shared_takes"] + ex.stats["remote_steals"])
        assert total == 50
