"""Sweep report building blocks (`repro report`)."""

from __future__ import annotations

import json
import os

from repro.analysis.fleet_report import (
    perf_trajectory_rows,
    sweep_report_html,
    throughput_series,
    write_report,
)
from repro.cluster.topology import ClusterSpec
from repro.harness.db import ExperimentStore, TelemetryRow, drain
from repro.harness.parallel import RunSpec
from repro.obs.fleet import FleetTelemetry


def tel(key, owner, finished_at, wall=0.1, data=None):
    return TelemetryRow(key=key, owner=owner, attempt=1,
                        wall_seconds=wall, finished_at=finished_at,
                        trace_path=None, data=data or {})


class TestThroughputSeries:
    def test_empty(self):
        assert throughput_series([]) == ([], {})

    def test_cumulative_per_owner(self):
        rows = [tel("a", "w1", 0.0), tel("b", "w2", 10.0),
                tel("c", "w1", 20.0), tel("d", "w1", 30.0)]
        labels, series = throughput_series(rows, bins=3)
        assert len(labels) == 3
        assert series["w1"][-1] == 3.0 and series["w2"][-1] == 1.0
        # Cumulative: monotone non-decreasing.
        for vals in series.values():
            assert vals == sorted(vals)

    def test_single_row(self):
        labels, series = throughput_series([tel("a", "w1", 5.0)])
        assert len(labels) == 1 and series["w1"] == [1.0]


class FakeStoreRow:
    def __init__(self, key, payload):
        self.key = key
        self.payload = payload


class TestPerfTrajectory:
    def test_joins_bench_by_app_scheduler(self):
        store_rows = [FakeStoreRow("k1", {"app": "uts",
                                          "scheduler": "DistWS"})]
        tel_rows = [tel("k1", "w1", 0.0, wall=0.5)]
        bench = {"cells": [
            {"config": {"app": "uts", "scheduler": "DistWS"},
             "events_per_sec": 200000.0},
            {"config": {"app": "uts", "scheduler": "DistWS"},
             "events_per_sec": 500000.0},
        ]}
        rows = perf_trajectory_rows(tel_rows, store_rows, bench)
        assert len(rows) == 1
        label, cells, mean_wall, rate, bench_rate = rows[0]
        assert label == "uts × DistWS" and cells == 1
        assert mean_wall == 0.5 and rate == 2.0
        assert bench_rate == "500,000"  # fastest benched shape wins

    def test_missing_bench_shows_dash(self):
        store_rows = [FakeStoreRow("k1", {"app": "uts",
                                          "scheduler": "DistWS"})]
        rows = perf_trajectory_rows([tel("k1", "w1", 0.0)], store_rows,
                                    None)
        assert rows[0][-1] == "-"


def drained_store(tmp_path, **fleet_kw):
    spec_c = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
    specs = [RunSpec.build("uts", "DistWS", spec_c, sched_seed=s,
                           scale="test") for s in (1, 2)]
    store = ExperimentStore(str(tmp_path / "s.db"))
    store.add_specs(specs)
    drain(store, owner="h:1:a", heartbeat_seconds=0.5,
          fleet=FleetTelemetry(**fleet_kw))
    return store


class TestSweepReport:
    def test_html_sections_present(self, tmp_path):
        store = drained_store(tmp_path)
        html = sweep_report_html(store, title="t")
        for section in ("Throughput timeline", "Metric rollups",
                        "Workers", "Perf trajectory"):
            assert section in html
        assert "<svg" in html
        assert "steal_latency_cycles" in html
        store.close()

    def test_empty_store_renders_placeholders(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "empty.db"))
        html = sweep_report_html(store)
        assert "No telemetry shipped yet" in html
        assert "No workers have touched this store" in html
        store.close()

    def test_write_report_with_traces_and_bench(self, tmp_path):
        store = drained_store(tmp_path,
                              trace_dir=str(tmp_path / "traces"))
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(json.dumps({
            "calibration_ops_per_sec": 1e6,
            "cells": [{"config": {"app": "uts", "scheduler": "DistWS"},
                       "events_per_sec": 123456.0}]}))
        out = str(tmp_path / "out")
        written = write_report(store, out, bench_path=str(bench_path))
        assert sorted(os.path.basename(p) for p in written) \
            == ["merged.trace.json", "report.html"]
        html = open(os.path.join(out, "report.html")).read()
        assert "123,456" in html  # bench column joined in
        doc = json.load(open(os.path.join(out, "merged.trace.json")))
        assert {e["pid"] for e in doc["traceEvents"]} == {0}
        store.close()

    def test_write_report_missing_bench_is_fine(self, tmp_path):
        store = drained_store(tmp_path)
        out = str(tmp_path / "out")
        written = write_report(store, out,
                               bench_path=str(tmp_path / "nope.json"))
        assert [os.path.basename(p) for p in written] == ["report.html"]
        store.close()
