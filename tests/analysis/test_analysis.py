"""Tests for trace recording, critical-path analysis, and exports."""

from __future__ import annotations

import json

import pytest

from repro import ClusterSpec, DistWS, SimRuntime
from repro.analysis import (
    TraceRecorder,
    critical_path,
    experiment_to_csv,
    experiment_to_json,
    place_timeline,
    stats_to_dict,
    stats_to_json,
    steal_flow,
    trace_to_json,
    worker_occupancy,
)
from repro.apgas import Apgas
from repro.errors import ConfigError


def traced_run(n_leaves=12, work=1_000_000, flexible=True):
    spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, DistWS(), seed=1)
    rec = TraceRecorder(rt)

    def program(rt):
        ap = Apgas(rt)

        def driver(ctx):
            for i in range(n_leaves):
                ctx.spawn(None, place=0, work=work,
                          flexible=flexible, label="leaf")

        ap.async_at(0, driver, work=10_000, label="driver")

    stats = rt.run(program)
    return rec.finalize(), stats


class TestTraceRecorder:
    def test_records_every_task(self):
        trace, stats = traced_run()
        assert len(trace.tasks) == stats.tasks_executed == 13
        assert trace.makespan == stats.makespan_cycles

    def test_attach_after_run_rejected(self):
        spec = ClusterSpec(n_places=1, workers_per_place=1, max_threads=2)
        rt = SimRuntime(spec, DistWS(), seed=1)

        def program(rt):
            Apgas(rt).async_at(0, None, work=100, label="t")

        rt.run(program)
        with pytest.raises(ConfigError):
            TraceRecorder(rt)

    def test_parent_edges(self):
        trace, _ = traced_run()
        by_label = {}
        for t in trace.tasks:
            by_label.setdefault(t.label, []).append(t)
        driver = by_label["driver"][0]
        assert driver.parent_id is None
        for leaf in by_label["leaf"]:
            assert leaf.parent_id == driver.task_id
            assert leaf.spawn_time >= driver.start_time
            assert leaf.queue_delay >= 0

    def test_busy_profile_bounds(self):
        trace, _ = traced_run()
        profile = trace.place_busy_profile(buckets=10)
        assert len(profile) == 2
        for row in profile:
            assert len(row) == 10
            assert all(0.0 <= v <= 1.0 for v in row)


class TestCriticalPath:
    def test_work_and_span(self):
        trace, stats = traced_run()
        cp = critical_path(trace)
        assert cp.total_work == pytest.approx(
            sum(t.duration for t in trace.tasks))
        assert cp.span <= cp.total_work
        # Makespan can never beat the span.
        assert trace.makespan >= cp.span * 0.999
        assert cp.parallelism >= 1.0
        assert 0 < cp.schedule_efficiency <= 1.0

    def test_chain_is_connected(self):
        trace, _ = traced_run()
        cp = critical_path(trace)
        for parent, child in zip(cp.chain, cp.chain[1:]):
            assert child.parent_id == parent.task_id

    def test_describe_renders(self):
        trace, _ = traced_run()
        text = critical_path(trace).describe()
        assert "parallelism" in text
        assert "critical chain" in text


class TestRenderers:
    def test_place_timeline(self):
        trace, _ = traced_run()
        art = place_timeline(trace, width=30, title="t")
        assert art.count("|") == 4  # two places, two bars each
        with pytest.raises(ConfigError):
            place_timeline(trace, width=2)

    def test_steal_flow_counts_remote(self):
        trace, stats = traced_run(n_leaves=24, work=2_000_000)
        art = steal_flow(trace)
        assert str(stats.tasks_executed_remote) in art

    def test_worker_occupancy(self):
        trace, _ = traced_run()
        art = worker_occupancy(trace, place=0, width=20)
        assert art.count("|") == 4
        with pytest.raises(ConfigError):
            worker_occupancy(trace, place=9)


class TestEmptyTraceHardening:
    """Empty traces and zero-makespan runs degrade cleanly (no ZeroDivision)."""

    @staticmethod
    def empty_trace(n_places=2, workers=2):
        from repro.analysis import Trace
        return Trace(n_places=n_places, workers_per_place=workers)

    def test_place_timeline_empty_stub(self):
        assert place_timeline(self.empty_trace()) == "(empty trace)"
        from repro.analysis import Trace
        assert place_timeline(Trace()) == "(empty trace)"

    def test_place_timeline_bad_clock_rejected(self):
        trace, _ = traced_run()
        trace.cycles_per_ms = 0.0
        with pytest.raises(ConfigError):
            place_timeline(trace)

    def test_steal_flow_empty_stub(self):
        from repro.analysis import Trace
        assert steal_flow(Trace()) == "(empty trace)"
        # Zero makespan but places known: still renders an all-zero matrix.
        assert "total tasks" in steal_flow(self.empty_trace())

    def test_worker_occupancy_empty_stub(self):
        assert worker_occupancy(self.empty_trace(), place=0) \
            == "(empty trace)"
        with pytest.raises(ConfigError):
            worker_occupancy(self.empty_trace(), place=0, width=2)

    def test_critical_path_empty_rejected(self):
        with pytest.raises(ConfigError):
            critical_path(self.empty_trace())

    def test_busy_profile_degenerate_workers(self):
        trace = self.empty_trace(workers=0)
        trace.makespan = 100.0
        profile = trace.place_busy_profile(buckets=5)
        assert profile == [[0.0] * 5, [0.0] * 5]


class TestTraceClock:
    def test_trace_carries_cost_model_clock(self):
        trace, _ = traced_run()
        assert trace.cycles_per_ms == 2_000_000.0

    def test_timeline_axis_uses_trace_clock(self):
        trace, _ = traced_run()
        trace.cycles_per_ms = trace.makespan  # 1 "ms" == the whole run
        art = place_timeline(trace, width=30)
        assert "1.00 ms" in art

    def test_trace_json_includes_clock(self):
        trace, _ = traced_run()
        data = json.loads(trace_to_json(trace))
        assert data["cycles_per_ms"] == 2_000_000.0


class TestExports:
    def test_stats_json_round_trip(self):
        _, stats = traced_run()
        data = json.loads(stats_to_json(stats))
        assert data["tasks"]["executed"] == 13
        assert data == stats_to_dict(stats)

    def test_trace_json(self):
        trace, _ = traced_run()
        data = json.loads(trace_to_json(trace))
        assert len(data["tasks"]) == 13
        assert data["n_places"] == 2

    def test_experiment_exports(self):
        from repro.harness.paper import ExperimentOutput
        out = ExperimentOutput("x", ["a", "b"], [[1, 2], [3, 4]], "r")
        csv_text = experiment_to_csv(out)
        assert csv_text.splitlines()[0] == "a,b"
        assert json.loads(experiment_to_json(out))["rows"] == [[1, 2],
                                                               [3, 4]]
