"""Tests for the latency-theory validation pass (analysis/theory.py).

Two layers:

- deterministic unit tests of :func:`fit_latency_model` on synthetic
  data (exact model recovery, noise tolerance, degenerate inputs);
- the statistical acceptance test the papers motivate: a quick-scale
  λ-sweep over >= 5 scheduler seeds must fit RandomWS — the protocol
  Gast/Khatiri/Trystram actually analyse — with R² >= 0.9, and no
  measurement may beat the structural W/p floor.
"""

from __future__ import annotations

import json
import math
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.theory import (
    LAMBDA_GRID_QUICK,
    TheoryReport,
    fit_latency_model,
    run_theory_sweep,
)
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError


class TestFitSynthetic:
    def test_recovers_exact_model(self):
        """Data generated from y = W/p + 3·λ·log₂W fits back exactly."""
        work, workers = float(2 ** 22), 8
        lams = [1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0]
        ys = [work / workers + 3.0 * lam * math.log2(work)
              for lam in lams]
        fit = fit_latency_model(lams, ys, work, workers,
                                scheduler="S", app="A")
        assert fit.c == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(work / workers)
        assert fit.r_squared == pytest.approx(1.0)
        assert all(abs(r) < 1e-6 for r in fit.residuals)
        assert fit.lower_bound_holds
        # The certificate constant dominates every measurement.
        for lam, y in zip(lams, ys):
            assert fit.bound(lam) >= y - 1e-6
        assert fit.bound_c == pytest.approx(3.0)

    def test_noise_degrades_r_squared_but_not_slope(self):
        """Mild multiplicative noise keeps the slope near truth."""
        work, workers = float(2 ** 20), 4
        lams = [1_000.0, 3_000.0, 9_000.0, 27_000.0]
        noise = [1.02, 0.97, 1.01, 0.99]
        ys = [(work / workers + 2.0 * lam * math.log2(work)) * eps
              for lam, eps in zip(lams, noise)]
        fit = fit_latency_model(lams, ys, work, workers)
        assert fit.c == pytest.approx(2.0, rel=0.15)
        assert 0.9 < fit.r_squared <= 1.0

    def test_flat_measurements_fit_zero_slope(self):
        work, workers = float(2 ** 20), 4
        lams = [1_000.0, 2_000.0, 4_000.0]
        ys = [work / workers + 5_000.0] * 3
        fit = fit_latency_model(lams, ys, work, workers)
        assert fit.c == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ConfigError):
            fit_latency_model([1_000.0], [5.0], 2 ** 20, 4)
        with pytest.raises(ConfigError):
            fit_latency_model([1_000.0, 1_000.0], [5.0, 6.0], 2 ** 20, 4)
        with pytest.raises(ConfigError):
            fit_latency_model([1_000.0, 2_000.0], [5.0], 2 ** 20, 4)
        with pytest.raises(ConfigError):
            fit_latency_model([1_000.0, 2_000.0], [5.0, 6.0], 0.0, 4)

    def test_lower_bound_violation_detected(self):
        """A makespan below W/p flips the structural-floor flag."""
        work, workers = float(2 ** 20), 4
        lams = [1_000.0, 2_000.0]
        ys = [work / workers - 1.0, work / workers + 50_000.0]
        fit = fit_latency_model(lams, ys, work, workers)
        assert not fit.lower_bound_holds


class TestSweepQuickScale:
    #: One shared sweep for the statistical assertions (class-scoped to
    #: keep the suite's wall clock down).
    @pytest.fixture(scope="class")
    def report(self) -> TheoryReport:
        spec = ClusterSpec(n_places=4, workers_per_place=2,
                           max_threads=4)
        return run_theory_sweep(
            apps=("uts",), schedulers=("RandomWS",), spec=spec,
            lambdas=LAMBDA_GRID_QUICK, sched_seeds=(1, 2, 3, 4, 5),
            scale="test")

    def test_randomws_fits_with_high_r_squared(self, report):
        """The analysed protocol obeys W/p + c·λ·log₂W with R² >= 0.9."""
        fit = report.fit_for("RandomWS", "uts")
        assert len(report.sched_seeds) >= 5
        assert fit.r_squared >= 0.9
        assert fit.c > 0, "makespan must grow with steal latency"

    def test_no_measurement_beats_the_floor(self, report):
        for fit in report.fits:
            assert fit.lower_bound_holds
            assert min(fit.measured) >= fit.makespan_floor

    def test_verdict_json_is_machine_readable(self, report):
        verdict = json.loads(report.to_json())
        assert verdict["lower_bound_holds"] is True
        assert verdict["lower_bound_violations"] == []
        fits = {f["scheduler"]: f for f in verdict["fits"]}
        assert fits["RandomWS"]["r_squared"] >= 0.9
        assert list(fits["RandomWS"]["lambdas"]) == list(LAMBDA_GRID_QUICK)
        assert len(fits["RandomWS"]["residuals"]) == len(LAMBDA_GRID_QUICK)

    def test_figure_is_valid_nonempty_svg(self, report):
        svg = report.figure("uts")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert len(svg) > 500
        text = "".join(root.itertext())
        assert "RandomWS measured" in text
        assert "W/p floor" in text

    def test_unknown_fit_lookup_is_config_error(self, report):
        with pytest.raises(ConfigError):
            report.fit_for("NoSuch", "uts")
        with pytest.raises(ConfigError):
            report.figure("nosuchapp")


class TestSweepValidation:
    def test_single_lambda_rejected(self):
        with pytest.raises(ConfigError):
            run_theory_sweep(lambdas=(5_000.0,))
