"""Tests for the dependency-free SVG chart renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import _nice_max, grouped_bar_chart, line_chart
from repro.errors import ConfigError


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestNiceMax:
    @pytest.mark.parametrize("value,expected", [
        (0.5, 1.0), (1.0, 1.0), (1.5, 2.0), (4.0, 5.0), (7.0, 10.0),
        (42.0, 50.0), (128.0, 200.0), (0.0, 1.0),
    ])
    def test_rounds_up_tidily(self, value, expected):
        assert _nice_max(value) == expected
        assert _nice_max(value) >= value


class TestLineChart:
    def test_valid_svg_document(self):
        svg = line_chart([1, 2, 4], {"X10WS": [1, 2, 3],
                                     "DistWS": [1, 2.5, 4]},
                         title="Fig. 5", x_label="workers",
                         y_label="speedup")
        root = parse(svg)
        assert root.tag.endswith("svg")
        text = svg
        assert "Fig. 5" in text
        assert text.count("<polyline") == 2
        assert "X10WS" in text and "DistWS" in text

    def test_points_per_series(self):
        svg = line_chart([1, 2, 3, 4], {"a": [1, 2, 3, 4]})
        assert svg.count("<circle") == 4

    def test_escaping(self):
        svg = line_chart([1], {"a<b": [1]}, title="x & y")
        assert "a&lt;b" in svg
        assert "x &amp; y" in svg
        parse(svg)  # still valid XML

    def test_rejects_empty_or_mismatched(self):
        with pytest.raises(ConfigError):
            line_chart([1, 2], {})
        with pytest.raises(ConfigError):
            line_chart([1, 2], {"a": [1]})
        with pytest.raises(ConfigError):
            line_chart([], {"a": []})


class TestGroupedBars:
    def test_valid_svg_document(self):
        svg = grouped_bar_chart(
            ["qsort", "turing"],
            {"X10WS": [30, 34], "DistWS": [40, 38]},
            title="Fig. 6", y_label="speedup")
        parse(svg)
        # 2 groups x 2 series bars + 2 legend swatches + background + frame
        assert svg.count("<rect") == 4 + 2 + 2

    def test_bar_heights_scale(self):
        svg = grouped_bar_chart(["g"], {"a": [10], "b": [5]})
        root = parse(svg)
        ns = root.tag.split("}")[0] + "}"
        rects = [r for r in root.iter(f"{ns}rect")
                 if r.get("fill", "").startswith("#")]
        bar_heights = sorted(float(r.get("height")) for r in rects
                             if float(r.get("height")) > 20)
        assert bar_heights[1] == pytest.approx(2 * bar_heights[0], rel=0.01)

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            grouped_bar_chart([], {"a": []})
        with pytest.raises(ConfigError):
            grouped_bar_chart(["g"], {"a": [1, 2]})


class TestIntegrationWithHarness:
    def test_fig5_series_renders(self):
        """The extra['series'] of a fig5-style output feeds line_chart."""
        series = {"X10WS": [1.0, 3.9, 7.9], "DistWS": [1.0, 3.9, 8.1]}
        svg = line_chart([1, 4, 8], series, title="app: speedup")
        parse(svg)
        assert "speedup" in svg
