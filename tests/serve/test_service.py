"""End-to-end tests for the multi-process serving tier.

These spawn real place processes (spawn context) and drive them over
loopback sockets, so they are kept small: short traces, few places.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, SensitivePolicy
from repro.serve import (
    ServeService,
    TrafficSpec,
    crash_schedule,
    drive_embedded,
    make_trace,
)
from repro.serve.protocol import ServeError

pytestmark = pytest.mark.slow


def run(coro):
    return asyncio.run(coro)


def drive(trace, kills=(), **service_kwargs):
    async def scenario():
        service = ServeService(**service_kwargs)
        async with service:
            records = await drive_embedded(service, trace, kills)
        return service, records

    return run(scenario())


def small_trace(**overrides) -> list:
    spec = TrafficSpec(**{"rate": 150.0, "duration_s": 1.0,
                          "n_places": 2, "seed": 4, "service_ms": 4.0,
                          **overrides})
    return make_trace(spec)


class TestRoundtrip:
    def test_all_requests_complete_ok(self):
        trace = small_trace()
        service, records = drive(trace, n_places=2, workers_per_place=2)
        assert len(records) == len(trace)
        assert all(r.outcome == "ok" for r in records)
        assert service.counters["done_ok"] == len(trace)
        # Router accounting is conserved.
        assert service.counters["offered"] == len(trace)

    def test_sticky_requests_execute_at_home_warm(self):
        trace = small_trace(sticky_fraction=1.0)
        service, records = drive(trace, n_places=2, workers_per_place=2)
        for rec in records:
            assert rec.outcome == "ok"
            assert rec.place == rec.task["home"]
            assert rec.warm is True
        assert service.counters["misplaced"] == 0
        for counters in service.place_counters.values():
            assert counters.get("misrouted", 0) == 0
            assert counters.get("misplaced", 0) == 0
            assert counters.get("executed_cold", 0) == 0

    def test_duplicate_request_id_rejected(self):
        async def scenario():
            service = ServeService(n_places=1, workers_per_place=1)
            async with service:
                task = {"id": 1, "cls": "flex", "home": 0,
                        "flexible": True, "service_ms": 1.0}
                rec = await service.submit(task)
                with pytest.raises(ServeError, match="duplicate"):
                    await service.submit(task)
                await rec.future

        run(scenario())

    def test_submit_before_start_rejected(self):
        async def scenario():
            service = ServeService(n_places=1)
            with pytest.raises(ServeError, match="not started"):
                await service.submit({"id": 0, "cls": "flex", "home": 0,
                                      "flexible": True,
                                      "service_ms": 1.0})

        run(scenario())


class TestStealing:
    def test_selective_migrates_flexible_spillover(self):
        # Everything is flexible and homed at place 0: its two workers
        # saturate and the other place must steal the overflow.
        trace = small_trace(rate=250.0, sticky_fraction=0.0, skew=50.0,
                            hot_place=0, service_ms=8.0)
        assert all(a.home == 0 for a in trace)
        service, records = drive(trace, n_places=2, workers_per_place=2,
                                 balancer="selective")
        assert all(r.outcome == "ok" for r in records)
        migrated = [r for r in records if r.place != 0]
        assert migrated, "no request was stolen to the idle place"
        assert service.counters["migrations"] >= len(migrated)
        # Migration is observable end to end: stolen work ran cold.
        assert all(r.warm is False for r in migrated)

    def test_round_robin_never_steals(self):
        trace = small_trace(rate=250.0, sticky_fraction=0.0, skew=50.0,
                            hot_place=0, service_ms=8.0)
        service, records = drive(trace, n_places=2, workers_per_place=2,
                                 balancer="round-robin")
        assert all(r.outcome == "ok" for r in records)
        assert service.counters["migrations"] == 0
        for counters in service.place_counters.values():
            assert counters.get("steals_out", 0) == 0
            assert counters.get("steal_probes", 0) == 0


class TestOverload:
    def test_bounded_queues_shed_instead_of_queueing(self):
        # 2x the service capacity of one place, tiny queue bounds.
        trace = small_trace(rate=400.0, duration_s=1.5, n_places=1,
                            sticky_fraction=0.0, service_ms=10.0)
        service, records = drive(trace, n_places=1, workers_per_place=2,
                                 shared_cap=8, private_cap=4)
        outcomes = {r.outcome for r in records}
        assert outcomes == {"ok", "shed"}
        ok = [r for r in records if r.outcome == "ok"]
        shed = [r for r in records if r.outcome == "shed"]
        assert shed, "overload never shed despite bounded queues"
        assert service.counters["shed"] == len(shed)
        # Accepted requests keep bounded latency: at most roughly the
        # queue bound times the service time (plus slack), never the
        # unbounded backlog of the whole 2x-overloaded trace.
        worst = max(r.latency_s for r in ok)
        assert worst < 0.5, f"accepted p100 {worst:.3f}s not bounded"
        # Conservation: every offered request has exactly one outcome.
        assert len(ok) + len(shed) == len(trace)


class TestCrashFailover:
    def kill_mid_trace(self, policy):
        trace = small_trace(rate=200.0, duration_s=1.6, n_places=2,
                            sticky_fraction=0.5, service_ms=5.0)
        plan = FaultPlan.parse("crash:p1@0.5,policy:" + policy.value)
        kills = crash_schedule(plan, 1.6)
        assert kills == [(0.8, 1)]
        return drive(trace, kills, n_places=2, workers_per_place=2,
                     policy=policy), trace

    def test_kill_with_relax_loses_nothing(self):
        (service, records), trace = self.kill_mid_trace(
            SensitivePolicy.RELAX)
        assert service.counters["place_deaths"] == 1
        # Exactly-once completion for every request: all terminal,
        # nothing lost, nothing double-completed.
        assert all(r.terminal for r in records)
        assert len(records) == len(trace)
        by_outcome = {}
        for r in records:
            by_outcome.setdefault(r.outcome, []).append(r)
        assert set(by_outcome) <= {"ok", "shed"}
        # Orphans were re-dispatched, and relaxed sticky requests
        # finished on the survivor.
        relaxed = [r for r in records if r.relaxed]
        if service.counters["redispatched"]:
            assert all(r.outcome == "ok" for r in relaxed)
            assert all(r.place == 0 for r in relaxed)
        # An accepted request is never shed after the fact.
        assert not any(r.accepted and r.outcome == "shed"
                       for r in records)

    def test_kill_with_fail_fast_fails_only_sticky(self):
        (service, records), trace = self.kill_mid_trace(
            SensitivePolicy.FAIL_FAST)
        assert all(r.terminal for r in records)
        failed = [r for r in records if r.outcome == "failed"]
        # Sticky requests bound to the dead place fail fast...
        assert failed, "no sticky request was orphaned by the crash"
        assert all(not r.task["flexible"] for r in failed)
        assert all(r.task["home"] == 1 for r in failed)
        # ...while flexible orphans are re-dispatched and complete.
        flex = [r for r in records if r.task["flexible"]]
        assert all(r.outcome in ("ok", "shed") for r in flex)
        assert service.counters["failed_sensitive"] == len(failed)

    def test_sticky_dispatch_to_dead_place_applies_policy(self):
        async def scenario():
            service = ServeService(n_places=2, workers_per_place=1,
                                   policy=SensitivePolicy.FAIL_FAST)
            async with service:
                service.kill_place(1)
                await asyncio.sleep(0.3)  # reader notices the EOF
                rec = await service.submit(
                    {"id": 0, "cls": "sticky", "home": 1,
                     "flexible": False, "service_ms": 1.0})
                await asyncio.wait_for(rec.future, 5.0)
                return rec

        rec = run(scenario())
        assert rec.outcome == "failed"

    def test_crash_schedule_rejects_simulator_only_tokens(self):
        with pytest.raises(ConfigError, match="simulator-only"):
            crash_schedule(FaultPlan.parse("loss:steal=0.1"), 1.0)

    def test_crash_schedule_resolves_fractions(self):
        plan = FaultPlan.parse("crash:p0@0.25,crash:p1@3")
        assert crash_schedule(plan, 8.0) == [(2.0, 0), (3.0, 1)]


class TestConfig:
    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError):
            ServeService(n_places=0)
        with pytest.raises(ConfigError):
            ServeService(workers_per_place=0)

    def test_unknown_balancer_rejected(self):
        with pytest.raises(ConfigError):
            ServeService(balancer="least-loaded")

    def test_kill_place_validates_index(self):
        service = ServeService(n_places=2)
        with pytest.raises(ConfigError):
            service.kill_place(7)


class TestRemoteFrontend:
    def test_hello_rescales_homes_to_server_places(self):
        """A loadgen spec with more places than the server must not
        fail sticky requests: the hello handshake reports the real
        place count and the trace is drawn against it."""
        from repro.serve import drive_remote, run_frontend

        traffic = TrafficSpec(rate=60.0, duration_s=1.0, n_places=4,
                              seed=9, service_ms=4.0,
                              sticky_fraction=1.0, hot_place=3)

        async def scenario():
            service = ServeService(n_places=2, workers_per_place=2)
            async with service:
                server = await run_frontend(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    result = await drive_remote("127.0.0.1", port,
                                                traffic)
                finally:
                    server.close()
                    await server.wait_closed()
            return result

        recorder, snapshot, replayed = run(scenario())
        assert replayed.n_places == 2 and replayed.hot_place <= 1
        req = recorder.requests_block()
        assert req["failed"] == 0 and req["ok"] == req["offered"] > 0
        assert snapshot["router"]["done_ok"] == req["ok"]

    def test_non_frontend_peer_fails_handshake(self):
        from repro.serve import drive_remote
        from repro.serve.protocol import ProtocolError

        traffic = TrafficSpec(rate=10.0, duration_s=0.2, n_places=2)

        async def scenario():
            async def mute(reader, writer):
                writer.close()

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(ProtocolError, match="hello"):
                    await drive_remote("127.0.0.1", port, traffic)
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())
