"""Tests for the ``repro serve`` / ``repro loadgen`` CLI surface."""

from __future__ import annotations

import json
import xml.dom.minidom

import pytest

from repro.__main__ import main

pytestmark = pytest.mark.slow


class TestLoadgenCli:
    def test_embedded_benchmark_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        svg = tmp_path / "serve.svg"
        code = main(["loadgen", "--rate", "60", "--duration", "1",
                     "--places", "2", "--service-ms", "4",
                     "--seed", "5", "--balancer", "selective",
                     "--out", str(out), "--svg", str(svg)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "serve benchmark" in printed
        assert "selective" in printed
        report = json.loads(out.read_text())
        assert report["benchmark"] == "serve"
        cell = report["cells"][0]
        assert cell["requests"]["ok"] > 0
        assert cell["requests"]["ok"] + cell["requests"]["shed"] \
            + cell["requests"]["failed"] == cell["requests"]["offered"]
        assert cell["latency_ms"]["all"]["p99"] > 0
        dom = xml.dom.minidom.parse(str(svg))
        assert dom.documentElement.tagName == "svg"

    def test_faults_flag_drives_kill_schedule(self, capsys, tmp_path):
        out = tmp_path / "faulty.json"
        code = main(["loadgen", "--rate", "80", "--duration", "1.2",
                     "--places", "2", "--service-ms", "4", "--seed", "6",
                     "--balancer", "selective",
                     "--faults", "crash:p1@0.5,policy:relax",
                     "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        cell = report["cells"][0]
        assert cell["config"]["faults"] is True
        assert cell["config"]["policy"] == "relax"
        assert cell["counters"]["router"]["place_deaths"] == 1
        req = cell["requests"]
        assert req["ok"] + req["shed"] + req["failed"] == req["offered"]
        # lost is not a key: every request reached a terminal outcome.
        assert "lost" not in {k.split("_")[-1] for k in
                              cell["counters"]["router"]}

    def test_bad_balancer_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "--balancer", "least-loaded"])

    def test_bad_faults_spec_is_config_error(self):
        assert main(["loadgen", "--rate", "10", "--duration", "0.2",
                     "--faults", "explode:p1@0.5"]) == 2

    def test_bad_connect_string_is_config_error(self):
        assert main(["loadgen", "--connect", "nonsense"]) == 2


class TestServeCli:
    def test_serve_rejects_fractional_crash_times(self):
        assert main(["serve", "--faults", "crash:p0@0.5"]) == 2
