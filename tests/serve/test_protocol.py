"""Tests for the serve wire protocol (framing layer)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    Framer,
    ProtocolError,
    encode,
    open_framer,
    read_msg,
)


def run(coro):
    return asyncio.run(coro)


def read_fed(data: bytes):
    """Run read_msg over a pre-fed, EOF-terminated stream."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_msg(reader)

    return run(scenario())


class TestEncode:
    def test_roundtrip(self):
        msg = {"kind": "enqueue", "task": {"id": 7, "home": 2}}
        data = encode(msg)
        (size,) = HEADER.unpack(data[:HEADER.size])
        assert size == len(data) - HEADER.size
        assert json.loads(data[HEADER.size:]) == msg

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError):
            encode({"kind": "x", "blob": "y" * (MAX_FRAME_BYTES + 1)})


class TestReadMsg:
    def test_reads_frames_then_clean_eof(self):
        a = {"kind": "hello", "role": "router"}
        b = {"kind": "stop"}

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode(a) + encode(b))
            reader.feed_eof()
            assert await read_msg(reader) == a
            assert await read_msg(reader) == b
            assert await read_msg(reader) is None

        run(scenario())

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            read_fed(b"\x00\x00")

    def test_eof_mid_frame_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_fed(encode({"kind": "stop"})[:-1])

    def test_corrupt_length_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            read_fed(HEADER.pack(MAX_FRAME_BYTES + 1))

    def test_non_json_payload_rejected(self):
        body = b"\xff\xfenot json"
        with pytest.raises(ProtocolError, match="bad frame payload"):
            read_fed(HEADER.pack(len(body)) + body)

    def test_json_without_kind_rejected(self):
        body = json.dumps({"no": "kind"}).encode()
        with pytest.raises(ProtocolError, match="not a message"):
            read_fed(HEADER.pack(len(body)) + body)


class TestFramer:
    def test_socket_roundtrip(self):
        """Full-duplex echo over a real loopback socket."""

        async def scenario():
            async def echo(reader, writer):
                framer = Framer(reader, writer)
                while True:
                    msg = await framer.recv()
                    if msg is None:
                        break
                    await framer.send({"kind": "echo", "of": msg})
                await framer.close()

            server = await asyncio.start_server(echo, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await open_framer("127.0.0.1", port)
            await client.send({"kind": "ping", "n": 1})
            reply = await client.recv()
            await client.close()
            server.close()
            await server.wait_closed()
            return reply

        reply = run(scenario())
        assert reply == {"kind": "echo", "of": {"kind": "ping", "n": 1}}
