"""Tests for the latency recorder and serve report format."""

from __future__ import annotations

import json
import xml.dom.minidom

import pytest

from repro.serve.recorder import (
    LatencyRecorder,
    build_report,
    compare,
    exact_percentile,
    render,
    report_svg,
    to_json,
)


def loaded_recorder() -> LatencyRecorder:
    rec = LatencyRecorder()
    for i in range(100):
        rec.record("sticky", "ok", latency_s=(i + 1) / 1000.0, warm=True)
    for i in range(50):
        rec.record("flex", "ok", latency_s=(i + 1) / 500.0, warm=False)
    for _ in range(10):
        rec.record("flex", "shed")
    rec.record("sticky", "failed")
    return rec


def make_cell(name: str = "poisson|selective|4x2") -> dict:
    return loaded_recorder().cell(name, {"balancer": "selective"},
                                  duration_s=10.0, wall_seconds=11.5)


class TestPercentiles:
    def test_exact_nearest_rank(self):
        xs = sorted(float(i) for i in range(1, 101))
        assert exact_percentile(xs, 0.50) == 50.0
        assert exact_percentile(xs, 0.90) == 90.0
        assert exact_percentile(xs, 0.99) == 99.0
        assert exact_percentile(xs, 1.00) == 100.0

    def test_empty_and_single(self):
        assert exact_percentile([], 0.99) == 0.0
        assert exact_percentile([7.0], 0.5) == 7.0
        assert exact_percentile([7.0], 0.99) == 7.0

    def test_small_sample_takes_ceiling_rank(self):
        assert exact_percentile([1.0, 2.0], 0.99) == 2.0
        assert exact_percentile([1.0, 2.0, 3.0], 0.5) == 2.0


class TestRecorder:
    def test_latency_blocks_split_by_class(self):
        rec = loaded_recorder()
        sticky = rec.latency_block("sticky")
        flexb = rec.latency_block("flex")
        allb = rec.latency_block("all")
        assert sticky["count"] == 100 and flexb["count"] == 50
        assert allb["count"] == 150
        assert sticky["p50"] == pytest.approx(50.0)
        assert sticky["p99"] == pytest.approx(99.0)
        assert flexb["p50"] == pytest.approx(50.0)
        assert flexb["max"] == pytest.approx(100.0)
        assert allb["max"] == pytest.approx(100.0)

    def test_counters_and_goodput(self):
        rec = loaded_recorder()
        req = rec.requests_block()
        assert req["offered"] == 161
        assert req["ok"] == 150 and req["shed"] == 10
        assert req["failed"] == 1
        assert req["warm"] == 100 and req["cold"] == 50
        assert rec.goodput_rps(10.0) == pytest.approx(15.0)

    def test_histograms_mirror_samples(self):
        rec = loaded_recorder()
        assert rec.histograms["all"].count == 150
        assert rec.histograms["sticky"].count == 100
        # Octave buckets and exact samples agree on the mean.
        assert rec.histograms["sticky"].mean == pytest.approx(
            rec.latency_block("sticky")["mean"], rel=0.5)

    def test_shed_has_no_latency_sample(self):
        rec = LatencyRecorder()
        rec.record("flex", "shed")
        assert rec.latency_block("all")["count"] == 0


class TestReport:
    def test_bench_shape(self):
        report = build_report([make_cell()])
        assert report["schema"] == 1
        assert report["benchmark"] == "serve"
        assert report["calibration_ops_per_sec"] > 0
        assert report["total_wall_seconds"] == pytest.approx(11.5)
        cell = report["cells"][0]
        assert set(cell) == {"cell", "config", "requests", "latency_ms",
                             "goodput_rps", "histograms", "counters",
                             "wall_seconds"}

    def test_json_roundtrip(self):
        report = build_report([make_cell()])
        assert json.loads(to_json(report)) == report

    def test_render_mentions_cells(self):
        out = render(build_report([make_cell("a"), make_cell("b")]))
        assert "a" in out and "b" in out and "p99" in out

    def test_svg_well_formed(self):
        svg = report_svg(build_report([make_cell("selective"),
                                       make_cell("round-robin")]))
        dom = xml.dom.minidom.parseString(svg)
        assert dom.documentElement.tagName == "svg"
        assert "selective" in svg and "round-robin" in svg


class TestCompare:
    def test_identical_reports_pass(self):
        report = build_report([make_cell()])
        ok, lines = compare(report, report)
        assert ok and any("p99" in ln for ln in lines)

    def test_conservation_violation_fails(self):
        base = build_report([make_cell()])
        cand = json.loads(to_json(base))
        cand["cells"][0]["requests"]["ok"] -= 1  # one request vanished
        ok, lines = compare(base, cand)
        assert not ok
        assert any("accounted" in ln for ln in lines)

    def test_large_p99_regression_fails(self):
        base = build_report([make_cell()])
        cand = json.loads(to_json(base))
        cand["cells"][0]["latency_ms"]["all"]["p99"] *= 10
        ok, _ = compare(base, cand, max_regression_pct=50.0)
        assert not ok

    def test_unmatched_cell_skipped(self):
        base = build_report([make_cell("x")])
        cand = build_report([make_cell("y")])
        ok, lines = compare(base, cand)
        assert ok and any("not in baseline" in ln for ln in lines)
