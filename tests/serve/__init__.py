"""Tests for the live serving tier (repro.serve)."""
