"""Tests for the open-loop traffic generator."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.serve.traffic import CLS_FLEX, CLS_STICKY, TrafficSpec, make_trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        spec = TrafficSpec(rate=300, duration_s=2.0, seed=42)
        assert make_trace(spec) == make_trace(spec)

    def test_different_seed_different_trace(self):
        a = make_trace(TrafficSpec(rate=300, duration_s=2.0, seed=1))
        b = make_trace(TrafficSpec(rate=300, duration_s=2.0, seed=2))
        assert a != b

    def test_mix_stream_independent_of_envelope(self):
        """Changing the envelope must not reshuffle per-request draws."""
        poisson = make_trace(TrafficSpec(pattern="poisson", rate=200,
                                         duration_s=2.0, seed=5))
        bursty = make_trace(TrafficSpec(pattern="bursty", rate=200,
                                        duration_s=2.0, seed=5))
        n = min(len(poisson), len(bursty))
        assert [a.cls for a in poisson[:n]] == [a.cls for a in bursty[:n]]
        assert [a.home for a in poisson[:n]] == [a.home for a in bursty[:n]]


class TestPoisson:
    def test_mean_interarrival_matches_rate(self):
        spec = TrafficSpec(rate=500.0, duration_s=20.0, seed=3)
        trace = make_trace(spec)
        # ~10k arrivals; the empirical rate should be within 5%.
        assert len(trace) / spec.duration_s == \
            pytest.approx(spec.rate, rel=0.05)
        gaps = [b.t - a.t for a, b in zip(trace, trace[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(1 / spec.rate,
                                                      rel=0.05)

    def test_timestamps_sorted_and_in_range(self):
        trace = make_trace(TrafficSpec(rate=200, duration_s=3.0, seed=9))
        ts = [a.t for a in trace]
        assert ts == sorted(ts)
        assert 0 <= ts[0] and ts[-1] < 3.0
        assert [a.rid for a in trace] == list(range(len(trace)))


class TestEnvelopes:
    def test_bursty_on_off_contrast(self):
        spec = TrafficSpec(pattern="bursty", rate=400, duration_s=10.0,
                           seed=11, burst_factor=4.0, burst_fraction=0.25,
                           burst_period_s=1.0)
        trace = make_trace(spec)
        in_burst = sum(1 for a in trace if (a.t % 1.0) < 0.25)
        out = len(trace) - in_burst
        # Burst windows are 25% of the time at 4x the off-burst rate:
        # they should hold about half the arrivals (ratio ~4x per-second).
        burst_rate = in_burst / (0.25 * spec.duration_s)
        off_rate = out / (0.75 * spec.duration_s)
        assert burst_rate / off_rate == pytest.approx(4.0, rel=0.2)
        # The mean offered rate still honours the spec.
        assert len(trace) / spec.duration_s == pytest.approx(400, rel=0.1)

    def test_diurnal_peak_mid_trace(self):
        spec = TrafficSpec(pattern="diurnal", rate=400, duration_s=10.0,
                           seed=13, diurnal_trough=0.2)
        trace = make_trace(spec)
        thirds = [0, 0, 0]
        for a in trace:
            thirds[min(2, int(3 * a.t / spec.duration_s))] += 1
        # Raised-cosine day: the middle third is the peak, the edges
        # are troughs of roughly equal height.
        assert thirds[1] > 1.5 * thirds[0]
        assert thirds[1] > 1.5 * thirds[2]

    def test_rate_at_mean_matches_target(self):
        for pattern in ("bursty", "diurnal"):
            spec = TrafficSpec(pattern=pattern, rate=300, duration_s=4.0)
            xs = [i * spec.duration_s / 4000 for i in range(4000)]
            mean = sum(spec.rate_at(x) for x in xs) / len(xs)
            assert mean == pytest.approx(300, rel=0.02), pattern
            assert max(spec.rate_at(x) for x in xs) \
                <= spec.peak_rate() * (1 + 1e-9)


class TestMix:
    def test_sticky_fraction_respected(self):
        trace = make_trace(TrafficSpec(rate=500, duration_s=10.0, seed=7,
                                       sticky_fraction=0.3))
        sticky = [a for a in trace if a.cls == CLS_STICKY]
        assert len(sticky) / len(trace) == pytest.approx(0.3, abs=0.03)
        for a in trace:
            assert a.flexible == (a.cls == CLS_FLEX)

    def test_zipf_skew_concentrates_on_hot_place(self):
        spec = TrafficSpec(rate=500, duration_s=10.0, seed=7,
                           n_places=4, skew=1.5, hot_place=2)
        trace = make_trace(spec)
        counts = [0] * 4
        for a in trace:
            counts[a.home] += 1
        assert counts[2] == max(counts)
        expected_hot = 1.0 / sum(1 / (r + 1) ** 1.5 for r in range(4))
        assert counts[2] / len(trace) == pytest.approx(expected_hot,
                                                       abs=0.03)

    def test_service_jitter_bounded(self):
        spec = TrafficSpec(rate=300, duration_s=5.0, seed=1,
                           service_ms=10.0, service_jitter=0.2)
        trace = make_trace(spec)
        lo, hi = min(a.service_ms for a in trace), \
            max(a.service_ms for a in trace)
        assert 8.0 <= lo <= hi <= 12.0
        assert hi - lo > 1.0  # jitter actually applied


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"pattern": "nope"},
        {"rate": 0},
        {"duration_s": -1},
        {"n_places": 0},
        {"sticky_fraction": 1.5},
        {"service_jitter": 1.0},
        {"hot_place": 9},
        {"pattern": "bursty", "burst_factor": 0.5},
        {"pattern": "bursty", "burst_fraction": 1.0},
        {"pattern": "diurnal", "diurnal_trough": 0.0},
    ])
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            make_trace(TrafficSpec(**kwargs))

    def test_payload_shape(self):
        a = make_trace(TrafficSpec(rate=50, duration_s=1.0, seed=0))[0]
        p = a.payload()
        assert set(p) == {"id", "cls", "home", "flexible", "service_ms",
                          "cpu_ms"}
        assert not math.isnan(p["service_ms"])
