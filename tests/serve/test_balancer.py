"""Tests for the balancer registry and router-side dispatch."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.balancer import BALANCERS, Dispatcher, get_balancer


def sticky(home: int) -> dict:
    return {"home": home, "flexible": False}


def flex(home: int) -> dict:
    return {"home": home, "flexible": True}


class TestRegistry:
    def test_known_balancers(self):
        assert set(BALANCERS) == {"selective", "round-robin", "random"}
        assert BALANCERS["selective"].steal is True
        assert BALANCERS["round-robin"].steal is False

    def test_lookup_case_insensitive(self):
        assert get_balancer("Selective") is BALANCERS["selective"]
        assert get_balancer("ROUND-ROBIN") is BALANCERS["round-robin"]

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown balancer"):
            get_balancer("least-loaded")


class TestStickyDispatch:
    """Sticky placement is policy-independent: home or nothing."""

    @pytest.mark.parametrize("name", sorted(BALANCERS))
    def test_sticky_goes_home(self, name):
        d = Dispatcher(BALANCERS[name], 4)
        for home in range(4):
            assert d.place_for(sticky(home), [0, 1, 2, 3]) == home

    @pytest.mark.parametrize("name", sorted(BALANCERS))
    def test_sticky_with_dead_home_gets_none(self, name):
        d = Dispatcher(BALANCERS[name], 4)
        assert d.place_for(sticky(2), [0, 1, 3]) is None

    def test_no_survivors_gets_none(self):
        d = Dispatcher(BALANCERS["selective"], 4)
        assert d.place_for(flex(0), []) is None


class TestFlexibleDispatch:
    def test_selective_dispatches_to_home(self):
        d = Dispatcher(BALANCERS["selective"], 4)
        for home in range(4):
            assert d.place_for(flex(home), [0, 1, 2, 3]) == home

    def test_selective_falls_back_to_survivor_when_home_dead(self):
        d = Dispatcher(BALANCERS["selective"], 4)
        for _ in range(50):
            target = d.place_for(flex(1), [0, 2, 3])
            assert target in (0, 2, 3)

    def test_round_robin_cycles_evenly(self):
        d = Dispatcher(BALANCERS["round-robin"], 4)
        targets = [d.place_for(flex(0), [0, 1, 2, 3]) for _ in range(8)]
        assert targets == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_skips_dead_places(self):
        d = Dispatcher(BALANCERS["round-robin"], 4)
        targets = [d.place_for(flex(0), [0, 2]) for _ in range(6)]
        assert set(targets) == {0, 2}
        assert targets[:4] == [0, 2, 0, 2]

    def test_random_only_picks_alive(self):
        d = Dispatcher(BALANCERS["random"], 4, seed=3)
        targets = {d.place_for(flex(1), [1, 3]) for _ in range(64)}
        assert targets == {1, 3}

    def test_random_seeded_deterministic(self):
        a = Dispatcher(BALANCERS["random"], 4, seed=5)
        b = Dispatcher(BALANCERS["random"], 4, seed=5)
        picks_a = [a.place_for(flex(0), [0, 1, 2, 3]) for _ in range(20)]
        picks_b = [b.place_for(flex(0), [0, 1, 2, 3]) for _ in range(20)]
        assert picks_a == picks_b
