"""Crash-recovery integration tests: SIGKILL vs the experiment store.

The store's core promise is that ``kill -9`` of any participant loses
zero cells and duplicates zero results:

- a **worker** killed mid-cell stops heartbeating; the reaper re-opens
  its row and another worker finishes it, with the attempt recorded;
- a **coordinator** killed mid-sweep leaves every ``done`` row durable;
  a restarted sweep re-simulates only the cells that were still open.

Either way, the recovered grid's snapshots are byte-identical to a
serial run — the determinism contract holds across crashes.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time

from repro.cluster.topology import ClusterSpec
from repro.harness.db import ExperimentStore, drain
from repro.harness.parallel import ExecutionContext, RunSpec


def tiny_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


def grid_specs():
    return [RunSpec.build(app, sched, tiny_spec(), sched_seed=s,
                          scale="test")
            for app in ("uts",)
            for sched in ("DistWS", "RandomWS")
            for s in (1, 2)]


def snapshot_bytes(results) -> bytes:
    return json.dumps([json.dumps(r.stats.snapshot(), sort_keys=True)
                       for r in results]).encode()


def _claim_and_die(path: str) -> None:
    """Child body: lease one cell, then die without cleanup — the
    deterministic stand-in for a worker SIGKILLed mid-simulation."""
    store = ExperimentStore(path)
    store.claim("doomed-worker", lease_seconds=0.5)
    os.kill(os.getpid(), signal.SIGKILL)


def _drain_until_killed(path: str) -> None:
    """Child body: drain the store like a normal worker until the
    parent SIGKILLs us mid-sweep."""
    store = ExperimentStore(path)
    drain(store, heartbeat_seconds=0.1, lease_seconds=0.6,
          poll_seconds=0.05)


def test_sigkill_worker_mid_cell_sweep_still_completes(tmp_path):
    specs = grid_specs()
    serial = ExecutionContext().run_specs(specs)

    path = str(tmp_path / "store.sqlite")
    store = ExperimentStore(path)
    store.add_specs(specs)

    child = mp.Process(target=_claim_and_die, args=(path,))
    child.start()
    child.join(timeout=30)
    assert child.exitcode == -signal.SIGKILL

    # The dead worker's lease is still on the books until it expires.
    assert store.counts()["leased"] == 1
    time.sleep(0.7)

    # A surviving worker's drain loop reaps the orphan and finishes
    # the whole grid (drain reaps internally; this is explicit for
    # the assertion on the reclaimed key).
    reclaimed = store.reap()
    assert len(reclaimed) == 1
    completed = drain(store, heartbeat_seconds=0.1, lease_seconds=1.0)
    assert completed == len(specs)

    counts = store.counts()
    assert counts["done"] == len(specs)
    assert counts["failed"] == counts["pending"] == counts["leased"] == 0

    # The re-run cell records the crash as a burned attempt.
    attempts = {r.key: r.attempts for r in store.rows()}
    assert attempts[reclaimed[0]] == 2
    assert sorted(attempts.values()) == [1] * (len(specs) - 1) + [2]

    # Byte-identical to serial, and nothing re-simulates on resume.
    recovered = [store.get_result(s.cache_key()) for s in specs]
    assert snapshot_bytes(recovered) == snapshot_bytes(serial)
    assert drain(store) == 0
    store.close()


def test_sigkill_coordinator_mid_sweep_resumes_incrementally(tmp_path):
    specs = grid_specs()
    serial = ExecutionContext().run_specs(specs)

    path = str(tmp_path / "store.sqlite")
    store = ExperimentStore(path)
    store.add_specs(specs)

    # "Coordinator": a process draining the sweep.  Kill it once real
    # results are durable but the sweep is unfinished.
    coord = mp.Process(target=_drain_until_killed, args=(path,))
    coord.start()
    deadline = time.time() + 120
    while time.time() < deadline:
        counts = store.counts()
        if counts["done"] >= 1 and counts["done"] < len(specs):
            break
        if counts["done"] == len(specs):  # too fast; still a valid run
            break
        time.sleep(0.02)
    os.kill(coord.pid, signal.SIGKILL)
    coord.join(timeout=30)
    assert coord.exitcode == -signal.SIGKILL

    done_at_kill = store.counts()["done"]
    assert done_at_kill >= 1

    # Restart: drain reaps any orphaned lease and finishes the rest.
    time.sleep(0.7)  # let the killed coordinator's lease expire
    resimulated = drain(store, heartbeat_seconds=0.1, lease_seconds=1.0)

    # Zero lost cells, zero re-simulated done cells.
    assert store.counts()["done"] == len(specs)
    assert resimulated == len(specs) - done_at_kill

    recovered = [store.get_result(s.cache_key()) for s in specs]
    assert snapshot_bytes(recovered) == snapshot_bytes(serial)
    store.close()


def test_two_workers_drain_one_store(tmp_path):
    """The multi-worker shape: two independent processes pull from one
    store; the union of their work is the whole grid, exactly once."""
    from repro.harness.db import run_worker

    specs = grid_specs()
    serial = ExecutionContext().run_specs(specs)

    path = str(tmp_path / "store.sqlite")
    store = ExperimentStore(path)
    store.add_specs(specs)

    workers = [mp.Process(target=run_worker, args=(path,),
                          kwargs=dict(heartbeat_seconds=0.1,
                                      lease_seconds=1.0,
                                      poll_seconds=0.05))
               for _ in range(2)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=120)
        assert w.exitcode == 0

    counts = store.counts()
    assert counts["done"] == len(specs)
    assert {r.attempts for r in store.rows()} == {1}  # exactly once
    recovered = [store.get_result(s.cache_key()) for s in specs]
    assert snapshot_bytes(recovered) == snapshot_bytes(serial)
    store.close()
