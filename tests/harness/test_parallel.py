"""Tests for the parallel sharded executor and the on-disk result cache.

The load-bearing guarantee is the determinism contract of
``repro.harness.parallel``: for the same seed grid, any worker count and
any cache state produce ``RunStats.snapshot()`` JSON byte-identical to
serial execution.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.faults.plan import PlaceCrash
from repro.harness.parallel import (
    CellRequest,
    ExecutionContext,
    ResultCache,
    RunSpec,
    current_context,
    execution,
    run_cells,
)


def tiny_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


def grid_requests():
    """A small fixed (app x scheduler x seed) grid."""
    return [CellRequest.build(app, sched, tiny_spec(),
                              sched_seeds=(1, 2), scale="test")
            for app in ("uts", "quicksort")
            for sched in ("DistWS", "RandomWS")]


def snapshot_bytes(cells):
    """Canonical byte string for a list of CellResults."""
    return json.dumps(
        [[json.dumps(r.stats.snapshot(), sort_keys=True) for r in c.runs]
         for c in cells]).encode()


class TestDifferential:
    def test_parallel_matches_serial_byte_for_byte(self):
        """N in {1, 2, 4} workers all reproduce the serial snapshots."""
        serial = snapshot_bytes(run_cells(grid_requests()))
        for n in (1, 2, 4):
            with execution(parallel=n):
                assert snapshot_bytes(run_cells(grid_requests())) \
                    == serial, f"parallel={n} diverged from serial"

    def test_results_return_in_input_order(self):
        specs = [RunSpec.build("uts", sched, tiny_spec(), sched_seed=s,
                               scale="test")
                 for sched in ("DistWS", "RandomWS") for s in (1, 2)]
        ctx = ExecutionContext(parallel=2)
        results = ctx.run_specs(specs)
        assert len(results) == len(specs)
        for spec, res in zip(specs, results):
            assert res.scheduler == spec.scheduler
            assert res.sched_seed == spec.sched_seed

    def test_streaming_callback_sees_every_index(self):
        specs = [RunSpec.build("uts", "DistWS", tiny_spec(), sched_seed=s,
                               scale="test") for s in (1, 2, 3)]
        seen = []
        ctx = ExecutionContext(parallel=2)
        results = ctx.run_specs(
            specs, on_result=lambda i, spec, res: seen.append((i, res)))
        assert sorted(i for i, _ in seen) == [0, 1, 2]
        for i, res in seen:
            assert results[i] is res

    def test_identical_specs_simulate_once(self):
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        ctx = ExecutionContext()
        a, b, c = ctx.run_specs([spec, spec, spec])
        assert ctx.simulations == 1
        assert a is b is c


class TestCacheKey:
    def base(self, **kw):
        return RunSpec.build("uts", "DistWS", tiny_spec(), scale="test",
                             **kw)

    def test_stable_under_kwargs_ordering(self):
        a = self.base(sched_kwargs={"remote_chunk_size": 4, "alpha": 1})
        b = self.base(sched_kwargs={"alpha": 1, "remote_chunk_size": 4})
        assert a.cache_key() == b.cache_key()

    def test_differs_by_every_determining_input(self):
        base = self.base()
        variants = [
            self.base(sched_seed=9),
            self.base(app_seed=999),
            self.base(validate=False),
            self.base(sched_kwargs={"remote_chunk_size": 4}),
            self.base(app_overrides={"decay": 0.5}),
            self.base(costs=dataclasses.replace(DEFAULT_COST_MODEL,
                                                closure_create=1.0)),
            self.base(fault_plan=FaultPlan(
                crashes=(PlaceCrash(1, 0.5),), seed=7)),
            RunSpec.build("uts", "RandomWS", tiny_spec(), scale="test"),
            RunSpec.build("quicksort", "DistWS", tiny_spec(),
                          scale="test"),
            RunSpec.build("uts", "DistWS", tiny_spec(), scale="bench"),
            RunSpec.build("uts", "DistWS",
                          ClusterSpec(n_places=4, workers_per_place=2,
                                      max_threads=4), scale="test"),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == 1 + len(variants), \
            "two distinct configurations collided on one cache key"


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        assert cache.get(spec) is None
        assert cache.misses == 1
        cache.put(spec, {"payload": 42})
        assert len(cache) == 1
        assert cache.get(spec) == {"payload": 42}
        assert cache.hits == 1 and cache.stores == 1

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        cache.put(spec, {"payload": 1})
        entry = tmp_path / f"{spec.cache_key()}.pkl"
        entry.write_bytes(b"\x80\x05 torn write")
        assert cache.get(spec) is None
        assert not entry.exists(), "corrupt entry should be evicted"
        # The slot heals: a fresh put works again.
        cache.put(spec, {"payload": 2})
        assert cache.get(spec) == {"payload": 2}

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        cache.put(spec, 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.get(spec) is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        cache.put(spec, [1, 2, 3])
        leftovers = [p.name for p in tmp_path.iterdir()
                     if not p.name.endswith(".pkl")]
        assert leftovers == []


class TestContextCaching:
    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        requests = grid_requests()
        with execution(cache_dir=str(tmp_path)) as cold:
            first = snapshot_bytes(run_cells(requests))
            assert cold.simulations == 8
            assert cold.cache.stores == 8
        with execution(cache_dir=str(tmp_path)) as warm:
            second = snapshot_bytes(run_cells(requests))
            assert warm.simulations == 0, \
                "warm cache must not simulate anything"
            assert warm.cache.hits == 8
        assert first == second

    def test_config_change_invalidates(self, tmp_path):
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        changed = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test",
                                sched_kwargs={"remote_chunk_size": 4})
        with execution(cache_dir=str(tmp_path)) as ctx:
            ctx.run_specs([spec])
            ctx.run_specs([changed])
            assert ctx.simulations == 2, \
                "a changed scheduler config must re-simulate"

    def test_cached_results_match_fresh(self, tmp_path):
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        fresh = ExecutionContext().run_specs([spec])[0]
        with execution(cache_dir=str(tmp_path)):
            current_context().run_specs([spec])
        with execution(cache_dir=str(tmp_path)) as ctx:
            cached = ctx.run_specs([spec])[0]
            assert ctx.simulations == 0
        assert json.dumps(cached.stats.snapshot(), sort_keys=True) \
            == json.dumps(fresh.stats.snapshot(), sort_keys=True)


class TestContextPlumbing:
    def test_rejects_nonpositive_parallel(self):
        with pytest.raises(ConfigError):
            ExecutionContext(parallel=0)

    def test_execution_restores_previous_context(self):
        outer = current_context()
        with execution(parallel=3) as ctx:
            assert current_context() is ctx
            assert ctx.parallel == 3
        assert current_context() is outer

    def test_nested_contexts_unwind_in_order(self):
        with execution(parallel=2) as a:
            with execution(parallel=4) as b:
                assert current_context() is b
            assert current_context() is a

    def test_run_spec_is_picklable(self):
        spec = RunSpec.build(
            "uts", "DistWS", tiny_spec(), scale="test",
            sched_kwargs={"remote_chunk_size": 4},
            fault_plan=FaultPlan(crashes=(PlaceCrash(1, 0.5),), seed=7))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_cell_request_requires_seeds(self):
        with pytest.raises(ConfigError):
            CellRequest.build("uts", "DistWS", tiny_spec(),
                              sched_seeds=())


# ---------------------------------------------------------------------------
# Pool-worker death recovery (BrokenProcessPool).

#: Bound before any monkeypatching so the kamikaze can defer to it.
from repro.harness.parallel import simulate as _real_simulate  # noqa: E402


def _kamikaze_simulate(spec):
    """Pool target that dies (hard, like an OOM kill) exactly once per
    flag file, then defers to the real simulator."""
    import os

    flag = os.environ["REPRO_TEST_KAMIKAZE_FLAG"]
    try:
        fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return _real_simulate(spec)
    os.close(fd)
    os._exit(137)


def _always_dies(spec):
    import os

    os._exit(137)


def _fork_only():
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("pool-death tests monkeypatch the child via fork")


class TestPoolWorkerDeath:
    def test_dead_worker_rebuilds_pool_and_recovers(
            self, tmp_path, monkeypatch):
        _fork_only()
        import repro.harness.parallel as parallel_mod

        specs = [RunSpec.build("uts", sched, tiny_spec(), sched_seed=s,
                               scale="test")
                 for sched in ("DistWS", "RandomWS") for s in (1, 2)]
        serial = ExecutionContext().run_specs(specs)

        monkeypatch.setenv("REPRO_TEST_KAMIKAZE_FLAG",
                           str(tmp_path / "died.flag"))
        monkeypatch.setattr(parallel_mod, "simulate", _kamikaze_simulate)
        ctx = ExecutionContext(parallel=2)
        results = ctx.run_specs(specs)

        assert (tmp_path / "died.flag").exists()
        assert ctx.pool_rebuilds >= 1
        got = [json.dumps(r.stats.snapshot(), sort_keys=True)
               for r in results]
        want = [json.dumps(r.stats.snapshot(), sort_keys=True)
                for r in serial]
        assert got == want

    def test_repeatedly_dying_spec_gives_up_with_context(
            self, monkeypatch):
        _fork_only()
        from concurrent.futures.process import BrokenProcessPool

        import repro.harness.parallel as parallel_mod

        specs = [RunSpec.build("uts", "DistWS", tiny_spec(), sched_seed=s,
                               scale="test") for s in (1, 2)]
        monkeypatch.setattr(parallel_mod, "simulate", _always_dies)
        ctx = ExecutionContext(parallel=2)
        with pytest.raises(BrokenProcessPool, match="giving up"):
            ctx.run_specs(specs)
        assert ctx.pool_rebuilds == ctx.max_spec_retries


# ---------------------------------------------------------------------------
# Cache degradation is loud (narrowed OSError handling + warnings).

class TestCacheDegradation:
    def test_unwritable_cache_warns_once_and_continues(
            self, tmp_path, monkeypatch):
        import tempfile

        cache = ResultCache(str(tmp_path))

        def refuse(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(tempfile, "mkstemp", refuse)
        specs = [RunSpec.build("uts", "DistWS", tiny_spec(), sched_seed=s,
                               scale="test") for s in (1, 2)]
        with pytest.warns(RuntimeWarning, match="store failed") as rec:
            cache.put(specs[0], {"x": 1})
            cache.put(specs[1], {"x": 2})
        cache_warnings = [w for w in rec
                         if "result cache" in str(w.message)]
        assert len(cache_warnings) == 1, "same cause must warn once"
        assert cache.io_errors == 2
        assert cache.stores == 0
        assert len(cache) == 0  # skipped, not torn

    def test_unreadable_entry_warns_and_misses(self, tmp_path):
        import builtins

        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        cache.put(spec, {"x": 1})
        entry = cache._entry(spec.cache_key())
        real_open = builtins.open

        def deny(path, *args, **kwargs):
            if str(path) == entry and "r" in str(args[:1] or "r"):
                raise PermissionError(13, "Permission denied", path)
            return real_open(path, *args, **kwargs)

        builtins.open = deny
        try:
            with pytest.warns(RuntimeWarning, match="entry unreadable"):
                assert cache.get(spec) is None
        finally:
            builtins.open = real_open
        assert cache.misses == 1
        assert cache.io_errors == 1
        # The entry itself is intact — readable again once perms heal.
        assert cache.get(spec) == {"x": 1}

    def test_entry_replaced_by_directory_warns_but_heals(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        entry = cache._entry(spec.cache_key())
        os.makedirs(entry)  # an operator mistake, not a torn write
        with pytest.warns(RuntimeWarning):
            assert cache.get(spec) is None
        assert cache.misses == 1
        assert cache.io_errors >= 1

    def test_missing_entry_is_a_silent_miss(self, tmp_path, recwarn):
        cache = ResultCache(str(tmp_path))
        spec = RunSpec.build("uts", "DistWS", tiny_spec(), scale="test")
        assert cache.get(spec) is None
        assert cache.misses == 1
        assert cache.io_errors == 0
        cache_warnings = [w for w in recwarn.list
                          if "result cache" in str(w.message)]
        assert cache_warnings == [], "a plain miss must stay silent"
