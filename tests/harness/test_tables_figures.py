"""Tests for table and figure rendering."""

from __future__ import annotations

from repro.harness.figures import bar_chart, grouped_bars, series_lines
from repro.harness.tables import format_cell, render_table


class TestFormatCell:
    def test_ints_get_separators(self):
        assert format_cell(1234567) == "1,234,567"

    def test_floats(self):
        assert format_cell(0.12345) == "0.1235"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(0.0) == "0"

    def test_bool_and_str(self):
        assert format_cell(True) == "yes"
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["a", "long_header"], [[1, 2], [333, 4]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equally wide

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out


class TestFigures:
    def test_bar_chart_scales_to_max(self):
        out = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart([], title="t")

    def test_grouped_bars_structure(self):
        out = grouped_bars(["g1", "g2"],
                           {"s1": [1, 2], "s2": [2, 1]}, width=8)
        assert "g1:" in out and "g2:" in out
        assert out.count("|") == 4

    def test_series_lines(self):
        out = series_lines([1, 2], {"a": [0.5, 1.5], "b": [1.0, 2.0]},
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "0.500" in lines[3]
        assert "2.000" in lines[4]
