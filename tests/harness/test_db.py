"""Tests for the crash-resilient experiment store (`repro.harness.db`).

The load-bearing guarantees:

- **exactly-once results** — a ``done`` row is written once, by the
  worker that still holds the lease; late writers (reaped under them)
  are fenced out and a resumed sweep never re-simulates a done cell;
- **zero lost cells** — every enqueued row ends ``done`` or ``failed``
  no matter which worker (or the coordinator) dies when;
- **graceful degradation** — a poison cell quarantines with its
  traceback after ``max_attempts`` instead of wedging the queue.
"""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.harness.db import (
    ClaimedRow,
    ExperimentStore,
    QuarantinedError,
    StoreError,
    default_owner,
    drain,
    graceful_signals,
    run_claimed,
)
from repro.harness.parallel import ExecutionContext, RunSpec, execution


class FakeClock:
    """A manually-advanced wall clock for deterministic lease expiry."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def tiny_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


def grid_specs(n_seeds: int = 2):
    return [RunSpec.build(app, sched, tiny_spec(), sched_seed=s,
                          scale="test")
            for app in ("uts",)
            for sched in ("DistWS", "RandomWS")
            for s in range(1, n_seeds + 1)]


def poison_spec(tag: int = 1):
    """A spec whose simulation reliably raises (bad app override)."""
    return RunSpec.build("uts", "DistWS", tiny_spec(), sched_seed=tag,
                         scale="test",
                         app_overrides={"no_such_parameter": tag})


def make_store(tmp_path, **kwargs) -> ExperimentStore:
    return ExperimentStore(str(tmp_path / "store.sqlite"), **kwargs)


def snapshot_bytes(results) -> bytes:
    return json.dumps([json.dumps(r.stats.snapshot(), sort_keys=True)
                       for r in results]).encode()


class TestLeaseLifecycle:
    def test_claim_lease_complete(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock)
        specs = grid_specs()
        assert store.add_specs(specs) == len(specs)
        assert store.counts()["pending"] == len(specs)

        row = store.claim("w1", lease_seconds=10.0)
        assert isinstance(row, ClaimedRow)
        assert row.attempt == 1
        assert store.counts()["leased"] == 1

        assert store.complete(row.key, "w1", "result-blob")
        assert store.counts()["done"] == 1
        assert store.get_result(row.key) == "result-blob"

    def test_claim_is_exclusive(self, tmp_path):
        store = make_store(tmp_path, clock=FakeClock())
        store.add_specs(grid_specs()[:1])
        first = store.claim("w1", 10.0)
        assert first is not None
        assert store.claim("w2", 10.0) is None  # nothing pending left

    def test_claim_empty_store(self, tmp_path):
        store = make_store(tmp_path)
        assert store.claim("w1", 10.0) is None

    def test_heartbeat_extends_lease(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock)
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        clock.advance(4.0)
        assert store.heartbeat(row.key, "w1", 5.0)
        clock.advance(4.0)  # past the original deadline, not the new one
        assert store.reap() == []
        assert store.counts()["leased"] == 1

    def test_heartbeat_wrong_owner_fails(self, tmp_path):
        store = make_store(tmp_path, clock=FakeClock())
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        assert not store.heartbeat(row.key, "w2", 5.0)

    def test_release_refunds_the_attempt(self, tmp_path):
        store = make_store(tmp_path, clock=FakeClock())
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        assert store.release(row.key, "w1")
        assert store.counts()["pending"] == 1
        again = store.claim("w2", 5.0)
        assert again.key == row.key
        assert again.attempt == 1  # interrupt was not a strike

    def test_add_specs_is_idempotent_and_keeps_done_rows(self, tmp_path):
        store = make_store(tmp_path, clock=FakeClock())
        specs = grid_specs()
        store.add_specs(specs)
        row = store.claim("w1", 10.0)
        store.complete(row.key, "w1", "kept")
        assert store.add_specs(specs) == 0
        assert store.get_result(row.key) == "kept"
        assert store.counts()["done"] == 1


class TestReaper:
    def test_expired_lease_is_reclaimed(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock)
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        clock.advance(5.1)
        assert store.reap() == [row.key]
        assert store.counts()["pending"] == 1
        again = store.claim("w2", 5.0)
        assert again.key == row.key
        assert again.attempt == 2

    def test_unexpired_lease_is_left_alone(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock)
        store.add_specs(grid_specs()[:1])
        store.claim("w1", 5.0)
        clock.advance(4.9)
        assert store.reap() == []

    def test_fenced_writer_loses_after_reclaim(self, tmp_path):
        """The exactly-once fence: a reaped worker's late result and
        heartbeats are discarded."""
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock)
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        clock.advance(6.0)
        store.reap()
        row2 = store.claim("w2", 5.0)
        assert row2.key == row.key
        # w1 wakes up from its GC pause and tries to finish:
        assert not store.heartbeat(row.key, "w1", 5.0)
        assert not store.complete(row.key, "w1", "stale")
        assert store.complete(row2.key, "w2", "fresh")
        assert store.get_result(row.key) == "fresh"

    def test_poison_cell_quarantined_by_reaper(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock, max_attempts=2)
        store.add_specs(grid_specs()[:1])
        for attempt in (1, 2):
            row = store.claim(f"w{attempt}", 5.0)
            assert row.attempt == attempt
            clock.advance(6.0)
            reclaimed = store.reap()
            if attempt < 2:
                assert reclaimed == [row.key]
        assert reclaimed == []  # final expiry quarantines instead
        counts = store.counts()
        assert counts["failed"] == 1 and counts["pending"] == 0
        assert "presumed dead" in store.get_error(row.key)

    def test_worker_error_retries_then_quarantines(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock, max_attempts=3)
        store.add_specs(grid_specs()[:1])
        for attempt in (1, 2, 3):
            row = store.claim("w1", 5.0)
            status = store.fail(row.key, "w1",
                                f"Traceback ...\nBoom {attempt}")
            assert status == ("failed" if attempt == 3 else "pending")
        assert store.counts()["failed"] == 1
        assert "Boom 3" in store.get_error(row.key)

    def test_fail_after_reclaim_is_lost(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, clock=clock)
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        clock.advance(6.0)
        store.reap()
        assert store.fail(row.key, "w1", "late traceback") == "lost"
        assert store.counts()["pending"] == 1


class TestPersistence:
    def test_survives_close_and_reopen(self, tmp_path):
        """Coordinator restart: state is all on disk."""
        clock = FakeClock()
        path = str(tmp_path / "store.sqlite")
        store = ExperimentStore(path, clock=clock)
        specs = grid_specs()
        store.add_specs(specs)
        row = store.claim("w1", 5.0)
        store.complete(row.key, "w1", "persisted")
        store.claim("w1", 5.0)  # leave one leased (simulated crash)
        store.close()

        clock.advance(10.0)  # the held lease expires while "down"
        reopened = ExperimentStore(path, clock=clock)
        counts = reopened.counts()
        assert counts["done"] == 1 and counts["leased"] == 1
        assert reopened.reap() != []
        assert reopened.get_result(row.key) == "persisted"
        reopened.close()

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = ExperimentStore(path)
        with store._lock:
            store._conn.execute(
                "UPDATE meta SET value = '999' "
                "WHERE key = 'schema_version'")
        store.close()
        with pytest.raises(StoreError):
            ExperimentStore(path)

    def test_max_attempts_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            make_store(tmp_path, max_attempts=0)


class _FlakyCommitConn:
    """Delegating wrapper whose COMMIT raises `database is locked` the
    first ``failures`` times without committing (the transaction stays
    open on the real connection, as with genuine cross-process busy)."""

    def __init__(self, conn, failures: int) -> None:
        self._real = conn
        self.failures = failures

    def execute(self, sql, *args):
        if sql == "COMMIT" and self.failures > 0:
            self.failures -= 1
            import sqlite3
            raise sqlite3.OperationalError("database is locked")
        return self._real.execute(sql, *args)

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestBusyRetry:
    def test_commit_failure_is_rolled_back_and_retried(self, tmp_path):
        """A busy error out of COMMIT itself must not strand the
        connection inside the open transaction — the retry's BEGIN
        IMMEDIATE would die with 'cannot start a transaction within a
        transaction' instead of retrying."""
        store = make_store(tmp_path, busy_base_sleep=0.001)
        store._conn = _FlakyCommitConn(store._conn, failures=2)
        specs = grid_specs()
        assert store.add_specs(specs) == len(specs)
        assert store._conn.failures == 0
        assert store.counts()["pending"] == len(specs)
        store.close()

    def test_commit_failure_budget_exhausted_raises_locked(self, tmp_path):
        """Even when retries run out, the surfaced error is the busy
        one, not a transaction-nesting artifact."""
        import sqlite3

        store = make_store(tmp_path, busy_retries=1,
                           busy_base_sleep=0.001)
        store._conn = _FlakyCommitConn(store._conn, failures=99)
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.add_specs(grid_specs())
        # The failed transaction was reset: plain reads still work.
        assert store.counts()["pending"] == 0
        store.close()


class TestDrain:
    def test_drain_matches_serial_bytes(self, tmp_path):
        specs = grid_specs()
        serial = ExecutionContext().run_specs(specs)
        store = make_store(tmp_path)
        store.add_specs(specs)
        completed = drain(store, heartbeat_seconds=0.2)
        assert completed == len(specs)
        drained = [store.get_result(s.cache_key()) for s in specs]
        assert snapshot_bytes(drained) == snapshot_bytes(serial)

    def test_resumed_drain_simulates_nothing(self, tmp_path):
        specs = grid_specs()
        store = make_store(tmp_path)
        store.add_specs(specs)
        assert drain(store) == len(specs)
        # restart: re-enqueue + drain again — zero re-simulated cells
        assert store.add_specs(specs) == 0
        assert drain(store) == 0

    def test_drain_rejects_lease_shorter_than_heartbeat(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ConfigError):
            drain(store, heartbeat_seconds=2.0, lease_seconds=1.0)

    def test_run_claimed_records_traceback_on_crash(self, tmp_path):
        store = make_store(tmp_path, max_attempts=1)
        store.add_specs([poison_spec()])
        owner = default_owner()
        row = store.claim(owner, 10.0)
        assert not run_claimed(store, row, owner,
                               heartbeat_seconds=0.2, lease_seconds=10.0)
        assert store.counts()["failed"] == 1
        error = store.get_error(row.key)
        assert "Traceback" in error and "no_such_parameter" in error

    def test_drain_quarantines_poison_and_finishes_rest(self, tmp_path):
        specs = grid_specs() + [poison_spec()]
        store = make_store(tmp_path, max_attempts=2)
        store.add_specs(specs)
        drain(store, heartbeat_seconds=0.2)
        counts = store.counts()
        assert counts["done"] == len(specs) - 1
        assert counts["failed"] == 1
        assert counts["pending"] == counts["leased"] == 0


class TestExecutionContextStoreBackend:
    def test_store_context_matches_serial(self, tmp_path):
        specs = grid_specs()
        serial = ExecutionContext().run_specs(specs)
        store = make_store(tmp_path)
        ctx = ExecutionContext(store=store)
        assert snapshot_bytes(ctx.run_specs(specs)) \
            == snapshot_bytes(serial)
        assert ctx.simulations == len(specs)

    def test_store_context_parallel_matches_serial(self, tmp_path):
        specs = grid_specs()
        serial = ExecutionContext().run_specs(specs)
        store = make_store(tmp_path)
        ctx = ExecutionContext(parallel=2, store=store)
        assert snapshot_bytes(ctx.run_specs(specs)) \
            == snapshot_bytes(serial)

    def test_store_context_resumes_without_resimulating(self, tmp_path):
        specs = grid_specs()
        store = make_store(tmp_path)
        first = ExecutionContext(store=store)
        first.run_specs(specs)
        resumed = ExecutionContext(store=store)
        results = resumed.run_specs(specs)
        assert resumed.simulations == 0
        assert snapshot_bytes(results) \
            == snapshot_bytes(first.run_specs(specs))

    def test_store_context_raises_quarantined(self, tmp_path):
        store = make_store(tmp_path, max_attempts=1)
        ctx = ExecutionContext(store=store)
        with pytest.raises(QuarantinedError) as excinfo:
            ctx.run_specs(grid_specs()[:1] + [poison_spec()])
        assert excinfo.value.failures
        assert "no_such_parameter" in next(
            iter(excinfo.value.failures.values()))
        # the healthy cell still finished
        assert store.counts()["done"] == 1

    def test_execution_contextmanager_store_path(self, tmp_path):
        path = str(tmp_path / "ctx.sqlite")
        specs = grid_specs()[:2]
        with execution(store_path=path) as ctx:
            ctx.run_specs(specs)
        reopened = ExperimentStore(path)
        assert reopened.counts()["done"] == len(specs)
        reopened.close()


class TestQueryViews:
    def test_rows_and_status_filter(self, tmp_path):
        store = make_store(tmp_path, clock=FakeClock())
        specs = grid_specs()
        store.add_specs(specs)
        row = store.claim("w1", 10.0)
        store.complete(row.key, "w1", "r")
        all_rows = store.rows()
        assert len(all_rows) == len(specs)
        assert {r.status for r in all_rows} == {"pending", "done"}
        done = store.rows(status="done")
        assert [r.key for r in done] == [row.key]
        assert done[0].payload["app"] == "uts"
        with pytest.raises(ConfigError):
            store.rows(status="nope")

    def test_statuses_batch(self, tmp_path):
        store = make_store(tmp_path, clock=FakeClock())
        specs = grid_specs()
        store.add_specs(specs)
        keys = [s.cache_key() for s in specs]
        statuses = store.statuses(keys + ["not-a-key"])
        assert set(statuses) == set(keys)
        assert set(statuses.values()) == {"pending"}


class TestObsEvents:
    def _bus(self, clock):
        from repro.obs import EventBus, InMemorySink
        bus = EventBus()
        sink = bus.subscribe(InMemorySink())
        bus.attach_clock(clock)
        return bus, sink

    def test_lifecycle_events_published(self, tmp_path):
        clock = FakeClock()
        bus, sink = self._bus(clock)
        store = make_store(tmp_path, clock=clock, bus=bus,
                           max_attempts=2)
        store.add_specs(grid_specs()[:1])
        row = store.claim("w1", 5.0)
        clock.advance(6.0)
        store.reap()                     # miss + reclaim
        row2 = store.claim("w2", 5.0)
        clock.advance(6.0)
        store.reap()                     # miss + quarantine
        kinds = [ev.kind for ev in sink.events]
        assert kinds == ["store_lease", "store_heartbeat_miss",
                         "store_reclaim", "store_lease",
                         "store_heartbeat_miss", "store_quarantine"]
        lease = sink.events[0]
        assert lease.fields["owner"] == "w1"
        assert lease.fields["attempt"] == 1
        assert lease.t == clock.t - 12.0  # stamped by the fake clock
        reclaim = sink.events[2]
        assert reclaim.fields["owner"] == "w1"
        quarantine = sink.events[5]
        assert quarantine.fields["attempts"] == 2
        assert row.key == row2.key == quarantine.fields["key"]

    def test_standalone_bus_rejects_runtime_attach(self):
        from repro.obs import EventBus, InMemorySink
        from repro.runtime.runtime import SimRuntime
        from repro.sched import make_scheduler
        bus = EventBus()
        bus.subscribe(InMemorySink())
        bus.attach_clock(FakeClock())
        rt = SimRuntime(tiny_spec(), make_scheduler("DistWS"), seed=1)
        with pytest.raises(ConfigError):
            bus.attach(rt)


class TestGracefulSignals:
    def test_sigterm_becomes_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_signals():
                os.kill(os.getpid(), signal.SIGTERM)
        # handler restored afterwards
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

    def test_noop_off_main_thread(self):
        seen = []

        def body():
            with graceful_signals():
                seen.append(signal.getsignal(signal.SIGTERM))

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert seen == [signal.SIG_DFL]

    def test_interrupt_mid_cell_releases_lease(self, tmp_path):
        """A worker interrupted mid-simulation returns the cell."""
        store = make_store(tmp_path)
        store.add_specs(grid_specs()[:1])
        owner = default_owner()
        row = store.claim(owner, 10.0)

        import repro.harness.parallel as parallel_mod

        def interrupted(spec):
            raise KeyboardInterrupt

        original = parallel_mod.simulate
        parallel_mod.simulate = interrupted
        try:
            with pytest.raises(KeyboardInterrupt):
                run_claimed(store, row, owner,
                            heartbeat_seconds=0.2, lease_seconds=10.0)
        finally:
            parallel_mod.simulate = original
        counts = store.counts()
        assert counts["pending"] == 1 and counts["leased"] == 0
        # and the attempt was refunded
        assert store.claim("w2", 5.0).attempt == 1
