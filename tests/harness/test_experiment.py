"""Tests for the experiment runner and app registry."""

from __future__ import annotations

import pytest

from repro.apps import APP_REGISTRY, PAPER_APPS, make_app
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.harness.experiment import run_cell, run_once


def tiny_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


class TestRegistry:
    def test_paper_apps_registered(self):
        for name in PAPER_APPS:
            assert name in APP_REGISTRY

    def test_make_app_scales(self):
        bench = make_app("quicksort")
        test = make_app("quicksort", scale="test")
        assert test.n < bench.n

    def test_make_app_overrides(self):
        app = make_app("uts", scale="test", decay=0.5)
        assert app.decay == 0.5

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            make_app("nosuch")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            make_app("uts", scale="huge")


class TestRunOnce:
    def test_returns_result_with_speedup(self):
        res = run_once("uts", "DistWS", tiny_spec(), scale="test")
        assert res.speedup > 0
        assert res.makespan_ms > 0
        assert res.stats.tasks_executed > 0
        assert res.wall_seconds > 0

    def test_deterministic(self):
        a = run_once("uts", "DistWS", tiny_spec(), scale="test",
                     sched_seed=4)
        b = run_once("uts", "DistWS", tiny_spec(), scale="test",
                     sched_seed=4)
        assert a.stats.makespan_cycles == b.stats.makespan_cycles

    def test_sched_kwargs_forwarded(self):
        res = run_once("uts", "DistWS", tiny_spec(), scale="test",
                       sched_kwargs={"remote_chunk_size": 4})
        assert res.stats.tasks_executed > 0


class TestRunCell:
    def test_aggregates_over_seeds(self):
        cell = run_cell("uts", "DistWS", tiny_spec(),
                        sched_seeds=(1, 2), scale="test")
        assert len(cell.runs) == 2
        speeds = [r.speedup for r in cell.runs]
        assert min(speeds) <= cell.mean_speedup <= max(speeds)

    def test_mean_helper(self):
        cell = run_cell("uts", "DistWS", tiny_spec(), sched_seeds=(1,),
                        scale="test")
        assert cell.mean(lambda r: r.stats.tasks_executed) \
            == cell.runs[0].stats.tasks_executed
