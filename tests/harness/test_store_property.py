"""Property-based invariants of the experiment-store lease state machine.

Hypothesis drives arbitrary interleavings of the store's public
operations — multiple owners claiming, heartbeating, completing,
failing, releasing, plus clock advances and reaper passes — against an
in-memory SQLite store with a fake clock, and checks the guarantees the
crash-recovery design rests on:

- **no double-lease** — at most one owner holds any row at a time, and
  an owner whose lease was reclaimed can never commit a result;
- **no lost rows** — the row population is conserved: every enqueued
  key is always in exactly one of ``pending | leased | done | failed``;
- **terminal means terminal** — ``done`` and ``failed`` rows never
  change status again (in particular ``done`` survives every reaper
  pass and late write);
- **liveness** — whatever state an interleaving strands the store in,
  a single well-behaved drain pass always drives every row terminal.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.db import ExperimentStore

#: Replayable, slow-host-tolerant settings (matches the sched module).
PROPERTY_SETTINGS = dict(deadline=None, print_blob=True,
                         suppress_health_check=[HealthCheck.too_slow])

N_KEYS = 4
OWNERS = ("w0", "w1", "w2")
LEASE = 10.0
MAX_ATTEMPTS = 3

#: One step of the interleaving.  ``claim`` takes whichever pending row
#: is oldest, so only the owner varies; targeted ops pick a key index.
OPS = st.one_of(
    st.tuples(st.just("claim"), st.sampled_from(OWNERS)),
    st.tuples(st.just("heartbeat"), st.sampled_from(OWNERS),
              st.integers(0, N_KEYS - 1)),
    st.tuples(st.just("complete"), st.sampled_from(OWNERS),
              st.integers(0, N_KEYS - 1)),
    st.tuples(st.just("fail"), st.sampled_from(OWNERS),
              st.integers(0, N_KEYS - 1)),
    st.tuples(st.just("release"), st.sampled_from(OWNERS),
              st.integers(0, N_KEYS - 1)),
    st.tuples(st.just("advance"), st.sampled_from([1.0, 6.0, 11.0])),
    st.tuples(st.just("reap")),
)


class _FakeSpec:
    """Minimal stand-in for RunSpec: stable key + JSON payload."""

    def __init__(self, i: int) -> None:
        self.i = i

    def cache_key(self) -> str:
        return f"key-{self.i:04d}"

    def payload(self) -> dict:
        return {"i": self.i}

    def __reduce__(self):
        return (_FakeSpec, (self.i,))


class _Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def fresh_store(clock: _Clock) -> ExperimentStore:
    store = ExperimentStore(":memory:", max_attempts=MAX_ATTEMPTS,
                            clock=clock)
    store.add_specs([_FakeSpec(i) for i in range(N_KEYS)])
    return store


def all_keys():
    return [f"key-{i:04d}" for i in range(N_KEYS)]


class _Model:
    """Reference bookkeeping mirrored alongside the real store."""

    def __init__(self) -> None:
        #: key -> owner for leases the *model* believes are live.
        self.live: dict = {}
        self.done: set = set()
        self.failed: set = set()


def check_invariants(store: ExperimentStore, model: _Model) -> None:
    statuses = store.statuses(all_keys())
    # No lost rows: population conserved, statuses legal.
    assert len(statuses) == N_KEYS
    assert set(statuses.values()) <= {"pending", "leased", "done",
                                      "failed"}
    counts = store.counts()
    assert sum(counts.values()) == N_KEYS
    # Terminal stays terminal.
    for key in model.done:
        assert statuses[key] == "done"
    for key in model.failed:
        assert statuses[key] == "failed"
    # Every live model lease maps to a leased row (no silent drops);
    # double-leasing is impossible because `live` is keyed by row.
    for key, owner in model.live.items():
        assert statuses[key] == "leased"
        row = [r for r in store.rows(status="leased") if r.key == key]
        assert row and row[0].lease_owner == owner
    # Attempt accounting can never exceed the quarantine bound.
    for row in store.rows():
        assert 0 <= row.attempts <= MAX_ATTEMPTS


@given(ops=st.lists(OPS, min_size=1, max_size=60))
@settings(max_examples=60, **PROPERTY_SETTINGS)
def test_lease_state_machine_invariants(ops):
    clock = _Clock()
    store = fresh_store(clock)
    model = _Model()
    try:
        for op in ops:
            name = op[0]
            if name == "claim":
                owner = op[1]
                row = store.claim(owner, LEASE)
                if row is not None:
                    # A claim may only hand out a row nobody holds.
                    assert row.key not in model.live
                    assert row.key not in model.done
                    assert row.key not in model.failed
                    model.live[row.key] = owner
            elif name == "heartbeat":
                owner, i = op[1], op[2]
                key = f"key-{i:04d}"
                ok = store.heartbeat(key, owner, LEASE)
                # Only the live holder can extend the lease.
                assert ok == (model.live.get(key) == owner)
            elif name == "complete":
                owner, i = op[1], op[2]
                key = f"key-{i:04d}"
                ok = store.complete(key, owner, {"result": i})
                assert ok == (model.live.get(key) == owner)
                if ok:
                    del model.live[key]
                    model.done.add(key)
            elif name == "fail":
                owner, i = op[1], op[2]
                key = f"key-{i:04d}"
                status = store.fail(key, owner, f"boom {i}")
                if model.live.get(key) == owner:
                    assert status in ("pending", "failed")
                    del model.live[key]
                    if status == "failed":
                        model.failed.add(key)
                else:
                    assert status == "lost"
            elif name == "release":
                owner, i = op[1], op[2]
                key = f"key-{i:04d}"
                ok = store.release(key, owner)
                assert ok == (model.live.get(key) == owner)
                if ok:
                    del model.live[key]
            elif name == "advance":
                clock.t += op[1]
            elif name == "reap":
                reclaimed = store.reap()
                for key in reclaimed:
                    # Reaped rows were leased and past deadline.
                    assert key in model.live
                    del model.live[key]
                # Reap may also quarantine expired max-attempt rows.
                statuses = store.statuses(all_keys())
                for key in list(model.live):
                    if statuses[key] == "failed":
                        del model.live[key]
                        model.failed.add(key)
                for key, status in statuses.items():
                    if status == "failed":
                        model.failed.add(key)
            check_invariants(store, model)

        # Liveness: a well-behaved pass always finishes the sweep.
        clock.t += LEASE + 1.0
        store.reap()
        while True:
            row = store.claim("finisher", LEASE)
            if row is None:
                break
            store.complete(row.key, "finisher", {"final": True})
        statuses = store.statuses(all_keys())
        assert set(statuses.values()) <= {"done", "failed"}
        # Done results are readable; failed rows carry their error.
        for key, status in statuses.items():
            if status == "done":
                assert store.get_result(key) is not None
            else:
                assert store.get_error(key)
    finally:
        store.close()


@given(seed=st.integers(0, 2**16))
@settings(max_examples=25, **PROPERTY_SETTINGS)
def test_competing_claims_partition_the_rows(seed):
    """However many owners race, claims partition pending rows: each
    row is handed out once per lease generation, never twice."""
    import random

    rng = random.Random(seed)
    clock = _Clock()
    store = fresh_store(clock)
    try:
        held = {}
        while True:
            owner = rng.choice(OWNERS)
            row = store.claim(owner, LEASE)
            if row is None:
                break
            assert row.key not in held, "double-lease"
            held[row.key] = owner
        assert len(held) == N_KEYS
        assert store.counts()["leased"] == N_KEYS
    finally:
        store.close()
