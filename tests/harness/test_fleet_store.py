"""Store-backed telemetry: exactly-once shipping + worker lifecycle.

The fleet contract on top of PR 6's lease machinery:

- every completed cell ships **exactly one** telemetry row, written in
  the same fenced transaction as the ``done`` flip — losers of a lease
  race (including SIGKILLed-and-reclaimed workers) ship nothing;
- ``worker_status`` tracks each owner through
  running → idle → stopped/dead with lifetime counters for leases,
  reclaims, and quarantines;
- shipping is on by default for store drains and fully removable
  (``FleetTelemetry(enabled=False)`` leaves zero telemetry rows and
  bare pre-fleet results).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time

from repro.cluster.topology import ClusterSpec
from repro.harness.db import ExperimentStore, drain, run_claimed
from repro.harness.parallel import ExecutionContext, RunSpec
from repro.obs.fleet import FleetTelemetry


def tiny_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


def grid_specs():
    return [RunSpec.build(app, sched, tiny_spec(), sched_seed=s,
                          scale="test")
            for app in ("uts",)
            for sched in ("DistWS", "RandomWS")
            for s in (1, 2)]


def snapshot_bytes(results) -> bytes:
    return json.dumps([json.dumps(r.stats.snapshot(), sort_keys=True)
                       for r in results]).encode()


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTelemetryShipping:
    def test_one_row_per_done_cell(self, tmp_path):
        specs = grid_specs()
        store = ExperimentStore(str(tmp_path / "s.db"))
        store.add_specs(specs)
        drain(store, owner="h:1:a", heartbeat_seconds=0.5)
        assert store.counts()["done"] == len(specs)
        tel = store.telemetry_rows()
        assert len(tel) == len(specs)
        assert {t.key for t in tel} == {s.cache_key() for s in specs}
        assert all(t.attempt == 1 and t.wall_seconds > 0 for t in tel)
        store.close()

    def test_stored_results_byte_identical_to_serial(self, tmp_path):
        specs = grid_specs()
        serial = ExecutionContext().run_specs(specs)
        store = ExperimentStore(str(tmp_path / "s.db"))
        store.add_specs(specs)
        drain(store, owner="h:1:a", heartbeat_seconds=0.5)
        stored = [store.get_result(s.cache_key()) for s in specs]
        assert snapshot_bytes(stored) == snapshot_bytes(serial)
        assert all("obs" not in r.stats.snapshot() for r in stored)
        store.close()

    def test_disabled_fleet_ships_nothing(self, tmp_path):
        specs = grid_specs()[:2]
        store = ExperimentStore(str(tmp_path / "s.db"))
        store.add_specs(specs)
        drain(store, owner="h:1:a", heartbeat_seconds=0.5,
              fleet=FleetTelemetry(enabled=False))
        assert store.counts()["done"] == len(specs)
        assert store.telemetry_rows() == []
        store.close()

    def test_keys_filter(self, tmp_path):
        specs = grid_specs()
        store = ExperimentStore(str(tmp_path / "s.db"))
        store.add_specs(specs)
        drain(store, owner="h:1:a", heartbeat_seconds=0.5)
        want = [specs[0].cache_key(), specs[2].cache_key()]
        assert {t.key for t in store.telemetry_rows(keys=want)} \
            == set(want)
        assert store.telemetry_rows(keys=[]) == []
        store.close()

    def test_failed_cells_ship_no_telemetry(self, tmp_path):
        bad = RunSpec.build("uts", "DistWS", tiny_spec(), sched_seed=1,
                            scale="test",
                            app_overrides={"bogus_option": 1})
        store = ExperimentStore(str(tmp_path / "s.db"), max_attempts=1)
        store.add_specs([bad])
        drain(store, owner="h:1:a", heartbeat_seconds=0.5)
        assert store.counts()["failed"] == 1
        assert store.telemetry_rows() == []
        store.close()


class TestFencedTelemetry:
    def test_reclaimed_workers_telemetry_discarded(self, tmp_path):
        """Loser of a lease race writes neither result nor telemetry."""
        clock = FakeClock()
        store = ExperimentStore(str(tmp_path / "s.db"), clock=clock)
        spec = grid_specs()[0]
        store.add_specs([spec])

        slow = store.claim("h:1:slow", lease_seconds=1.0)
        clock.advance(5.0)  # slow's lease expires un-heartbeaten
        assert store.reap() == [slow.key]
        fast = store.claim("h:2:fast", lease_seconds=60.0)
        assert fast is not None

        from repro.obs.fleet import observe_run
        result, tel_fast, _ = observe_run(
            spec, fast.key, "h:2:fast", fast.attempt, FleetTelemetry())
        assert store.complete(fast.key, "h:2:fast", result,
                              telemetry=tel_fast)

        # The zombie finishes late: fenced out entirely.
        result2, tel_slow, _ = observe_run(
            spec, slow.key, "h:1:slow", slow.attempt, FleetTelemetry())
        assert not store.complete(slow.key, "h:1:slow", result2,
                                  telemetry=tel_slow)

        tel = store.telemetry_rows()
        assert len(tel) == 1
        assert tel[0].owner == "h:2:fast" and tel[0].attempt == 2
        store.close()


class TestWorkerLifecycle:
    def test_claim_complete_retire_states(self, tmp_path):
        clock = FakeClock()
        store = ExperimentStore(str(tmp_path / "s.db"), clock=clock)
        store.add_specs(grid_specs()[:2])

        row = store.claim("h:1:a", lease_seconds=60.0)
        (w,) = store.worker_rows()
        assert w.state == "running" and w.current_key == row.key
        assert w.host == "h" and w.pid == 1 and w.leases == 1

        assert run_claimed(store, row, "h:1:a", heartbeat_seconds=5.0,
                           lease_seconds=60.0, fleet=FleetTelemetry())
        (w,) = store.worker_rows()
        assert w.state == "idle" and w.current_key is None
        assert w.cells_done == 1

        store.retire("h:1:a")
        (w,) = store.worker_rows()
        assert w.state == "stopped"
        store.close()

    def test_reap_marks_owner_dead_and_counts_reclaim(self, tmp_path):
        clock = FakeClock()
        store = ExperimentStore(str(tmp_path / "s.db"), clock=clock)
        store.add_specs(grid_specs()[:1])
        store.claim("h:1:dead", lease_seconds=1.0)
        clock.advance(5.0)
        assert len(store.reap()) == 1
        (w,) = store.worker_rows()
        assert w.state == "dead"
        assert w.heartbeat_misses == 1 and w.reclaims == 1
        # A zombie's late retire must not resurrect it.
        store.retire("h:1:dead")
        (w,) = store.worker_rows()
        assert w.state == "dead"
        store.close()

    def test_reap_past_max_attempts_counts_quarantine(self, tmp_path):
        clock = FakeClock()
        store = ExperimentStore(str(tmp_path / "s.db"), clock=clock,
                                max_attempts=1)
        store.add_specs(grid_specs()[:1])
        store.claim("h:1:dead", lease_seconds=1.0)
        clock.advance(5.0)
        store.reap()
        (w,) = store.worker_rows()
        assert w.quarantines == 1 and w.reclaims == 0
        assert store.counts()["failed"] == 1
        store.close()

    def test_release_returns_worker_to_stopped(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s.db"))
        store.add_specs(grid_specs()[:1])
        row = store.claim("h:1:a", lease_seconds=60.0)
        assert store.release(row.key, "h:1:a")
        (w,) = store.worker_rows()
        assert w.state == "stopped" and w.leases == 0
        store.close()

    def test_drain_retires_its_owner(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s.db"))
        store.add_specs(grid_specs()[:1])
        drain(store, owner="h:1:a", heartbeat_seconds=0.5)
        (w,) = store.worker_rows()
        assert w.state == "stopped" and w.cells_done == 1
        store.close()


def _drain_until_killed(path: str) -> None:
    store = ExperimentStore(path)
    drain(store, heartbeat_seconds=0.1, lease_seconds=0.6,
          poll_seconds=0.05)


def test_sigkill_restart_keeps_telemetry_exactly_once(tmp_path):
    """A worker SIGKILLed mid-sweep and a resumed drain leave exactly
    one telemetry row per done cell — the reclaimed attempt's shipment
    rides the fenced complete, so nothing doubles up."""
    specs = grid_specs()
    path = str(tmp_path / "s.db")
    store = ExperimentStore(path)
    store.add_specs(specs)

    victim = mp.Process(target=_drain_until_killed, args=(path,))
    victim.start()
    deadline = time.time() + 120
    while time.time() < deadline:
        counts = store.counts()
        if counts["done"] >= 1:
            break
        time.sleep(0.02)
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=30)
    assert victim.exitcode == -signal.SIGKILL

    time.sleep(0.7)  # let any orphaned lease expire
    drain(store, owner="h:9:resume", heartbeat_seconds=0.1,
          lease_seconds=1.0)

    counts = store.counts()
    assert counts["done"] == len(specs)
    tel = store.telemetry_rows()
    assert len(tel) == len(specs)  # exactly one row per cell
    assert {t.key for t in tel} == {s.cache_key() for s in specs}
    # Each telemetry row's attempt matches the row that won the cell.
    attempts = {r.key: r.attempts for r in store.rows()}
    assert all(t.attempt == attempts[t.key] for t in tel)
    store.close()
