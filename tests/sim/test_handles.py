"""Handle lifecycle and cross-kernel equivalence for the flat kernel.

The struct-of-arrays kernel keys every schedulable entity — process
resumes, events, park hops, backoff probes, kernel-resident steal scans —
by a small-integer handle recycled through a free-list.  These tests pin
the lifecycle invariants:

- free-list exhaustion grows every column geometrically (never a cap);
- a finished process's handle is recycled LIFO, but a *dirty* handle
  (an interrupt left a stale armed entry in the heap) is retired forever
  — a stale pop must never fire a handle's new owner;
- arbitrary arm/cancel/fire interleavings (hypothesis-driven) produce
  the same timeline, causes, and ``events_processed`` accounting as the
  object kernel in :mod:`repro.sim.engine_object`;
- full simulations agree between kernels byte for byte, *including*
  ``events_processed`` — the flat kernel's batched same-cycle dispatch
  counts every dispatched entry exactly as the one-pop-per-iteration
  legacy loop does.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import engine_object
from repro.sim.engine import (FlatEnvironment, FlatParkRecord, Interrupt,
                              _INITIAL_CAPACITY)
from repro.sim import engine as flat_engine

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))


# -- free-list growth --------------------------------------------------------

def test_free_list_exhaustion_grows_geometrically():
    env = FlatEnvironment()
    assert env._cap == _INITIAL_CAPACITY

    def sleeper():
        yield env.sleep(1.0)

    procs = [env.process(sleeper()) for _ in range(3 * _INITIAL_CAPACITY)]
    # 192 handles force two doublings: 64 -> 128 -> 256.
    assert env._cap == 4 * _INITIAL_CAPACITY
    for col in (env._kind, env._pstate, env._pcause, env._arm, env._obj):
        assert len(col) == env._cap
    env.run()
    assert all(p.triggered for p in procs)
    # Every handle returned: no leak, no double-free.
    assert len(env._free) == env._cap
    assert sorted(env._free) == list(range(env._cap))


def test_growth_keeps_armed_entries_valid():
    """Entries armed before a growth fire correctly after it."""
    env = FlatEnvironment()
    fired = []

    def early():
        yield env.sleep(5.0)
        fired.append(env.now)

    env.process(early())

    def burst():
        yield env.sleep(1.0)

    for _ in range(2 * _INITIAL_CAPACITY):  # force _grow() mid-flight
        env.process(burst())
    env.run()
    assert fired == [5.0]


# -- handle recycling --------------------------------------------------------

def test_finished_process_handle_recycled_lifo():
    env = FlatEnvironment()

    def quick():
        yield env.sleep(1.0)

    p1 = env.process(quick())
    h1 = p1._h
    env.run()
    p2 = env.process(quick())
    assert p2._h == h1
    env.run()
    assert p2.triggered


def test_stale_entry_never_fires_old_or_new_owner():
    """An interrupt strands an armed sleep entry; it must pop as a no-op.

    The interrupted process's handle is *dirty*: recycling it could route
    the stale pop at t=100 to an unrelated new owner, so it is retired
    (cleared, never returned to the free-list).
    """
    env = FlatEnvironment()
    log = []

    def victim_body():
        try:
            yield env.sleep(100.0)
            log.append("old-owner-resumed")  # must never happen
        except Interrupt:
            log.append("interrupted")

    victim = env.process(victim_body())

    def script():
        yield env.timeout(10.0)
        victim.interrupt("test")

    env.process(script())
    env.run()
    assert log == ["interrupted"]
    assert victim._dirty
    assert victim._h not in env._free
    # The stale entry drained as a no-op and advanced the clock.
    assert env.now == 100.0
    resumed = []

    def fresh():
        yield env.sleep(1.0)
        resumed.append(env.now)

    p2 = env.process(fresh())
    assert p2._h != victim._h
    env.run()
    assert resumed == [101.0]
    assert log == ["interrupted"]


def test_clean_interrupt_of_parked_process_recycles_handle():
    """A park cancel disarms in place: the handle stays clean."""
    env = FlatEnvironment()

    def parker():
        proc = env._current
        park = FlatParkRecord(env, proc)
        try:
            park.begin(50.0, False)
            yield park
        except Interrupt:
            return

    p = env.process(parker())

    def script():
        yield env.timeout(5.0)
        p.interrupt("shutdown")

    env.process(script())
    env.run()
    assert p.triggered
    assert not p._dirty
    assert p._h in env._free


# -- hypothesis: interleavings match the object kernel -----------------------

def _cause_label(mod, cause):
    for name in ("CAUSE_DONE", "CAUSE_WORK", "CAUSE_TIMEOUT", "CAUSE_BOARD"):
        if cause is getattr(mod, name):
            return name
    return repr(cause)


def _park_trace(mod, ops):
    """One parker vs a scripted waker; returns the full wake timeline."""
    env = mod.Environment()
    trace = []
    park_box = []

    def parker():
        proc = env._current if hasattr(env, "_current") else None
        park = mod.ParkRecord(env, proc if proc is not None else env._current)
        park_box.append(park)
        for backoff in (3.0, 5.0, 7.0) * (len(ops) + 1):
            park.begin(backoff, False)
            cause = yield park
            trace.append((env.now, _cause_label(mod, cause)))

    def waker():
        for dt, act in ops:
            yield env.timeout(float(dt))
            park = park_box[0]
            if act == 0:
                park._fire(mod.CAUSE_WORK)
            elif act == 1:
                park._fire(mod.CAUSE_BOARD)
            # act == 2: let the backoff deadline win this window.

    env.process(parker())
    env.process(waker())
    env.run(until=float(sum(dt for dt, _ in ops) + 40))
    return trace, env.events_processed, env.now


@settings(deadline=None, max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 2)),
                min_size=1, max_size=20))
def test_park_interleavings_match_object_kernel(ops):
    """Same wakes, same causes, same event accounting, any interleaving.

    ``dt=0`` steps make wake sources race the backoff deadline at one
    timestamp — exactly the races the arm/seq guards must resolve the
    way the legacy kernel's AnyOf pop order did.
    """
    flat = _park_trace(flat_engine, ops)
    legacy = _park_trace(engine_object, ops)
    assert flat == legacy


def _interrupt_trace(mod, plan):
    """Sleepers interrupted at scripted times; timeline + accounting."""
    env = mod.Environment()
    trace = []

    def sleeper(idx, dur):
        try:
            yield env.timeout(0.0)
            yield env.sleep(float(dur))
            trace.append(("slept", idx, env.now))
        except mod.Interrupt:
            trace.append(("interrupted", idx, env.now))

    procs = [env.process(sleeper(i, dur)) for i, (dur, _) in enumerate(plan)]

    def cutter(i, at):
        yield env.timeout(float(at))
        if procs[i].is_alive:
            procs[i].interrupt("cut")

    for i, (_, cut) in enumerate(plan):
        if cut is not None:
            env.process(cutter(i, cut))
    env.run()
    trace.sort()
    return trace, env.events_processed, env.now


@settings(deadline=None, max_examples=40)
@given(st.lists(
    st.tuples(st.integers(1, 12),
              st.one_of(st.none(), st.integers(0, 12))),
    min_size=1, max_size=12))
def test_sleep_interrupt_interleavings_match_object_kernel(plan):
    """Arm/cancel/fire races on plain sleeps agree across kernels.

    ``cut == dur`` makes the interrupt land exactly when the sleep would
    fire; ``cut > dur`` interrupts a process that already moved on.
    """
    flat = _interrupt_trace(flat_engine, plan)
    legacy = _interrupt_trace(engine_object, plan)
    assert flat == legacy


# -- cross-kernel full-simulation identity (batched-dispatch accounting) -----

_CELL_SNIPPET = """\
import json
from repro.cluster.topology import ClusterSpec
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import _reset_task_ids
from repro.sched import make_scheduler
from repro.apps import make_app
_reset_task_ids()
spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=6)
rt = SimRuntime(spec, make_scheduler({sched!r}), seed=1)
app = make_app({app!r}, scale="test", seed=12345)
stats = app.run(rt, validate=False)
print(json.dumps({{"events_processed": rt.env.events_processed,
                   "snapshot": stats.snapshot()}}, sort_keys=True))
"""


def _run_cell_subprocess(app: str, sched: str, kernel: str) -> str:
    env = dict(os.environ)
    env["REPRO_KERNEL"] = kernel
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    out = subprocess.run(
        [sys.executable, "-c", _CELL_SNIPPET.format(app=app, sched=sched)],
        env=env, capture_output=True, text=True, timeout=300)
    assert out.returncode == 0, out.stderr
    return out.stdout


@pytest.mark.parametrize("app,sched", [
    ("uts", "DistWS"),     # scan + policy tail (shared deque, remote tier)
    ("uts", "X10WS"),      # kernel-resident idle loop (no policy tail)
    ("turing", "X10WS"),   # barrier phases: heavy park/wake churn
])
def test_full_run_identical_across_kernels_including_event_count(app, sched):
    """Snapshots AND ``events_processed`` agree byte for byte.

    The flat kernel's batch drain and collapsed rounds must count every
    logical dispatch — a diverging event count means an entry was
    skipped or double-counted even if the physics happen to match.
    """
    flat = _run_cell_subprocess(app, sched, "flat")
    legacy = _run_cell_subprocess(app, sched, "object")
    assert json.loads(flat)["events_processed"] > 0
    assert flat == legacy
