"""Unit tests for the event primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEvent:
    def test_starts_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_unavailable_while_pending(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_fail_carries_exception(self, env):
        ev = env.event()
        exc = ValueError("boom")
        ev.fail(exc)
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("x")
        assert seen == []  # triggered but not yet processed
        env.run()
        assert seen == ["x"]

    def test_callback_after_processing_rejected(self, env):
        ev = env.event()
        ev.succeed()
        env.run()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_fires_at_due_time(self, env):
        times = []
        ev = env.timeout(25)
        ev.add_callback(lambda e: times.append(env.now))
        env.run()
        assert times == [25.0]

    def test_timeout_is_triggered_but_not_processed_at_birth(self, env):
        ev = env.timeout(10)
        assert ev.triggered      # value pre-set
        assert not ev.processed  # has not *occurred*

    def test_zero_delay_fires_now(self, env):
        ev = env.timeout(0, value="v")
        env.run()
        assert ev.processed
        assert ev.value == "v"


class TestAnyOf:
    def test_empty_rejected(self, env):
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_first_occurrence_wins(self, env):
        slow = env.timeout(100, value="slow")
        fast = env.timeout(10, value="fast")
        combo = env.any_of([slow, fast])
        env.run()
        assert combo.processed
        assert combo.value is fast

    def test_pre_scheduled_timeout_does_not_win_immediately(self, env):
        # Regression: a Timeout is 'triggered' from birth; AnyOf must wait
        # for it to be *processed*.
        gate_ev = env.event()
        guard = env.timeout(1000)
        combo = env.any_of([gate_ev, guard])
        assert not combo.triggered
        gate_ev.succeed("gate")
        env.run(until=combo)
        assert combo.value is gate_ev
        assert env.now == 0.0

    def test_already_processed_child_fires_composite(self, env):
        ev = env.timeout(5)
        env.run()
        combo = env.any_of([ev, env.event()])
        env.run()
        assert combo.processed
        assert combo.value is ev

    def test_failure_propagates(self, env):
        bad = env.event()
        combo = env.any_of([bad, env.event()])
        bad.fail(RuntimeError("x"))
        env.run()
        assert combo.triggered
        assert not combo.ok


class TestAllOf:
    def test_waits_for_all(self, env):
        a = env.timeout(10, value=1)
        b = env.timeout(20, value=2)
        combo = env.all_of([a, b])
        env.run()
        assert combo.processed
        assert env.now == 20.0
        assert combo.value == [1, 2]

    def test_empty_completes_immediately(self, env):
        combo = env.all_of([])
        env.run()
        assert combo.processed
        assert combo.value == []

    def test_failure_fails_composite(self, env):
        a = env.timeout(10)
        bad = env.event()
        combo = env.all_of([a, bad])
        bad.fail(ValueError("nope"))
        env.run()
        assert combo.triggered
        assert not combo.ok
