"""Unit tests for simulated locks, gates, and mailboxes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Gate, Mailbox, SimLock


class TestSimLock:
    def test_uncontended_acquire_is_immediate(self, env):
        lock = SimLock(env)
        trace = []

        def proc():
            yield lock.acquire()
            trace.append(env.now)
            lock.release()

        env.process(proc())
        env.run()
        assert trace == [0.0]
        assert not lock.locked

    def test_fifo_handover(self, env):
        lock = SimLock(env)
        order = []

        def proc(i, hold):
            yield lock.acquire()
            order.append(("got", i, env.now))
            yield env.timeout(hold)
            lock.release()

        for i in range(3):
            env.process(proc(i, hold=10))
        env.run()
        assert order == [("got", 0, 0.0), ("got", 1, 10.0), ("got", 2, 20.0)]

    def test_contention_counted(self, env):
        lock = SimLock(env)

        def proc(hold):
            yield lock.acquire()
            yield env.timeout(hold)
            lock.release()

        env.process(proc(5))
        env.process(proc(5))
        env.run()
        assert lock.total_acquires == 2
        assert lock.contended_acquires == 1

    def test_release_unheld_rejected(self, env):
        lock = SimLock(env)
        with pytest.raises(SimulationError):
            lock.release()

    def test_try_acquire(self, env):
        lock = SimLock(env)
        assert lock.try_acquire()
        assert not lock.try_acquire()
        lock.release()
        assert lock.try_acquire()

    def test_try_acquire_fails_when_waiters_queued(self, env):
        lock = SimLock(env)

        def holder():
            yield lock.acquire()
            yield env.timeout(100)
            lock.release()

        def waiter():
            yield lock.acquire()
            lock.release()

        env.process(holder())
        env.process(waiter())
        env.run(until=50.0)
        # Held, one waiter queued: try_acquire must not jump the queue.
        assert not lock.try_acquire()

    def test_interrupted_waiter_skipped_on_release(self, env):
        """A waiter whose process died must not be handed the lock."""
        lock = SimLock(env)
        got = []

        def holder():
            yield lock.acquire()
            yield env.timeout(100)
            lock.release()

        def waiter(name):
            yield lock.acquire()
            got.append((name, env.now))
            lock.release()

        env.process(holder())
        doomed = env.process(waiter("doomed"))
        env.process(waiter("survivor"))

        def killer():
            yield env.timeout(50)
            doomed.interrupt("crash")

        env.process(killer())
        env.run()
        # Ownership skipped the dead waiter and reached the live one.
        assert got == [("survivor", 100.0)]
        assert not lock.locked

    def test_release_with_only_dead_waiters_unlocks(self, env):
        lock = SimLock(env)
        got = []

        def holder():
            yield lock.acquire()
            yield env.timeout(100)
            lock.release()

        def waiter():
            yield lock.acquire()
            got.append(env.now)
            lock.release()

        env.process(holder())
        doomed = env.process(waiter())

        def killer():
            yield env.timeout(50)
            doomed.interrupt("crash")

        env.process(killer())

        def late_acquirer():
            yield env.timeout(200)
            assert lock.try_acquire()
            lock.release()

        env.process(late_acquirer())
        env.run()
        assert got == []
        assert not lock.locked


class TestGate:
    def test_wait_blocks_until_open(self, env):
        gate = Gate(env)
        times = []

        def proc():
            yield gate.wait()
            times.append(env.now)

        env.process(proc())

        def opener():
            yield env.timeout(33)
            gate.open()

        env.process(opener())
        env.run()
        assert times == [33.0]

    def test_wait_on_open_gate_immediate(self, env):
        gate = Gate(env)
        gate.open()
        ev = gate.wait()
        assert ev.triggered

    def test_open_is_idempotent(self, env):
        gate = Gate(env)
        gate.open()
        gate.open()
        assert gate.is_open


class TestMailbox:
    def test_put_then_try_get(self, env):
        box = Mailbox(env)
        assert box.try_get() is None
        box.put("a")
        box.put("b")
        assert len(box) == 2
        assert box.try_get() == "a"
        assert box.try_get() == "b"
        assert box.try_get() is None

    def test_blocking_get_wakes_on_put(self, env):
        box = Mailbox(env)
        got = []

        def consumer():
            item = yield box.get()
            got.append((env.now, item))

        env.process(consumer())

        def producer():
            yield env.timeout(12)
            box.put("task")

        env.process(producer())
        env.run()
        assert got == [(12.0, "task")]

    def test_get_with_item_ready_is_immediate(self, env):
        box = Mailbox(env)
        box.put("x")
        ev = box.get()
        assert ev.triggered
        assert ev.value == "x"

    def test_fifo_delivery_to_multiple_getters(self, env):
        box = Mailbox(env)
        got = []

        def consumer(i):
            item = yield box.get()
            got.append((i, item))

        env.process(consumer(0))
        env.process(consumer(1))

        def producer():
            yield env.timeout(1)
            box.put("first")
            box.put("second")

        env.process(producer())
        env.run()
        assert got == [(0, "first"), (1, "second")]
