"""Stress and soak tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import Gate, Mailbox, SimLock


class TestManyProcesses:
    def test_thousand_processes_complete(self, env):
        done = []

        def proc(i):
            yield env.timeout(i % 17)
            done.append(i)

        for i in range(1000):
            env.process(proc(i))
        env.run()
        assert len(done) == 1000

    def test_deep_process_chains(self, env):
        """Processes waiting on processes, 200 deep."""
        def leaf():
            yield env.timeout(1)
            return 0

        def chain(depth):
            if depth == 0:
                result = yield env.process(leaf())
            else:
                result = yield env.process(chain(depth - 1))
            return result + 1

        p = env.process(chain(200))
        env.run()
        assert p.value == 201

    def test_lock_convoy(self, env):
        """500 processes through one lock: strict FIFO, full mutual
        exclusion."""
        lock = SimLock(env)
        active = [0]
        peak = [0]
        order = []

        def proc(i):
            yield lock.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            order.append(i)
            yield env.timeout(3)
            active[0] -= 1
            lock.release()

        for i in range(500):
            env.process(proc(i))
        env.run()
        assert peak[0] == 1
        assert order == list(range(500))
        assert env.now == 1500.0

    def test_producer_consumer_pipeline(self, env):
        box_a = Mailbox(env)
        box_b = Mailbox(env)
        sink = []

        def producer():
            for i in range(100):
                yield env.timeout(2)
                box_a.put(i)

        def transformer():
            for _ in range(100):
                item = yield box_a.get()
                yield env.timeout(1)
                box_b.put(item * 2)

        def consumer():
            for _ in range(100):
                item = yield box_b.get()
                sink.append(item)

        env.process(producer())
        env.process(transformer())
        env.process(consumer())
        env.run()
        assert sink == [2 * i for i in range(100)]

    @settings(max_examples=20, deadline=None)
    @given(seeds=st.lists(st.integers(0, 100), min_size=2, max_size=30))
    def test_gate_broadcast_wakes_everyone(self, seeds):
        env = Environment()
        gate = Gate(env)
        woke = []

        def waiter(i, d):
            yield env.timeout(d)
            yield gate.wait()
            woke.append(i)

        for i, d in enumerate(seeds):
            env.process(waiter(i, d))

        def opener():
            yield env.timeout(max(seeds) + 1)
            gate.open()

        env.process(opener())
        env.run()
        assert sorted(woke) == list(range(len(seeds)))
