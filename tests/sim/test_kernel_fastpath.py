"""Differential and bounded-memory guards for the kernel fast path.

``tests/sim/golden_kernel_snapshots.json`` was captured from the tree
*before* the fast-path rewrite (resume records, cancellable parks,
inlined run loop).  Every cell re-runs here on the current tree and the
serialized ``RunStats.snapshot()`` must match byte for byte: the rewrite
is an engine-only change, so simulated physics — makespan, steal counts,
per-place utilization, every RNG draw — must be untouched.

The bounded-memory tests pin down the other half of the contract: the
old kernel leaked one waiter ``Event`` per failed round per worker into
the done gate / place / board waiter lists and the event heap, growing
without bound on idle-heavy runs.  With the reusable park records both
must stay O(workers) no matter how many park/wake rounds elapse.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import make_app
from repro.cluster.topology import ClusterSpec
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import _reset_task_ids
from repro.sched import make_scheduler
from repro.sim.engine import CAUSE_TIMEOUT, CAUSE_WORK, Environment, ParkRecord

GOLDEN = os.path.join(os.path.dirname(__file__),
                      "golden_kernel_snapshots.json")

with open(GOLDEN) as _fh:
    _GOLDEN_CELLS = json.load(_fh)


def _snapshot_bytes(key: str) -> str:
    parts = key.split("|")
    _reset_task_ids()
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler(parts[0]), seed=int(parts[2]))
    if len(parts) > 3:  # faulted cell, e.g. "crash:p2@600000,seed:3"
        FaultInjector(FaultPlan.parse(parts[3])).attach(rt)
    app = make_app(parts[1], scale="test", seed=12345)
    stats = app.run(rt)
    return json.dumps(stats.snapshot(), sort_keys=True, indent=1)


@pytest.mark.parametrize("key", sorted(_GOLDEN_CELLS))
def test_fastpath_matches_pre_rewrite_golden(key):
    expected = json.dumps(_GOLDEN_CELLS[key], sort_keys=True, indent=1)
    assert _snapshot_bytes(key) == expected


# -- bounded memory ---------------------------------------------------------

IDLE_ROUNDS = 10_000


def test_heap_and_gate_bounded_under_idle_churn():
    """Heap entries and gate waiters stay O(workers) over 10k rounds."""
    from repro.sim.resources import Gate

    env = Environment()
    gate = Gate(env)
    n_workers = 4
    peak_heap = 0

    def idler():
        proc = env._current
        park = ParkRecord(env, proc)
        gate.register_park(park)
        for _ in range(IDLE_ROUNDS):
            park.begin(5.0, gate.is_open)
            cause = yield park
            assert cause is CAUSE_TIMEOUT

    def driver():
        nonlocal peak_heap
        for _ in range(IDLE_ROUNDS):
            yield env.timeout(5.0)
            peak_heap = max(peak_heap, len(env._queue))

    def boot():
        # env._current is only set inside a running process, so the
        # idlers grab their own proc handles from there.
        for _ in range(n_workers):
            env.process(idler())
        yield env.timeout(0)

    env.process(boot())
    env.process(driver())
    env.run()
    # Each parked worker owns at most a wake hop + one deadline probe in
    # the heap; the driver adds one timeout.  Nothing accumulates.
    assert peak_heap <= 3 * n_workers + 2
    assert len(gate._waiters) == n_workers
    assert len(env._queue) == 0


def test_place_waiter_list_bounded_under_idle_churn():
    """``Place._work_waiters`` compaction keeps the list O(workers)."""
    env = Environment()
    spec = ClusterSpec(n_places=2, workers_per_place=4, max_threads=8)
    from repro.runtime.place import Place

    place = Place(env, 0, spec)
    n_workers = 4
    peak = 0

    def idler():
        proc = env._current
        park = ParkRecord(env, proc)
        for _ in range(IDLE_ROUNDS // 10):
            park.begin(50.0, False)
            place.add_park_waiter(park)
            cause = yield park
            assert cause is CAUSE_WORK

    def waker():
        nonlocal peak
        for _ in range(IDLE_ROUNDS // 10):
            yield env.timeout(1.0)
            peak = max(peak, len(place._work_waiters))
            place.notify_work()

    def boot():
        for _ in range(n_workers):
            env.process(idler())
        yield env.timeout(0)

    env.process(boot())
    env.process(waker())
    env.run()
    # The compaction threshold starts at 16 and tracks the live count,
    # so the list never grows past a small multiple of the worker count.
    assert peak <= 2 * n_workers + 16


def test_board_waiter_list_bounded_under_idle_churn():
    """``StatusBoard._waiters`` stays bounded across advertise churn."""
    from repro.runtime.status import StatusBoard

    env = Environment()
    board = StatusBoard(env)
    n_workers = 4
    peak = 0

    def idler():
        proc = env._current
        park = ParkRecord(env, proc)
        for _ in range(IDLE_ROUNDS // 10):
            park.begin(50.0, False)
            board.add_park_waiter(park)
            yield park

    def advertiser():
        nonlocal peak
        for i in range(IDLE_ROUNDS // 10):
            yield env.timeout(1.0)
            peak = max(peak, len(board._waiters))
            board.advertise(i % 2)
            board.retract(i % 2)

    def boot():
        for _ in range(n_workers):
            env.process(idler())
        yield env.timeout(0)

    env.process(boot())
    env.process(advertiser())
    env.run()
    assert peak <= 2 * n_workers + 16


# -- satellite regressions --------------------------------------------------

def test_mailbox_put_skips_abandoned_getters():
    """A crash while blocked on ``get`` must not swallow later items.

    Regression: ``Mailbox.put`` used to hand the item to the oldest
    getter unconditionally; if that getter's process had been
    interrupted (its place crashed mid-``get``), the item was delivered
    to a dead process and silently lost.
    """
    from repro.sim.engine import Interrupt
    from repro.sim.resources import Mailbox

    env = Environment()
    box = Mailbox(env)
    received = []

    def doomed():
        try:
            yield box.get()
            raise AssertionError("doomed getter should never receive")
        except Interrupt:
            return  # crashed while blocked on get

    def survivor():
        item = yield box.get()
        received.append(item)

    doomed_proc = env.process(doomed())

    def script():
        yield env.timeout(1)
        doomed_proc.interrupt("place-crash")
        yield env.timeout(1)
        env.process(survivor())
        yield env.timeout(1)
        box.put("task-42")

    env.process(script())
    env.run()
    assert received == ["task-42"]


def test_lock_queue_length_excludes_abandoned_waiters():
    """Crashed waiters no longer inflate ``SimLock.queue_length``."""
    from repro.sim.engine import Interrupt
    from repro.sim.resources import SimLock

    env = Environment()
    lock = SimLock(env)

    def holder():
        yield lock.acquire()
        yield env.timeout(100)
        lock.release()

    def doomed():
        try:
            yield lock.acquire()
            raise AssertionError("doomed waiter should never acquire")
        except Interrupt:
            return

    def live_waiter():
        yield lock.acquire()
        lock.release()

    env.process(holder())
    doomed_proc = env.process(doomed())
    env.process(live_waiter())

    def script():
        yield env.timeout(10)
        assert lock.queue_length == 2
        doomed_proc.interrupt("place-crash")
        yield env.timeout(0)
        # The abandoned waiter is still queued internally but is no
        # longer demand: release() will skip it.
        assert lock.queue_length == 1

    env.process(script())
    env.run()
    assert not lock.locked
