"""Unit and property tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Environment, Interrupt


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(5.0).now == 5.0

    def test_step_on_empty_queue_rejected(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_past_time_rejected(self):
        env = Environment(10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_run_until_time_stops_clock_there(self, env):
        env.timeout(100)
        env.run(until=60.0)
        assert env.now == 60.0

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7.0


class TestProcess:
    def test_process_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_sequential_timeouts(self, env):
        trace = []

        def proc():
            yield env.timeout(5)
            trace.append(env.now)
            yield env.timeout(5)
            trace.append(env.now)

        env.process(proc())
        env.run()
        assert trace == [5.0, 10.0]

    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "result"

        p = env.process(proc())
        env.run()
        assert p.processed
        assert p.value == "result"

    def test_process_waits_on_process(self, env):
        def child():
            yield env.timeout(30)
            return 99

        def parent():
            result = yield env.process(child())
            return result + 1

        p = env.process(parent())
        env.run()
        assert p.value == 100
        assert env.now == 30.0

    def test_exception_fails_process_event(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("inside")

        p = env.process(proc())
        env.run()
        assert p.triggered
        assert not p.ok
        assert isinstance(p.value, RuntimeError)

    def test_failed_event_raises_inside_process(self, env):
        bad = env.event()
        caught = []

        def proc():
            try:
                yield bad
            except ValueError as exc:
                caught.append(str(exc))

        env.process(proc())
        bad.fail(ValueError("delivered"))
        env.run()
        assert caught == ["delivered"]

    def test_yielding_non_event_fails_process(self, env):
        def proc():
            yield 42  # type: ignore[misc]

        p = env.process(proc())
        env.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_keyboard_interrupt_aborts_the_run(self, env):
        """A host-level interrupt (ctrl-C / SIGTERM handler) raised
        mid-step must unwind out of `env.run`, not be recorded as a
        simulated process death."""
        import pytest

        def proc():
            yield env.timeout(1)
            raise KeyboardInterrupt

        p = env.process(proc())
        with pytest.raises(KeyboardInterrupt):
            env.run()
        assert not p.triggered  # not converted into a failed event

    def test_keyboard_interrupt_via_throw_aborts_the_run(self, env):
        import pytest

        bad = env.event()

        def proc():
            try:
                yield bad
            except ValueError:
                raise KeyboardInterrupt

        env.process(proc())
        bad.fail(ValueError("delivered"))
        with pytest.raises(KeyboardInterrupt):
            env.run()

    def test_interrupt_wakes_process(self, env):
        trace = []

        def sleeper():
            try:
                yield env.timeout(1000)
            except Interrupt as i:
                trace.append((env.now, i.cause))

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(10)
            p.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert trace == [(10.0, "wake up")]

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_run_until_event(self, env):
        def proc():
            yield env.timeout(42)
            return "done"

        p = env.process(proc())
        value = env.run(until=p)
        assert value == "done"
        assert env.now == 42.0

    def test_deadlock_detected(self, env):
        never = env.event()

        def waiter():
            yield never

        env.process(waiter())
        target = env.event()
        with pytest.raises(DeadlockError):
            env.run(until=target)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(st.integers(min_value=0, max_value=100),
                           min_size=1, max_size=20))
    def test_same_delays_same_trace(self, delays):
        def trace_of():
            env = Environment()
            trace = []

            def proc(i, d):
                yield env.timeout(d)
                trace.append((env.now, i))

            for i, d in enumerate(delays):
                env.process(proc(i, d))
            env.run()
            return trace

        assert trace_of() == trace_of()

    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(st.integers(min_value=0, max_value=100),
                           min_size=1, max_size=20))
    def test_events_processed_in_time_order(self, delays):
        env = Environment()
        trace = []

        def proc(d):
            yield env.timeout(d)
            trace.append(env.now)

        for d in delays:
            env.process(proc(d))
        env.run()
        assert trace == sorted(trace)

    def test_fifo_tie_break_at_equal_times(self, env):
        order = []

        def proc(i):
            yield env.timeout(10)
            order.append(i)

        for i in range(5):
            env.process(proc(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]
