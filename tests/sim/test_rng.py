"""Unit and property tests for deterministic RNG streams."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_distinct_paths_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_fits_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "n") < 2**63

    @settings(max_examples=50, deadline=None)
    @given(root=st.integers(min_value=0, max_value=2**31),
           names=st.lists(st.text(max_size=8), max_size=4))
    def test_stable_under_repetition(self, root, names):
        assert derive_seed(root, *names) == derive_seed(root, *names)


class TestRngStreams:
    def test_same_path_same_generator_object(self):
        rngs = RngStreams(3)
        assert rngs.stream("a", 1) is rngs.stream("a", 1)

    def test_different_paths_independent(self):
        rngs = RngStreams(3)
        a = rngs.stream("a").integers(0, 1_000_000, size=10)
        b = rngs.stream("b").integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_reproducible_across_instances(self):
        a = RngStreams(9).stream("w", 2).integers(0, 1000, size=20)
        b = RngStreams(9).stream("w", 2).integers(0, 1000, size=20)
        assert np.array_equal(a, b)

    def test_consuming_one_stream_leaves_others_alone(self):
        rngs1 = RngStreams(5)
        rngs1.stream("noise").integers(0, 10, size=100)  # consume
        x1 = rngs1.stream("signal").integers(0, 1000, size=10)

        rngs2 = RngStreams(5)
        x2 = rngs2.stream("signal").integers(0, 1000, size=10)
        assert np.array_equal(x1, x2)

    def test_fresh_is_uncached(self):
        rngs = RngStreams(5)
        a = rngs.fresh("f").integers(0, 1000, size=5)
        b = rngs.fresh("f").integers(0, 1000, size=5)
        assert np.array_equal(a, b)  # same seed, fresh state each time
