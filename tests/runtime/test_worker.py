"""Integration tests for worker execution behaviour."""

from __future__ import annotations

import pytest

from repro.apgas import Apgas
from repro.cluster.topology import ClusterSpec
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import FLEXIBLE
from repro.sched import DistWS, DistWSNS, X10WS


def run_program(spec, sched, program, seed=1):
    rt = SimRuntime(spec, sched, seed=seed)
    stats = rt.run(program)
    return rt, stats


class TestExecutionCosts:
    def test_children_available_during_parent_execution(self, small_spec):
        """Help-first: children run while the parent is still 'computing'."""
        events = []

        def program(rt):
            ap = Apgas(rt)

            def child(ctx):
                events.append(("child", ctx.now))

            def parent(ctx):
                ctx.spawn(child, work=1_000, label="child")

            ap.async_at(0, parent, work=10_000_000, label="parent")

        _, stats = run_program(small_spec, DistWS(), program)
        assert len(events) == 1
        # Child completed well before the parent's 10M-cycle work ended.
        assert events[0][1] < 10_000_000

    def test_memory_touches_extend_duration(self, single_spec):
        def make(reads):
            def program(rt):
                ap = Apgas(rt)
                blocks = [ap.alloc(0, 64, f"b{i}") for i in range(reads)]
                # 200 distinct blocks on a 64-entry cache: every touch a miss.
                ap.async_at(0, None, work=1_000, reads=blocks, label="t")
            return program

        _, cold = run_program(single_spec, DistWS(), make(200))
        _, none = run_program(single_spec, DistWS(), make(0))
        assert cold.makespan_cycles > none.makespan_cycles
        assert cold.cache_misses >= 200

    def test_encapsulated_blocks_migrate_on_remote_execution(self, small_spec):
        def program(rt):
            ap = Apgas(rt)
            block = ap.alloc(0, 8192, "payload")
            for i in range(16):
                ap.async_at(0, None, work=2_000_000, reads=[block],
                            flexible=True, encapsulates=True, label="t")

        rt, stats = run_program(small_spec, DistWS(), program)
        assert stats.tasks_executed_remote > 0
        assert stats.block_migrations > 0
        # After migration, touches are local: no fine-grained remote refs.
        assert stats.remote_references == 0

    def test_non_encapsulating_remote_task_pays_remote_references(
            self, small_spec):
        """X10 `at` semantics (§IX): a stolen non-encapsulating task's
        data accesses are fine-grained remote references — no persistent
        replica is ever created."""
        def program(rt):
            ap = Apgas(rt)
            self_block = ap.alloc(0, 8192, "payload")
            program.block = self_block
            for i in range(16):
                ap.async_at(0, None, work=2_000_000, reads=[self_block],
                            flexible=True, encapsulates=False, label="t")

        rt, stats = run_program(small_spec, DistWS(), program)
        assert stats.tasks_executed_remote > 0
        assert stats.block_migrations == 0
        assert stats.remote_references > 0
        # No replica exists anywhere but home.
        assert rt.memory.replicas(program.block) == {0}

    def test_non_encapsulating_remote_writes_copied_home(self, small_spec):
        from repro.cluster.network import MSG_RESULT_COPYBACK

        def program(rt):
            ap = Apgas(rt)
            blocks = [ap.alloc(0, 1024, f"b{i}") for i in range(16)]
            for i in range(16):
                ap.async_at(0, None, work=2_000_000, writes=[blocks[i]],
                            flexible=True, encapsulates=False, label="t")

        rt, stats = run_program(small_spec, DistWS(), program)
        assert stats.tasks_executed_remote > 0
        assert stats.messages_by_kind[MSG_RESULT_COPYBACK] > 0

    def test_third_place_block_pays_remote_reference(self, small_spec):
        """Touching a block homed at a third place (neither home nor exec)
        is a fine-grained remote reference."""
        def program(rt):
            ap = Apgas(rt)
            far = ap.alloc(3, 4096, "far")
            ap.async_at(0, None, work=1_000_000, reads=[far], label="t")

        rt, stats = run_program(small_spec, DistWS(), program)
        assert stats.remote_references == 1

    def test_copy_back_messages_counted(self, small_spec):
        from repro.cluster.network import MSG_RESULT_COPYBACK

        def program(rt):
            ap = Apgas(rt)
            blocks = [ap.alloc(0, 1024, f"cell{i}") for i in range(16)]
            for i in range(16):
                ap.async_at(0, None, work=2_000_000, reads=[blocks[i]],
                            flexible=True, copy_back=[blocks[i]], label="t")

        rt, stats = run_program(small_spec, DistWS(), program)
        assert stats.tasks_executed_remote > 0
        assert stats.messages_by_kind[MSG_RESULT_COPYBACK] > 0


class TestBusySplit:
    def test_task_and_overhead_cycles_accumulate(self, small_spec):
        def program(rt):
            ap = Apgas(rt)
            for i in range(24):
                ap.async_at(0, None, work=1_000_000, flexible=True,
                            label="t")

        rt, stats = run_program(small_spec, DistWS(), program)
        task_total = sum(w.task_cycles for p in rt.places for w in p.workers)
        ovh_total = sum(w.overhead_cycles for p in rt.places
                        for w in p.workers)
        assert task_total >= 24 * 1_000_000
        assert ovh_total > 0

    def test_tasks_run_counter(self, single_spec):
        def program(rt):
            ap = Apgas(rt)
            for i in range(6):
                ap.async_at(0, None, work=1000, label="t")

        rt, stats = run_program(single_spec, DistWS(), program)
        total = sum(w.tasks_run for p in rt.places for w in p.workers)
        assert total == 6
