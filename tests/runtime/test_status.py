"""Tests for the cluster-wide load-status board (§VI-B objects)."""

from __future__ import annotations

from repro.runtime.status import StatusBoard
from repro.sim.engine import Environment


class TestStatusBoard:
    def test_advertise_and_retract(self, env):
        board = StatusBoard(env)
        assert not board.has_surplus(3)
        board.advertise(3)
        assert board.has_surplus(3)
        board.retract(3)
        assert not board.has_surplus(3)
        board.retract(3)  # idempotent

    def test_surplus_places_sorted_and_excluding(self, env):
        board = StatusBoard(env)
        for p in (5, 1, 3):
            board.advertise(p)
        assert board.surplus_places(exclude=3) == [1, 5]
        assert board.surplus_places(exclude=9) == [1, 3, 5]

    def test_surplus_event_wakes_on_advertise(self, env):
        board = StatusBoard(env)
        ev = board.surplus_event()
        assert not ev.triggered
        board.advertise(2)
        assert ev.triggered
        assert ev.value == 2

    def test_re_advertising_does_not_double_fire(self, env):
        board = StatusBoard(env)
        board.advertise(1)
        ev = board.surplus_event()
        board.advertise(1)  # already advertised: no wake
        assert not ev.triggered
        board.retract(1)
        board.advertise(1)  # fresh advertisement wakes
        assert ev.triggered

    def test_already_triggered_waiters_skipped(self, env):
        board = StatusBoard(env)
        ev = board.surplus_event()
        ev.succeed("woke some other way")
        board.advertise(0)  # must not double-succeed
        assert ev.value == "woke some other way"


class TestBoardIntegration:
    def test_distws_only_probes_advertising_places(self):
        """With the board, a starving cluster sends no steal requests."""
        from repro import ClusterSpec, DistWS, SimRuntime
        from repro.apgas import Apgas

        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, DistWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)
            # Sensitive-only workload at place 0: nothing is stealable,
            # so no place ever advertises and no requests are sent.
            for i in range(12):
                ap.async_at(0, None, work=1_000_000, flexible=False,
                            label="t")

        stats = rt.run(program)
        assert stats.steals.remote_attempts == 0
        assert stats.messages == 0

    def test_blind_random_does_probe(self):
        from repro import ClusterSpec, RandomWS, SimRuntime
        from repro.apgas import Apgas

        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, RandomWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)
            for i in range(12):
                ap.async_at(0, None, work=1_000_000, flexible=False,
                            label="t")

        stats = rt.run(program)
        # Blind random stealing pays failed round trips.
        assert stats.steals.remote_attempts > 0
