"""Failure-injection tests: runtime errors must surface, not hang."""

from __future__ import annotations

import pytest

from repro import ClusterSpec, DistWS, SimRuntime
from repro.apgas import Apgas
from repro.errors import SimulationError


def small_spec():
    return ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)


class TestTaskBodyFailures:
    def test_body_exception_aborts_run(self):
        rt = SimRuntime(small_spec(), DistWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)

            def bad(ctx):
                raise ValueError("boom in task body")

            ap.async_at(0, bad, work=1000, label="bad")

        with pytest.raises(SimulationError) as err:
            rt.run(program)
        assert isinstance(err.value.__cause__, ValueError)

    def test_bad_spawn_arguments_abort_run(self):
        rt = SimRuntime(small_spec(), DistWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)

            def parent(ctx):
                # Both locality forms at once is a usage error.
                from repro.runtime.task import FLEXIBLE
                ctx.spawn(None, locality=FLEXIBLE, flexible=True,
                          work=10, label="child")

            ap.async_at(0, parent, work=1000, label="parent")

        with pytest.raises(SimulationError):
            rt.run(program)

    def test_failure_in_later_task_still_surfaces(self):
        rt = SimRuntime(small_spec(), DistWS(), seed=0)
        ran = []

        def program(rt):
            ap = Apgas(rt)
            for i in range(6):
                def ok(ctx, i=i):
                    ran.append(i)
                ap.async_at(i % 2, ok, work=100_000, label="ok")

            def bad(ctx):
                raise RuntimeError("late failure")

            ap.async_at(1, bad, work=500_000, label="bad")

        with pytest.raises(SimulationError):
            rt.run(program)
        assert ran  # earlier tasks did run


class TestNonTermination:
    def test_guard_cycle_budget_enforced(self):
        rt = SimRuntime(small_spec(), DistWS(), seed=0)

        def program(rt):
            ap = Apgas(rt)
            ap.async_at(0, None, work=1e9, label="long")

        with pytest.raises(SimulationError):
            rt.run(program, max_cycles=1000.0)
