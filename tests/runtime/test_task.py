"""Unit tests for the task model."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.runtime.task import FLEXIBLE, SENSITIVE, Task, TaskState


def test_defaults_are_sensitive():
    t = Task(None, home_place=0)
    assert t.locality is SENSITIVE
    assert not t.is_flexible
    assert t.state is TaskState.CREATED


def test_flexible_flag():
    t = Task(None, 0, locality=FLEXIBLE)
    assert t.is_flexible


def test_negative_work_rejected():
    with pytest.raises(SchedulerError):
        Task(None, 0, work=-1)


def test_task_ids_unique_and_increasing():
    a = Task(None, 0)
    b = Task(None, 0)
    assert b.task_id > a.task_id


def test_footprint_deduplicates_blocks(memory):
    b1 = memory.allocate(0, 100)
    b2 = memory.allocate(0, 50)
    t = Task(None, 0, reads=[b1, b2], writes=[b1])
    assert t.footprint_bytes == 150
    assert len(t.blocks()) == 3          # repeats preserved
    assert len(t.unique_blocks()) == 2   # dedup by id


def test_unique_blocks_keeps_first_occurrence_order(memory):
    b1 = memory.allocate(0, 1)
    b2 = memory.allocate(0, 2)
    t = Task(None, 0, reads=[b2, b1], writes=[b2])
    assert [b.block_id for b in t.unique_blocks()] == [b2.block_id, b1.block_id]
