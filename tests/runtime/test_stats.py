"""Unit tests for run statistics and derived metrics."""

from __future__ import annotations

import pytest

from repro.runtime.stats import RunStats, StealCounters


class TestStealCounters:
    def test_totals(self):
        st = StealCounters(local_attempts=10, local_hits=4,
                           shared_local_attempts=3, shared_local_hits=2,
                           mailbox_hits=1, remote_attempts=5,
                           remote_hits=2, remote_tasks_received=4)
        assert st.total_steals == 4 + 2 + 1 + 2
        assert st.total_attempts == 10 + 3 + 5


class TestDerivedMetrics:
    def make(self):
        st = RunStats(n_places=2, workers_per_place=2)
        st.makespan_cycles = 1000.0
        st.busy_cycles[(0, 0)] = 800.0
        st.busy_cycles[(0, 1)] = 600.0
        st.busy_cycles[(1, 0)] = 200.0
        st.busy_cycles[(1, 1)] = 200.0
        return st

    def test_node_utilization(self):
        st = self.make()
        util = st.node_utilization()
        assert util[0] == pytest.approx(0.7)   # (800+600)/(2*1000)
        assert util[1] == pytest.approx(0.2)

    def test_utilization_spread_and_mean(self):
        st = self.make()
        assert st.utilization_spread() == pytest.approx(0.5)
        assert st.utilization_mean() == pytest.approx(0.45)
        assert st.utilization_stdev() == pytest.approx(0.25)

    def test_utilization_clamped_to_one(self):
        st = RunStats(n_places=1, workers_per_place=1)
        st.makespan_cycles = 100.0
        st.busy_cycles[(0, 0)] = 150.0  # overhead accounting overshoot
        assert st.node_utilization() == [1.0]

    def test_zero_makespan(self):
        st = RunStats(n_places=2, workers_per_place=1)
        assert st.node_utilization() == [0.0, 0.0]
        assert st.utilization_mean() == 0.0

    def test_steal_ratio(self):
        st = RunStats(n_places=1, workers_per_place=1)
        st.tasks_executed = 100
        st.steals.local_hits = 5
        assert st.steals_to_task_ratio == pytest.approx(0.05)
        empty = RunStats()
        assert empty.steals_to_task_ratio == 0.0

    def test_miss_rate(self):
        st = RunStats()
        assert st.l1_miss_rate == 0.0
        st.cache_hits = 75
        st.cache_misses = 25
        assert st.l1_miss_rate == pytest.approx(0.25)

    def test_granularity(self):
        st = RunStats()
        assert st.mean_task_granularity_cycles == 0.0
        st.work_sum_cycles = 500.0
        st.work_count = 5
        assert st.mean_task_granularity_cycles == 100.0

    def test_summary_keys(self):
        st = self.make()
        s = st.summary()
        for key in ("places", "workers", "makespan_cycles", "steals",
                    "l1_miss_rate", "utilization_spread"):
            assert key in s


class TestSnapshot:
    def make(self):
        st = RunStats(n_places=2, workers_per_place=2)
        st.makespan_cycles = 1000.0
        st.tasks_spawned = 10
        st.tasks_executed = 10
        st.busy_cycles[(1, 0)] = 200.0
        st.busy_cycles[(0, 1)] = 600.0
        st.messages_by_kind["task_ship"] = 3
        st.messages_by_pair[(1, 0)] = 2
        st.messages_by_pair[(0, 1)] = 1
        st.tasks_by_label["leaf"] = 10
        return st

    def test_snapshot_is_json_serializable_and_ordered(self):
        import json
        snap = self.make().snapshot()
        json.dumps(snap)  # no Counters / tuples leak through
        assert snap["tasks"]["spawned"] == 10
        assert snap["network"]["by_pair"] == [[0, 1, 1], [1, 0, 2]]
        assert snap["busy_cycles"] == [[0, 1, 600.0], [1, 0, 200.0]]

    def test_no_faults_key_without_injection(self):
        assert "faults" not in self.make().snapshot()

    def test_faults_block_merged_when_present(self):
        from repro.faults import FaultStats
        st = self.make()
        st.faults = FaultStats()
        st.faults.note_drop("task_ship", 2)
        snap = st.snapshot()
        assert snap["faults"]["dropped_total"] == 2
        assert snap["faults"]["messages_dropped"] == {"task_ship": 2}
