"""Unit tests for finish scopes (termination detection)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.runtime.finish import FinishScope


def test_open_scope_does_not_complete_when_drained():
    s = FinishScope()
    s.register()
    s.task_done()
    assert not s.completed  # still open


def test_close_then_drain_completes():
    s = FinishScope()
    s.register()
    s.close()
    assert not s.completed
    s.task_done()
    assert s.completed


def test_close_on_already_drained_completes_immediately():
    s = FinishScope()
    s.close()
    assert s.completed


def test_continuations_fire_once_on_completion():
    s = FinishScope()
    fired = []
    s.on_complete(lambda: fired.append("a"))
    s.register()
    s.close()
    assert fired == []
    s.task_done()
    assert fired == ["a"]


def test_continuation_on_completed_scope_runs_now():
    s = FinishScope()
    s.close()
    fired = []
    s.on_complete(lambda: fired.append(1))
    assert fired == [1]


def test_underflow_rejected():
    s = FinishScope()
    with pytest.raises(SimulationError):
        s.task_done()


def test_register_after_completion_rejected():
    s = FinishScope()
    s.close()
    with pytest.raises(SimulationError):
        s.register()


def test_child_scope_blocks_parent():
    parent = FinishScope("p")
    child = FinishScope("c", parent=parent)
    parent.close()
    assert not parent.completed  # child is live
    child.close()
    assert child.completed
    assert parent.completed


def test_continuation_spawning_into_parent_keeps_it_open():
    parent = FinishScope("p")
    child = FinishScope("c", parent=parent)
    parent.close()

    # Phase-chain pattern: when the child completes, register more work in
    # the parent before the child's unit is released.
    def continuation():
        parent.register()

    child.on_complete(continuation)
    child.close()
    assert child.completed
    assert not parent.completed  # the continuation's unit holds it open
    parent.task_done()
    assert parent.completed


def test_context_manager_closes_on_exit():
    with FinishScope("cm") as s:
        s.register()
        assert not s.completed
    # closed by __exit__, completes when the task drains
    s.task_done()
    assert s.completed


def test_context_manager_leaves_open_on_error():
    try:
        with FinishScope("cm") as s:
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert not s.completed  # not closed, no continuations fired


def test_nested_chain_of_scopes():
    root = FinishScope("root")
    mid = FinishScope("mid", parent=root)
    leaf = FinishScope("leaf", parent=mid)
    root.close()
    mid.close()
    leaf.register()
    leaf.close()
    assert not root.completed
    leaf.task_done()
    assert leaf.completed and mid.completed and root.completed
