"""Unit tests for Place load-status bookkeeping."""

from __future__ import annotations

from repro.cluster.topology import ClusterSpec
from repro.runtime.place import Place
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import Task
from repro.sched import DistWS


def make_place(env, n_workers=2, max_threads=4):
    spec = ClusterSpec(n_places=1, workers_per_place=n_workers,
                       max_threads=max_threads)
    rt = SimRuntime(spec, DistWS(), seed=0)
    return rt.places[0]


class TestStatusFlags:
    def test_fresh_place_is_idle_and_under_utilized(self, env):
        p = make_place(env)
        assert p.is_idle()
        assert p.is_under_utilized()
        assert p.spares() == p.n_workers

    def test_failed_steals_deactivate_after_n(self, env):
        p = make_place(env, n_workers=2)
        p.note_failed_steal()
        assert p.active
        p.note_failed_steal()
        assert not p.active

    def test_assignment_reactivates(self, env):
        p = make_place(env, n_workers=2)
        p.note_failed_steal()
        p.note_failed_steal()
        p.note_assignment()
        assert p.active
        assert p.failed_steals == 0

    def test_size_counts_running_and_queued(self, env):
        p = make_place(env)
        p.workers[0].deque.push(Task(None, 0))
        p.shared.push(Task(None, 0))
        p.running_activities = 1
        assert p.size() == 3
        assert p.queued_private() == 1
        assert p.queued_total() == 2

    def test_under_utilized_threshold(self, env):
        p = make_place(env, n_workers=2, max_threads=3)
        for _ in range(3):
            p.shared.push(Task(None, 0))
        assert not p.is_under_utilized()

    def test_spares_excludes_workers_with_queued_tasks(self, env):
        p = make_place(env, n_workers=2)
        p.workers[0].deque.push(Task(None, 0))
        assert p.spares() == 1

    def test_spares_excludes_executing_workers(self, env):
        p = make_place(env, n_workers=2)
        p.workers[0].executing = True
        assert p.spares() == 1


class TestDequeSelection:
    def test_prefers_idle_empty_worker(self, env):
        p = make_place(env, n_workers=2)
        p.workers[0].executing = True
        d = p.pick_private_deque()
        assert d is p.workers[1].deque

    def test_round_robin_when_all_busy(self, env):
        p = make_place(env, n_workers=2)
        for w in p.workers:
            w.executing = True
        first = p.pick_private_deque()
        second = p.pick_private_deque()
        assert first is not second

    def test_least_loaded(self, env):
        p = make_place(env, n_workers=3)
        p.workers[0].deque.push(Task(None, 0))
        p.workers[1].deque.push(Task(None, 0))
        assert p.least_loaded_deque() is p.workers[2].deque


class TestWorkNotify:
    def test_notify_wakes_waiters(self, env):
        p = make_place(env)
        ev = p.work_event()
        assert not ev.triggered
        p.notify_work()
        assert ev.triggered

    def test_notify_skips_already_triggered(self, env):
        p = make_place(env)
        ev = p.work_event()
        ev.succeed()  # woke some other way (e.g. backoff timeout)
        p.notify_work()  # must not double-succeed
        assert ev.triggered

    def test_waiter_list_cleared(self, env):
        p = make_place(env)
        p.work_event()
        p.notify_work()
        assert p._work_waiters == []
