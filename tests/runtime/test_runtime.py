"""Integration tests for the simulated runtime."""

from __future__ import annotations

import pytest

from repro.apgas import Apgas
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError, SchedulerError, SimulationError
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import FLEXIBLE, Task
from repro.sched import DistWS, X10WS


def simple_program(n_tasks, work=100_000, place_of=lambda i: 0,
                   flexible=False, trace=None):
    def program(rt):
        ap = Apgas(rt)

        def leaf(i):
            def body(ctx):
                if trace is not None:
                    trace.append((i, ctx.place))
            return body

        for i in range(n_tasks):
            ap.async_at(place_of(i), leaf(i), work=work,
                        flexible=flexible, label="leaf")
    return program


class TestRunBasics:
    def test_executes_all_tasks(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        trace = []
        rt.run(simple_program(10, trace=trace))
        assert len(trace) == 10
        assert rt.stats.tasks_executed == 10

    def test_empty_program_rejected(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        with pytest.raises(ConfigError):
            rt.run(lambda rt: None)

    def test_runtime_single_use(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        rt.run(simple_program(2))
        with pytest.raises(SimulationError):
            rt.run(simple_program(2))

    def test_makespan_positive_and_bounded(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        stats = rt.run(simple_program(8, work=1_000_000))
        assert stats.makespan_cycles > 0
        # All 8 tasks are at place 0 (2 workers): at least 4 tasks deep.
        assert stats.makespan_cycles >= 4 * 1_000_000

    def test_timeout_guard_raises(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        with pytest.raises(SimulationError):
            rt.run(simple_program(4, work=10_000_000), max_cycles=1000)

    def test_sensitive_tasks_run_at_home(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        trace = []
        rt.run(simple_program(20, place_of=lambda i: i % 4, trace=trace))
        assert all(place == i % 4 for i, place in trace)
        assert rt.stats.tasks_executed_remote == 0

    def test_flexible_tasks_migrate_under_imbalance(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        trace = []
        rt.run(simple_program(40, work=2_000_000, flexible=True,
                              trace=trace))
        # All work born at place 0; other places must have stolen some.
        assert {p for _, p in trace} != {0}
        assert rt.stats.tasks_executed_remote > 0


class TestSpawnValidation:
    def test_out_of_range_place_rejected(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        with pytest.raises(SchedulerError):
            rt.spawn(Task(None, home_place=99))

    def test_double_spawn_rejected(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        t = Task(None, 0)
        rt.spawn(t)
        with pytest.raises(SchedulerError):
            rt.spawn(t)

    def test_place_lookup_bounds(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        assert rt.place(0).place_id == 0
        with pytest.raises(ConfigError):
            rt.place(4)


class TestDeterminism:
    def run_once(self, seed, sched_cls):
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        rt = SimRuntime(spec, sched_cls(), seed=seed)
        trace = []
        stats = rt.run(simple_program(30, work=500_000, flexible=True,
                                      trace=trace))
        return stats.makespan_cycles, stats.steals.total_steals, trace

    @pytest.mark.parametrize("sched_cls", [DistWS, X10WS])
    def test_identical_seeds_identical_runs(self, sched_cls):
        assert self.run_once(5, sched_cls) == self.run_once(5, sched_cls)

    def test_different_seeds_may_differ_but_complete(self):
        m1, _, t1 = self.run_once(1, DistWS)
        m2, _, t2 = self.run_once(2, DistWS)
        assert len(t1) == len(t2) == 30  # same tasks, whatever the schedule


class TestStatsCollection:
    def test_work_accounting(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        stats = rt.run(simple_program(10, work=123_000))
        assert stats.work_sum_cycles == pytest.approx(10 * 123_000)
        assert stats.work_count == 10
        assert stats.mean_task_granularity_cycles == pytest.approx(123_000)

    def test_busy_cycles_recorded_for_active_workers(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        stats = rt.run(simple_program(10, work=1_000_000))
        assert sum(stats.busy_cycles.values()) > 0
        assert len(stats.busy_cycles) == small_spec.total_workers

    def test_labels_counted(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        stats = rt.run(simple_program(7))
        assert stats.tasks_by_label["leaf"] == 7

    def test_utilization_in_unit_range(self, small_spec):
        rt = SimRuntime(small_spec, DistWS(), seed=1)
        stats = rt.run(simple_program(30, work=1_000_000, flexible=True))
        for u in stats.node_utilization():
            assert 0.0 <= u <= 1.0
