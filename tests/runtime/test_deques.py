"""Unit and property tests for work deques."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.deques import PrivateDeque, SharedDeque
from repro.runtime.task import Task
from repro.sim.engine import Environment


def make_tasks(n):
    return [Task(None, 0, label=f"t{i}") for i in range(n)]


class TestPrivateDeque:
    def test_owner_is_lifo(self):
        d = PrivateDeque(0, 0)
        a, b, c = make_tasks(3)
        for t in (a, b, c):
            d.push(t)
        assert d.pop() is c
        assert d.pop() is b
        assert d.pop() is a
        assert d.pop() is None

    def test_thief_takes_oldest(self):
        d = PrivateDeque(0, 0)
        a, b, c = make_tasks(3)
        for t in (a, b, c):
            d.push(t)
        assert d.steal() is a
        assert d.pop() is c

    def test_steal_marks_task(self):
        d = PrivateDeque(0, 0)
        t = make_tasks(1)[0]
        d.push(t)
        stolen = d.steal()
        assert stolen.stolen_locally
        assert not stolen.stolen_remotely

    def test_counters(self):
        d = PrivateDeque(0, 0)
        for t in make_tasks(4):
            d.push(t)
        d.pop()
        d.steal()
        assert d.pushes == 4
        assert d.owner_pops == 1
        assert d.thief_takes == 1

    def test_peek_oldest(self):
        d = PrivateDeque(0, 0)
        assert d.peek_oldest() is None
        a, b = make_tasks(2)
        d.push(a)
        d.push(b)
        assert d.peek_oldest() is a
        assert len(d) == 2  # peek does not remove

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.sampled_from(["push", "pop", "steal"]),
                        max_size=100))
    def test_owner_and_thief_never_get_same_task(self, ops):
        d = PrivateDeque(0, 0)
        pushed, taken = [], []
        for op in ops:
            if op == "push":
                t = Task(None, 0)
                pushed.append(t)
                d.push(t)
            elif op == "pop":
                t = d.pop()
                if t is not None:
                    taken.append(t)
            else:
                t = d.steal()
                if t is not None:
                    taken.append(t)
        ids = [t.task_id for t in taken]
        assert len(ids) == len(set(ids))            # no duplicates
        assert len(taken) + len(d) == len(pushed)   # conservation


class TestSharedDeque:
    def test_fifo_for_all_consumers(self, env):
        d = SharedDeque(env, 0)
        a, b, c = make_tasks(3)
        for t in (a, b, c):
            d.push(t)
        assert d.take_oldest(remote=False) is a
        assert d.take_oldest(remote=True) is b
        assert d.take_oldest(remote=False) is c
        assert d.take_oldest(remote=False) is None

    def test_remote_take_marks_task(self, env):
        d = SharedDeque(env, 0)
        t = make_tasks(1)[0]
        d.push(t)
        out = d.take_oldest(remote=True)
        assert out.stolen_remotely

    def test_chunk_takes_oldest_first(self, env):
        d = SharedDeque(env, 0)
        tasks = make_tasks(5)
        for t in tasks:
            d.push(t)
        chunk = d.take_chunk(2, remote=True)
        assert chunk == tasks[:2]
        assert len(d) == 3

    def test_chunk_handles_short_deque(self, env):
        d = SharedDeque(env, 0)
        tasks = make_tasks(1)
        d.push(tasks[0])
        assert d.take_chunk(4, remote=True) == tasks
        assert d.take_chunk(4, remote=True) == []

    def test_chunk_of_zero_or_negative(self, env):
        d = SharedDeque(env, 0)
        d.push(make_tasks(1)[0])
        assert d.take_chunk(0, remote=False) == []
        assert d.take_chunk(-3, remote=False) == []

    def test_counters_split_local_remote(self, env):
        d = SharedDeque(env, 0)
        for t in make_tasks(4):
            d.push(t)
        d.take_oldest(remote=False)
        d.take_chunk(2, remote=True)
        assert d.pushes == 4
        assert d.local_takes == 1
        assert d.remote_takes == 2

    def test_push_front_jumps_the_fifo(self, env):
        d = SharedDeque(env, 0)
        a, b = make_tasks(2)
        d.push(a)
        d.push_front(b)
        assert d.take_oldest(remote=False) is b
        assert d.pushes == 2

    def test_lock_is_a_simlock(self, env):
        d = SharedDeque(env, 3)
        assert d.lock.name == "shared-deque-p3"
        assert not d.lock.locked
