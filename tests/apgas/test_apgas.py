"""Tests for the APGAS programmer-facing layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, DistWS, SimRuntime
from repro.apgas import Apgas, DistArray, PlaceLocalHandle, any_place_task
from repro.apgas.annotations import is_any_place_task, resolve_locality
from repro.errors import ConfigError, PlacementError
from repro.runtime.task import FLEXIBLE, SENSITIVE


@pytest.fixture
def rt():
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    return SimRuntime(spec, DistWS(), seed=0)


@pytest.fixture
def ap(rt):
    return Apgas(rt)


class TestAnnotations:
    def test_decorator_marks_body(self):
        @any_place_task
        def body(ctx):
            pass

        assert is_any_place_task(body)
        assert not is_any_place_task(lambda ctx: None)
        assert not is_any_place_task(None)

    def test_resolution_precedence(self):
        @any_place_task
        def marked(ctx):
            pass

        assert resolve_locality(marked, None) is FLEXIBLE
        assert resolve_locality(marked, False) is SENSITIVE  # explicit wins
        assert resolve_locality(None, True) is FLEXIBLE
        assert resolve_locality(None, None) is SENSITIVE

    def test_async_at_respects_decorator(self, rt, ap):
        @any_place_task
        def body(ctx):
            pass

        t = ap.async_at(0, body, work=1000)
        assert t.is_flexible


class TestApgas:
    def test_places(self, ap):
        assert ap.n_places == 4
        assert list(ap.places()) == [0, 1, 2, 3]

    def test_place_of_block_distribution(self, ap):
        assert ap.place_of(0, 8) == 0
        assert ap.place_of(7, 8) == 3
        with pytest.raises(ConfigError):
            ap.place_of(8, 8)

    def test_alloc_homes_block(self, ap):
        b = ap.alloc(2, 128, "x")
        assert b.home_place == 2

    def test_finish_scope_parenting(self, rt, ap):
        scope = ap.finish("phase")
        assert scope.parent is rt.root_finish

    def test_rng_deterministic(self, ap):
        a = ap.rng("x").integers(0, 100, 5)
        spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
        ap2 = Apgas(SimRuntime(spec, DistWS(), seed=0))
        b = ap2.rng("x").integers(0, 100, 5)
        assert np.array_equal(a, b)


class TestDistArray:
    def test_make_with_init(self, ap):
        arr = DistArray.make(ap, 10, init=lambda i: i * 2.0)
        assert arr[4] == 8.0
        assert len(arr) == 10

    def test_from_numpy(self, ap):
        data = np.arange(12, dtype=np.float64)
        arr = DistArray.from_numpy(ap, data)
        assert arr.bytes_per_element == 8
        assert np.array_equal(arr.local_view(0), data[:3])

    def test_placement_queries(self, ap):
        arr = DistArray.make(ap, 8)
        assert arr.place_of(0) == 0
        assert arr.place_of(7) == 3
        assert arr.chunk_of(1) == range(2, 4)
        assert arr.block_of(2).home_place == 2

    def test_blocks_for_deduplicates(self, ap):
        arr = DistArray.make(ap, 8)
        blocks = arr.blocks_for([0, 1, 7])
        assert len(blocks) == 2

    def test_out_of_range_rejected(self, ap):
        arr = DistArray.make(ap, 8)
        with pytest.raises(ConfigError):
            arr.place_of(8)
        with pytest.raises(ConfigError):
            arr.chunk_of(9)

    def test_multidim_rejected(self, ap):
        with pytest.raises(ConfigError):
            DistArray(ap, np.zeros((3, 3)), 8)

    def test_setitem(self, ap):
        arr = DistArray.make(ap, 4)
        arr[2] = 9.0
        assert arr[2] == 9.0


class TestPlaceLocalHandle:
    def test_factory_initialisation(self):
        plh = PlaceLocalHandle(3, factory=lambda p: {"place": p})
        assert plh.at(2) == {"place": 2}

    def test_set_and_items(self):
        plh = PlaceLocalHandle(2)
        assert not plh.has(0)
        plh.set(0, "a")
        plh.set(1, "b")
        assert list(plh.items()) == [(0, "a"), (1, "b")]

    def test_missing_value_rejected(self):
        plh = PlaceLocalHandle(2)
        with pytest.raises(PlacementError):
            plh.at(1)

    def test_bad_place_rejected(self):
        plh = PlaceLocalHandle(2)
        with pytest.raises(PlacementError):
            plh.at(5)
        with pytest.raises(PlacementError):
            PlaceLocalHandle(0)
