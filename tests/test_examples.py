"""Smoke tests: the runnable examples actually run."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, argv=None) -> str:
    """Execute an example as __main__ and capture nothing (smoke only)."""
    old_argv = sys.argv
    sys.argv = [name] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return "ok"


def test_quickstart_runs():
    assert run_example("quickstart.py") == "ok"


def test_annotating_tasks_runs():
    assert run_example("annotating_tasks.py") == "ok"


def test_trace_analysis_runs(tmp_path):
    assert run_example("trace_analysis.py",
                       ["uts", "DistWS", str(tmp_path)]) == "ok"
    assert (tmp_path / "trace_analysis.trace.json").exists()


def test_live_threads_runs():
    assert run_example("live_threads.py") == "ok"


def test_tune_chunk_size_runs(capsys):
    assert run_example("tune_chunk_size.py") == "ok"
    out = capsys.readouterr().out
    assert "tuning uts x DistWS" in out
    assert "search winner: remote_chunk_size=2" in out
    assert "rediscovered by search" in out
