"""Unit tests for the fault-plan grammar, resolution and validation."""

from __future__ import annotations

import pytest

from repro.cluster.network import (
    MSG_STEAL_REPLY,
    MSG_STEAL_REQUEST,
    MSG_TASK_SHIP,
)
from repro.errors import ConfigError
from repro.faults import FaultPlan, LatencySpike, PlaceCrash, SensitivePolicy


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "crash:p2@0.4,loss:steal=0.05,spike:@0.3+0.2x8,"
            "straggle:p1x4,policy:relax,seed:7")
        assert plan.crashes == (PlaceCrash(2, 0.4),)
        assert plan.loss[MSG_STEAL_REQUEST] == 0.05
        assert plan.loss[MSG_STEAL_REPLY] == 0.05
        assert plan.spikes == (LatencySpike(0.3, 0.2, 8.0),)
        assert plan.stragglers[0].place == 1
        assert plan.stragglers[0].factor == 4.0
        assert plan.sensitive_policy is SensitivePolicy.RELAX
        assert plan.seed == 7

    def test_ship_alias_and_absolute_times(self):
        plan = FaultPlan.parse("crash:p0@3e6,loss:ship=0.02")
        assert plan.crashes == (PlaceCrash(0, 3e6),)
        assert plan.loss == {MSG_TASK_SHIP: 0.02}
        assert not plan.needs_horizon

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").is_empty
        assert FaultPlan.parse(" , ").is_empty

    def test_default_policy_is_fail_fast(self):
        plan = FaultPlan.parse("crash:p1@0.5")
        assert plan.sensitive_policy is SensitivePolicy.FAIL_FAST

    @pytest.mark.parametrize("spec", [
        "crash:2@0.4",          # missing the p prefix
        "crash:p2",             # missing the time
        "loss:steal",           # missing the probability
        "spike:0.3+0.2x8",      # missing the @ prefix
        "straggle:p1",          # missing the factor
        "policy:never",         # unknown policy
        "nonsense:1",           # unknown token kind
        "justaword",            # no kind:args shape at all
        "loss:steal=abc",       # non-numeric probability
        "seed:x",               # non-integer seed
        "crash:p1@1e",          # passes the regex, fails float()
        "spike:@1e++2x3",       # malformed exponent in a spike time
        "straggle:p1x-",        # bare sign as a factor
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)


class TestResolution:
    def test_fractions_scale_by_horizon(self):
        plan = FaultPlan.parse("crash:p2@0.4,spike:@0.25+0.5x3")
        assert plan.needs_horizon
        resolved = plan.resolved(1_000_000)
        assert resolved.crashes[0].at == 400_000
        assert resolved.spikes[0].start == 250_000
        assert resolved.spikes[0].duration == 500_000
        assert not resolved.needs_horizon

    def test_absolute_times_untouched(self):
        plan = FaultPlan.parse("crash:p2@5e6")
        assert plan.resolved(100).crashes[0].at == 5e6

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash:p1@0.5").resolved(0)


class TestValidation:
    def test_valid_plan_passes(self):
        FaultPlan.parse("crash:p2@0.4,loss:steal=0.1").validate(4)

    def test_nonexistent_place(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash:p9@0.4").validate(4)

    def test_double_crash(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash:p1@0.2,crash:p1@0.6").validate(4)

    def test_no_survivors(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash:p0@0.2,crash:p1@0.6").validate(2)

    def test_certain_loss_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("loss:steal=1.0").validate(4)

    def test_sub_unity_factors_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("straggle:p1x0.5").validate(4)
        with pytest.raises(ConfigError):
            FaultPlan.parse("spike:@2+2x0.5").validate(4)
