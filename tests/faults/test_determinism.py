"""Same seed + same fault plan => byte-identical run snapshots."""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program

SPEC = ("crash:p2@6e6,loss:steal=0.1,straggle:p1x2,"
        "policy:relax,seed:11")


def run_once(scheduler_name, seed):
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler(scheduler_name), seed=seed)
    FaultInjector(FaultPlan.parse(SPEC)).attach(rt)
    stats = rt.run(fanout_program(24, work=1_000_000, n_places=4))
    return json.dumps(stats.snapshot(), sort_keys=True)


@pytest.mark.parametrize("scheduler_name", ["DistWS", "RandomWS"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_runs_are_reproducible(scheduler_name, seed):
    assert run_once(scheduler_name, seed) == run_once(scheduler_name, seed)
