"""Shared helpers for the fault-injection tests.

The workhorse is :func:`fanout_program`: a flat fan-out of
locality-flexible leaf tasks spread round-robin over the places — small
enough to run fast, wide enough that a mid-run crash loses both queued
and in-flight tasks.
"""

from __future__ import annotations

from repro.apgas import Apgas


def fanout_program(n_tasks, work=1_000_000, n_places=4, flexible=True,
                   executed=None):
    """A flat fan-out of leaf tasks, homes assigned round-robin.

    ``executed`` (a list) collects each leaf's index when its body runs,
    so tests can assert exactly-once execution by value.
    """
    def program(rt):
        ap = Apgas(rt)

        def leaf(i):
            def body(ctx):
                if executed is not None:
                    executed.append(i)
            return body

        for i in range(n_tasks):
            ap.async_at(i % n_places, leaf(i), work=work,
                        flexible=flexible, label="leaf")
    return program
