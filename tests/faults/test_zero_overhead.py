"""The zero-overhead guarantee: an empty plan changes nothing at all.

Attaching an empty :class:`FaultPlan` must leave the run's
:meth:`RunStats.snapshot` byte-identical to a run with no injector —
the fault branches in the runtime, network and schedulers all
short-circuit on ``faults is None``.  The observability layer makes the
same promise: attaching an :class:`EventBus` with **no sinks** is a
no-op (``rt.obs`` stays ``None``), so unobserved snapshots are
byte-identical too.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.faults import FaultInjector, FaultPlan
from repro.obs import EventBus
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program


def run_once(scheduler_name, attach_empty_plan=False,
             attach_sinkless_bus=False):
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler(scheduler_name), seed=7)
    if attach_empty_plan:
        FaultInjector(FaultPlan()).attach(rt)
    if attach_sinkless_bus:
        EventBus(sample_interval=100_000).attach(rt)
        assert rt.obs is None  # zero sinks: the attach installed nothing
    stats = rt.run(fanout_program(24, work=500_000, n_places=4))
    return json.dumps(stats.snapshot(), sort_keys=True)


@pytest.mark.parametrize("scheduler_name", ["DistWS", "X10WS"])
def test_empty_plan_is_byte_identical(scheduler_name):
    assert (run_once(scheduler_name, attach_empty_plan=False)
            == run_once(scheduler_name, attach_empty_plan=True))


@pytest.mark.parametrize("scheduler_name", ["DistWS", "X10WS"])
def test_sinkless_event_bus_is_byte_identical(scheduler_name):
    assert (run_once(scheduler_name)
            == run_once(scheduler_name, attach_sinkless_bus=True))


def test_sinkless_bus_snapshot_has_no_obs_key():
    spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler("DistWS"), seed=1)
    EventBus().attach(rt)
    stats = rt.run(fanout_program(8, work=100_000, n_places=2))
    assert "obs" not in stats.snapshot()


def test_empty_plan_snapshot_has_no_faults_key():
    spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler("DistWS"), seed=1)
    FaultInjector(FaultPlan()).attach(rt)
    stats = rt.run(fanout_program(8, work=100_000, n_places=2))
    assert "faults" not in stats.snapshot()
