"""The zero-overhead guarantee: an empty plan changes nothing at all.

Attaching an empty :class:`FaultPlan` must leave the run's
:meth:`RunStats.snapshot` byte-identical to a run with no injector —
the fault branches in the runtime, network and schedulers all
short-circuit on ``faults is None``.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.runtime import SimRuntime
from repro.sched import make_scheduler

from tests.faults.conftest import fanout_program


def run_once(scheduler_name, attach_empty_plan):
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler(scheduler_name), seed=7)
    if attach_empty_plan:
        FaultInjector(FaultPlan()).attach(rt)
    stats = rt.run(fanout_program(24, work=500_000, n_places=4))
    return json.dumps(stats.snapshot(), sort_keys=True)


@pytest.mark.parametrize("scheduler_name", ["DistWS", "X10WS"])
def test_empty_plan_is_byte_identical(scheduler_name):
    assert (run_once(scheduler_name, attach_empty_plan=False)
            == run_once(scheduler_name, attach_empty_plan=True))


def test_empty_plan_snapshot_has_no_faults_key():
    spec = ClusterSpec(n_places=2, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler("DistWS"), seed=1)
    FaultInjector(FaultPlan()).attach(rt)
    stats = rt.run(fanout_program(8, work=100_000, n_places=2))
    assert "faults" not in stats.snapshot()
