"""Behavioural tests for the fault injector against small runs."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError, PlaceFailedError
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.runtime import SimRuntime
from repro.sched import DistWS

from tests.faults.conftest import fanout_program

N_PLACES = 4
N_TASKS = 32
WORK = 1_000_000


def spec():
    return ClusterSpec(n_places=N_PLACES, workers_per_place=2, max_threads=4)


def fault_free_makespan():
    rt = SimRuntime(spec(), DistWS(), seed=1)
    stats = rt.run(fanout_program(N_TASKS, work=WORK, n_places=N_PLACES))
    return stats.makespan_cycles


class TestAttachment:
    def test_empty_plan_attach_is_noop(self):
        rt = SimRuntime(spec(), DistWS(), seed=1)
        FaultInjector(FaultPlan()).attach(rt)
        assert rt.faults is None
        assert rt.network.faults is None

    def test_unresolved_fractional_plan_rejected(self):
        rt = SimRuntime(spec(), DistWS(), seed=1)
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan.parse("crash:p1@0.5")).attach(rt)

    def test_double_attach_rejected(self):
        rt = SimRuntime(spec(), DistWS(), seed=1)
        plan = FaultPlan.parse("crash:p1@5e6")
        FaultInjector(plan).attach(rt)
        with pytest.raises(ConfigError):
            FaultInjector(plan).attach(rt)

    def test_attach_after_start_rejected(self):
        rt = SimRuntime(spec(), DistWS(), seed=1)
        rt.run(fanout_program(4, work=1000, n_places=N_PLACES))
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan.parse("crash:p1@5e6")).attach(rt)


class TestCrashRecovery:
    def test_flexible_tasks_reexecuted_exactly_once(self):
        horizon = fault_free_makespan()
        plan = FaultPlan.parse("crash:p2@0.5").resolved(horizon)
        rt = SimRuntime(spec(), DistWS(), seed=1)
        inj = FaultInjector(plan).attach(rt)
        executed = []
        stats = rt.run(fanout_program(N_TASKS, work=WORK,
                                      n_places=N_PLACES, executed=executed))
        # Every leaf body ran exactly once, by value.
        assert sorted(executed) == list(range(N_TASKS))
        assert stats.tasks_executed == stats.tasks_spawned
        inj.ledger.assert_work_conserved()
        assert stats.faults is not None
        assert stats.faults.places_crashed == [2]
        # The crash actually cost something: tasks were lost and re-run,
        # or finished in flight at the crash instant.
        assert (stats.faults.tasks_lost + stats.faults.committed_at_crash) > 0
        assert stats.faults.tasks_reexecuted == stats.faults.tasks_lost

    def test_dead_place_never_executes_after_crash(self):
        horizon = fault_free_makespan()
        plan = FaultPlan.parse("crash:p2@0.4").resolved(horizon)
        rt = SimRuntime(spec(), DistWS(), seed=1)
        FaultInjector(plan).attach(rt)
        rt.run(fanout_program(N_TASKS, work=WORK, n_places=N_PLACES))
        crash_at = plan.crashes[0].at
        place = rt.places[2]
        assert place.dead
        for w in place.workers:
            assert not w.executing
        # No task *finished* at p2 after the crash instant.
        for p in rt.places:
            for w in p.workers:
                assert w.current_task is None

    def test_sensitive_fail_fast_raises(self):
        plan = FaultPlan.parse("crash:p2@5e5")  # early absolute crash
        rt = SimRuntime(spec(), DistWS(), seed=1)
        FaultInjector(plan).attach(rt)
        with pytest.raises(PlaceFailedError):
            rt.run(fanout_program(N_TASKS, work=WORK, n_places=N_PLACES,
                                  flexible=False))

    def test_sensitive_relax_degrades_and_completes(self):
        plan = FaultPlan.parse("crash:p2@5e5,policy:relax")
        rt = SimRuntime(spec(), DistWS(), seed=1)
        executed = []
        stats_inj = FaultInjector(plan).attach(rt)
        stats = rt.run(fanout_program(N_TASKS, work=WORK, n_places=N_PLACES,
                                      flexible=False, executed=executed))
        assert sorted(executed) == list(range(N_TASKS))
        assert stats.faults.sensitive_degraded > 0
        stats_inj.ledger.assert_work_conserved()


class TestCrashDuringStealWindows:
    """Crashes timed into the thief-side steal machinery.

    With every task homed at p0, places 1-3 bootstrap purely through
    distributed steals, so early crash times land while p1's thieves are
    queued on p0's shared-deque lock or holding a stolen chunk in flight
    — tasks that are neither queued nor anyone's ``current_task``.  Work
    conservation must hold regardless (this sweep hangs at ``max_cycles``
    if an in-transit chunk is dropped or a dead waiter strands the lock).
    """

    def test_crash_sweep_over_steal_storm(self):
        for at in range(10_000, 110_000, 10_000):
            plan = FaultPlan.parse(f"crash:p1@{at}")
            rt = SimRuntime(spec(), DistWS(), seed=1)
            inj = FaultInjector(plan).attach(rt)
            executed = []
            stats = rt.run(fanout_program(N_TASKS, work=WORK, n_places=1,
                                          executed=executed),
                           max_cycles=1e9)
            assert sorted(executed) == list(range(N_TASKS)), f"crash@{at}"
            inj.ledger.assert_work_conserved()
            assert stats.tasks_executed == stats.tasks_spawned
        # After every run, no worker still holds an in-transit chunk.
        for p in rt.places:
            for w in p.workers:
                assert w.pending_chunk == []

    def test_task_lost_twice_is_relocated_again(self):
        # p2, a survivor of the first crash, crashes while tasks
        # relocated from p1 are still queued there: those tasks are lost
        # a second time and must move again, not abort the run.
        plan = FaultPlan.parse("crash:p1@4e5,crash:p2@5e5")
        rt = SimRuntime(spec(), DistWS(), seed=1)
        inj = FaultInjector(plan).attach(rt)
        executed = []
        stats = rt.run(fanout_program(N_TASKS, work=WORK,
                                      n_places=N_PLACES, executed=executed))
        assert sorted(executed) == list(range(N_TASKS))
        inj.ledger.assert_work_conserved()
        assert stats.faults.places_crashed == [1, 2]
        # At least one task was caught by both crashes.
        assert inj.ledger.loss_events > inj.ledger.lost_count
        # Every loss event was answered by exactly one relocation.
        assert stats.faults.tasks_reexecuted == stats.faults.tasks_lost


class TestOtherFaults:
    def test_straggler_slows_the_run(self):
        base = fault_free_makespan()
        plan = FaultPlan.parse("straggle:p1x8")
        rt = SimRuntime(spec(), DistWS(), seed=1)
        FaultInjector(plan).attach(rt)
        stats = rt.run(fanout_program(N_TASKS, work=WORK, n_places=N_PLACES))
        assert stats.makespan_cycles > base

    def test_message_loss_counted_and_work_conserved(self):
        plan = FaultPlan.parse("loss:all=0.2,seed:3")
        rt = SimRuntime(spec(), DistWS(), seed=1)
        inj = FaultInjector(plan).attach(rt)
        executed = []
        # All homes at p0: the other three places must steal remotely,
        # so the lossy interconnect actually carries traffic.
        stats = rt.run(fanout_program(N_TASKS, work=WORK,
                                      n_places=1, executed=executed))
        assert sorted(executed) == list(range(N_TASKS))
        assert stats.faults.dropped_total > 0
        # Every reliable-transport drop was paid for with a retransmit;
        # steal requests/replies instead cost timeouts at the thief.
        drops = stats.faults.messages_dropped
        protocol_drops = (drops.get("steal_request", 0)
                          + drops.get("steal_reply", 0))
        assert (stats.faults.retransmits + stats.faults.steal_timeouts
                >= stats.faults.dropped_total - protocol_drops)
        inj.ledger.assert_work_conserved()

    def test_harness_run_once_accepts_fault_plan(self):
        from repro.harness.experiment import run_once
        plan = FaultPlan.parse("straggle:p1x2")
        res = run_once("dmg", "DistWS", spec=spec(), scale="test",
                       fault_plan=plan)
        assert res.stats.faults is not None
        assert res.stats.faults.snapshot()["tasks_lost"] == 0

    def test_latency_spike_stretches_makespan(self):
        base = fault_free_makespan()
        plan = FaultPlan.parse("spike:@0.0+1.0x64").resolved(base * 4)
        rt = SimRuntime(spec(), DistWS(), seed=1)
        FaultInjector(plan).attach(rt)
        stats = rt.run(fanout_program(N_TASKS, work=WORK, n_places=N_PLACES))
        assert stats.makespan_cycles >= base
