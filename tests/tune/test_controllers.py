"""Online controllers: AIMD convergence, spike adaptation, idle control."""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.faults import FaultInjector
from repro.faults.plan import FaultPlan, LatencySpike
from repro.obs.events import ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import _reset_task_ids
from repro.sched import make_scheduler
from repro.tune import (
    CONTROLLERS,
    AIMDChunkController,
    IdleThresholdController,
    make_controller,
)


# -- synthetic-signal harness (no simulation) -------------------------------
class _DummyScheduler:
    remote_chunk_size = 2


class _DummyPlace:
    def __init__(self, place_id: int, n_workers: int = 4) -> None:
        self.place_id = place_id
        self.n_workers = n_workers
        self.idle_threshold = None

    def idle_round_threshold(self) -> int:
        if self.idle_threshold is not None:
            return max(1, self.idle_threshold)
        return max(1, self.n_workers)


class _DummyWorker:
    def __init__(self, place: _DummyPlace) -> None:
        self.place = place


class _DummyRuntime:
    def __init__(self, places=(), obs=None) -> None:
        self.places = list(places)
        self.obs = obs


class _RecordingBus:
    def __init__(self) -> None:
        self.events = []

    def emit(self, kind, **fields):
        self.events.append((kind, fields))


def _aimd(**kwargs) -> AIMDChunkController:
    """An AIMD controller bound to dummies, adjusting on every result."""
    kwargs.setdefault("settle_every", 1)
    kwargs.setdefault("target_latency_per_task", 1_000.0)
    ctrl = AIMDChunkController(**kwargs)
    ctrl.bind(_DummyRuntime(), _DummyScheduler())
    return ctrl


class TestAIMDSynthetic:
    def test_high_latency_grows_chunk_additively(self):
        ctrl = _aimd(max_chunk=8)
        worker = _DummyWorker(_DummyPlace(0))
        for _ in range(10):
            ctrl.on_steal_result(worker, True, 5_000.0, 1)
        # 2 -> 8 in +1 steps, then pinned at max_chunk.
        assert ctrl.chunk == 8
        assert ctrl.adjustments == [3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        assert ctrl.sched.remote_chunk_size == 8

    def test_cheap_steals_leave_chunk_alone(self):
        ctrl = _aimd()
        worker = _DummyWorker(_DummyPlace(0))
        for _ in range(10):
            ctrl.on_steal_result(worker, True, 500.0, 1)
        assert ctrl.chunk == 2
        assert ctrl.adjustments == []

    def test_miss_streak_shrinks_chunk_multiplicatively(self):
        ctrl = _aimd(success_floor=0.5, ewma_alpha=0.5)
        worker = _DummyWorker(_DummyPlace(0))
        ctrl.chunk = ctrl.sched.remote_chunk_size = 8
        for _ in range(10):
            ctrl.on_steal_result(worker, False, 0.0, 0)
        assert ctrl.chunk == 1
        # Halving steps, never below min_chunk.
        assert ctrl.adjustments[:3] == [4.0, 2.0, 1.0]
        assert ctrl.success_rate < 0.01

    def test_latency_amortised_per_task(self):
        # Total latency over target, per-task latency under it: a large
        # chunk already amortises the fixed cost, so no growth.
        ctrl = _aimd()
        worker = _DummyWorker(_DummyPlace(0))
        for _ in range(10):
            ctrl.on_steal_result(worker, True, 4_000.0, 8)
        assert ctrl.chunk == 2

    def test_settle_every_batches_adjustments(self):
        ctrl = _aimd(settle_every=4)
        worker = _DummyWorker(_DummyPlace(0))
        for _ in range(8):
            ctrl.on_steal_result(worker, True, 5_000.0, 1)
        # Only every 4th result may adjust: two adjustments total.
        assert ctrl.adjustments == [3.0, 4.0]

    def test_knob_update_emitted_on_adjustment(self):
        bus = _RecordingBus()
        ctrl = AIMDChunkController(settle_every=1,
                                   target_latency_per_task=1_000.0)
        ctrl.bind(_DummyRuntime(obs=bus), _DummyScheduler())
        ctrl.on_steal_result(_DummyWorker(_DummyPlace(0)), True,
                             5_000.0, 1)
        assert bus.events == [
            ("knob_update",
             {"name": "remote_chunk_size", "place": -1, "value": 3.0})]

    def test_snapshot_is_json_safe_and_deterministic(self):
        import json
        ctrl = _aimd()
        worker = _DummyWorker(_DummyPlace(0))
        for _ in range(4):
            ctrl.on_steal_result(worker, True, 5_000.0, 1)
        snap = ctrl.snapshot()
        assert snap["kind"] == "aimd_chunk"
        assert snap["chunk"] == ctrl.chunk
        assert json.dumps(snap, sort_keys=True)  # JSON-safe

    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            AIMDChunkController(min_chunk=4, max_chunk=2)
        with pytest.raises(ConfigError):
            AIMDChunkController(decrease=1.0)
        with pytest.raises(ConfigError):
            AIMDChunkController(ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            AIMDChunkController(settle_every=0)


class TestIdleThresholdSynthetic:
    def test_long_failed_streak_halves_threshold(self):
        ctrl = IdleThresholdController(streak_factor=2)
        place = _DummyPlace(0, n_workers=4)
        ctrl.bind(_DummyRuntime(places=[place]), _DummyScheduler())
        worker = _DummyWorker(place)
        for _ in range(7):
            ctrl.on_failed_round(worker)
        assert place.idle_round_threshold() == 4
        ctrl.on_failed_round(worker)  # streak hits 2 * threshold
        assert place.idle_round_threshold() == 2

    def test_hit_restores_threshold_toward_default(self):
        ctrl = IdleThresholdController(streak_factor=2)
        place = _DummyPlace(0, n_workers=4)
        ctrl.bind(_DummyRuntime(places=[place]), _DummyScheduler())
        worker = _DummyWorker(place)
        place.idle_threshold = 2
        ctrl.on_steal_result(worker, True, 100.0, 1)
        assert place.idle_round_threshold() == 3
        ctrl.on_steal_result(worker, True, 100.0, 1)
        assert place.idle_round_threshold() == 4
        # Never past the static default.
        ctrl.on_steal_result(worker, True, 100.0, 1)
        assert place.idle_round_threshold() == 4

    def test_never_below_min_threshold(self):
        ctrl = IdleThresholdController(min_threshold=2, streak_factor=1)
        place = _DummyPlace(0, n_workers=4)
        ctrl.bind(_DummyRuntime(places=[place]), _DummyScheduler())
        worker = _DummyWorker(place)
        for _ in range(100):
            ctrl.on_failed_round(worker)
        assert place.idle_round_threshold() == 2

    def test_misses_do_not_reset_streak(self):
        ctrl = IdleThresholdController()
        place = _DummyPlace(0)
        ctrl.bind(_DummyRuntime(places=[place]), _DummyScheduler())
        worker = _DummyWorker(place)
        ctrl.on_failed_round(worker)
        ctrl.on_steal_result(worker, False, 0.0, 0)
        assert ctrl.streaks[0] == 1


class TestFactory:
    def test_known_names(self):
        assert set(CONTROLLERS) == {"aimd-chunk", "idle-threshold"}
        assert isinstance(make_controller("aimd-chunk"),
                          AIMDChunkController)
        assert isinstance(make_controller("idle-threshold"),
                          IdleThresholdController)

    def test_unknown_name_is_configerror(self):
        with pytest.raises(ConfigError, match="unknown controller"):
            make_controller("pid")


class TestMetricsIntegration:
    def test_knob_update_becomes_time_series(self):
        reg = MetricsRegistry()
        reg.on_event(ObsEvent(10.0, "knob_update", {
            "name": "remote_chunk_size", "place": -1, "value": 3.0}))
        reg.on_event(ObsEvent(20.0, "knob_update", {
            "name": "idle_threshold", "place": 2, "value": 2.0}))
        snap = reg.snapshot()
        assert snap["series"]["knob.remote_chunk_size"] == [[10.0, 3.0]]
        assert snap["series"]["knob.idle_threshold.p2"] == [[20.0, 2.0]]


# -- full-run adaptation (the acceptance assertion) -------------------------
def _run_uts_with_aimd(spike_factor=None):
    _reset_task_ids()
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    ctrl = AIMDChunkController()
    rt = SimRuntime(spec, make_scheduler("DistWS", controller=ctrl),
                    seed=7)
    if spike_factor is not None:
        plan = FaultPlan(spikes=(
            LatencySpike(start=0.0, duration=1e12, factor=spike_factor),))
        FaultInjector(plan).attach(rt)
    app = make_app("uts", scale="test", seed=12345)
    stats = app.run(rt)
    return ctrl, stats


class TestFullRunAdaptation:
    def test_latency_spike_settles_on_larger_chunk(self):
        """ISSUE acceptance: under a latency-spike FaultPlan the AIMD
        controller settles on a larger chunk than in a fault-free run."""
        free, _ = _run_uts_with_aimd()
        spiked, _ = _run_uts_with_aimd(spike_factor=10.0)
        assert free.adjustments, "controller never engaged fault-free"
        assert spiked.chunk > free.chunk, \
            f"spiked chunk {spiked.chunk} <= fault-free {free.chunk}"
        assert spiked.latency_per_task.mean > free.latency_per_task.mean

    def test_controller_observes_hits_and_misses(self):
        ctrl, stats = _run_uts_with_aimd()
        assert ctrl._results > 0
        assert ctrl.latency_per_task.count > 0
        assert 0.0 <= ctrl.success_rate <= 1.0
        assert stats.tasks_executed > 0
