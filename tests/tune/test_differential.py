"""Differential guard: ``controller=None`` runs are byte-identical.

``tests/tune/golden_pre_tune_snapshots.json`` was captured from the tree
*before* the tuning subsystem existed (same runs, same seeds).  These
tests re-execute those runs on the current tree with every knob left at
its default and no controller attached, and require the serialized
``RunStats.snapshot()`` to match byte for byte — the knob plumbing and
controller hooks must cost nothing and change nothing when unused.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import make_app
from repro.cluster.topology import ClusterSpec
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import _reset_task_ids
from repro.sched import make_scheduler

GOLDEN = os.path.join(os.path.dirname(__file__),
                      "golden_pre_tune_snapshots.json")


def _snapshot_bytes(scheduler_name: str) -> str:
    _reset_task_ids()
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, make_scheduler(scheduler_name), seed=7)
    app = make_app("uts", scale="test", seed=12345)
    stats = app.run(rt)
    return json.dumps(stats.snapshot(), sort_keys=True, indent=1)


@pytest.mark.parametrize("scheduler", ["DistWS", "AdaptiveDistWS"])
def test_default_run_matches_pre_tune_golden(scheduler):
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    expected = json.dumps(golden[scheduler], sort_keys=True, indent=1)
    assert _snapshot_bytes(scheduler) == expected


def test_explicit_default_knobs_match_golden_too():
    """Spelling the defaults out changes nothing either."""
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    expected = json.dumps(golden["DistWS"], sort_keys=True, indent=1)
    _reset_task_ids()
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    sched = make_scheduler("DistWS", remote_chunk_size=2,
                           shared_fifo=True, victim_order="random")
    rt = SimRuntime(spec, sched, seed=7)
    app = make_app("uts", scale="test", seed=12345)
    stats = app.run(rt)
    got = json.dumps(stats.snapshot(), sort_keys=True, indent=1)
    assert got == expected
