"""Search engines: determinism, ASHA accounting, regret, cache replay."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError
from repro.harness.parallel import execution
from repro.tune import (
    Fidelity,
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    TuneCell,
    tune,
)

#: A deliberately tiny cell so every engine test stays cheap.
CELL = TuneCell(
    app="uts", scheduler="DistWS",
    spec=ClusterSpec(n_places=2, workers_per_place=2, max_threads=4),
    scale="test", sched_seeds=(1,))

#: Restricting to one knob keeps grids small and sample spaces cheap.
KNOBS = ["remote_chunk_size"]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """Module-shared result cache: later tests replay earlier sims."""
    return str(tmp_path_factory.mktemp("tune-cache"))


def _tune(engine, cache_dir, knobs=KNOBS, cell=CELL, parallel=1):
    with execution(parallel=parallel, cache_dir=cache_dir) as ctx:
        report = tune([cell], engine, knob_names=knobs)
    return report, ctx


class TestGridSearch:
    def test_includes_default_and_respects_budget(self, cache_dir):
        report, _ = _tune(GridSearch(budget=3), cache_dir)
        trials = report.cells[0].trials
        assert len(trials) == 3
        assert trials[0].is_default
        keys = {t.key() for t in trials}
        assert len(keys) == 3

    def test_full_grid_covers_every_point(self, cache_dir):
        report, _ = _tune(GridSearch(), cache_dir)
        trials = report.cells[0].trials
        # default + the 4 chunk-size grid points, minus nothing: the
        # explicit chunk=2 point is kept (distinct key from {}).
        assert len(trials) == 5
        chunks = sorted(t.config.get("remote_chunk_size", 2)
                        for t in trials)
        assert chunks == [1, 2, 2, 4, 8]

    def test_regret_is_relative_to_default(self, cache_dir):
        report, _ = _tune(GridSearch(), cache_dir)
        trials = report.cells[0].trials
        default = next(t for t in trials if t.is_default)
        assert default.regret == 0.0
        for t in trials:
            assert t.regret == t.median_makespan - default.median_makespan

    def test_report_ranking_and_default_rank(self, cache_dir):
        report, _ = _tune(GridSearch(), cache_dir)
        cell = report.cells[0]
        ranked = cell.ranked()
        medians = [t.median_makespan for t in ranked]
        assert medians == sorted(medians)
        assert 1 <= cell.default_rank() <= len(ranked)
        assert cell.best.median_makespan == medians[0]


class TestRandomSearch:
    def test_same_seed_same_trials_and_winner(self, cache_dir):
        a, _ = _tune(RandomSearch(budget=4, seed=3), cache_dir)
        b, _ = _tune(RandomSearch(budget=4, seed=3), cache_dir)
        assert [t.key() for t in a.cells[0].trials] == \
            [t.key() for t in b.cells[0].trials]
        assert a.cells[0].best.config == b.cells[0].best.config
        assert a.to_json() == b.to_json()

    def test_different_seed_different_trials(self):
        # No evaluation needed: compare the sampled configs directly.
        from repro.tune import ParamSpace
        space = ParamSpace.for_scheduler("DistWS")
        a = RandomSearch(budget=8, seed=0)
        b = RandomSearch(budget=8, seed=1)
        sa = [space.sample(a._rng(a.seed, CELL)) for _ in range(8)]
        sb = [space.sample(b._rng(b.seed, CELL)) for _ in range(8)]
        assert sa != sb

    def test_first_trial_is_default(self, cache_dir):
        report, _ = _tune(RandomSearch(budget=4, seed=3), cache_dir)
        assert report.cells[0].trials[0].is_default

    def test_budget_validated(self):
        with pytest.raises(ConfigError, match="budget"):
            RandomSearch(budget=0)


class TestSuccessiveHalving:
    def test_plan_fits_budget_and_decays(self):
        engine = SuccessiveHalving(budget=16, eta=2)
        sizes = engine.plan(2)
        assert sum(sizes) <= 16
        assert sizes[0] >= sizes[1] >= 1
        # ceil-division ladder: each rung is ceil(prev-rung-base / eta).
        assert sizes[1] == -(-sizes[0] // 2)
        assert engine.plan(1) == [16]

    def test_plan_rejects_budget_smaller_than_rungs(self):
        with pytest.raises(ConfigError, match="cannot cover"):
            SuccessiveHalving(budget=2).plan(3)

    def test_promotion_accounting(self, cache_dir):
        cell = TuneCell(
            app="uts", scheduler="DistWS", spec=CELL.spec,
            scale="test", sched_seeds=(1, 2))
        engine = SuccessiveHalving(budget=8, seed=0, eta=2)
        report, _ = _tune(engine, cache_dir, cell=cell)
        trials = report.cells[0].trials
        sizes = engine.plan(2)
        rung0 = [t for t in trials if t.rung == 0]
        rung1 = [t for t in trials if t.rung == 1]
        assert len(rung0) == sizes[0]
        assert len(rung1) == sizes[1]
        # The default config holds a slot at every rung.
        assert sum(t.is_default for t in rung0) == 1
        assert sum(t.is_default for t in rung1) == 1
        # Rung 0 runs the cheap fidelity, rung 1 the full seed set.
        assert all(t.sched_seeds == (1,) for t in rung0)
        assert all(t.sched_seeds == (1, 2) for t in rung1)
        # Promoted survivors are exactly the best non-default configs.
        ranked0 = sorted((t for t in rung0 if not t.is_default),
                         key=lambda t: (t.median_makespan, t.key()))
        expected = {t.key() for t in ranked0[:sizes[1] - 1]}
        promoted = {t.key() for t in rung1 if not t.is_default}
        assert promoted == expected

    def test_explicit_rungs_climb_fidelities(self, cache_dir):
        engine = SuccessiveHalving(
            budget=6, seed=0, eta=2,
            rungs=[Fidelity("test", (1,)), Fidelity("test", (1, 2))])
        report, _ = _tune(engine, cache_dir)
        cell = report.cells[0]
        assert cell.final_rung == 1
        assert all(t.sched_seeds == (1, 2)
                   for t in cell.trials if t.rung == 1)


class TestCacheReplay:
    def test_warm_cache_runs_zero_simulations(self, cache_dir, tmp_path):
        fresh = str(tmp_path / "cache")
        engine = RandomSearch(budget=4, seed=9)
        first, ctx1 = _tune(engine, fresh)
        assert ctx1.simulations > 0
        second, ctx2 = _tune(engine, fresh)
        assert ctx2.simulations == 0
        assert ctx2.cache.hits > 0
        assert second.to_json() == first.to_json()

    def test_parallel_matches_serial(self, cache_dir, tmp_path):
        engine = GridSearch(budget=3)
        serial, _ = _tune(engine, str(tmp_path / "a"))
        sharded, _ = _tune(engine, str(tmp_path / "b"), parallel=2)
        assert sharded.to_json() == serial.to_json()


class TestSearchBeatsDefault:
    def test_lifeline_steal_attempts_beat_paper_default(self, cache_dir):
        """ISSUE acceptance: the search finds a config that beats the
        paper-default median makespan on at least one cell, with regret
        recorded per trial (negative = beats the default)."""
        cell = TuneCell(
            app="uts", scheduler="Lifeline",
            spec=ClusterSpec(n_places=4, workers_per_place=2,
                             max_threads=6),
            scale="test", sched_seeds=(1, 2))
        report, _ = _tune(GridSearch(), cache_dir,
                          knobs=["attempts_per_round"], cell=cell)
        best = report.cells[0].best
        assert not best.is_default
        assert best.regret < 0.0
        assert all(t.regret == t.median_makespan
                   - report.cells[0].default_trial.median_makespan
                   for t in report.cells[0].trials)


class TestTuneEntryPoint:
    def test_empty_cells_rejected(self):
        with pytest.raises(ConfigError, match="nothing to tune"):
            tune([], GridSearch())

    def test_report_render_mentions_default_rank(self, cache_dir):
        report, _ = _tune(GridSearch(budget=3), cache_dir)
        text = report.rendered(top=5)
        assert "default rank" in text
        assert "(default)" in text
        assert "knob sensitivity" in text
