"""ParamSpace validation: knobs reject bad values, spaces stay typed."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.sched import SCHEDULERS, make_scheduler
from repro.tune import (
    SCHEDULER_KNOBS,
    Knob,
    ParamSpace,
    accepted_kwargs,
    knob_table,
    parse_sched_args,
    parse_sched_args_any,
)


class TestKnob:
    def test_int_out_of_range_rejected(self):
        k = Knob("chunk", "int", default=2, lo=1, hi=16)
        with pytest.raises(ConfigError, match="out of range"):
            k.validate(0)
        with pytest.raises(ConfigError, match="out of range"):
            k.validate(17)
        assert k.validate(16) == 16

    def test_int_rejects_bool_and_float(self):
        k = Knob("chunk", "int", default=2, lo=1, hi=16)
        with pytest.raises(ConfigError):
            k.validate(True)
        with pytest.raises(ConfigError):
            k.validate(2.5)

    def test_float_range_and_coercion(self):
        k = Knob("base", "float", default=400.0, lo=50.0, hi=50_000.0)
        assert k.validate(100) == 100.0
        with pytest.raises(ConfigError):
            k.validate(49.9)

    def test_categorical_choices(self):
        k = Knob("order", "categorical", default="random",
                 choices=("random", "nearest"))
        assert k.validate("nearest") == "nearest"
        with pytest.raises(ConfigError, match="not one of"):
            k.validate("fastest")

    def test_parse_reports_configerror_not_valueerror(self):
        k = Knob("chunk", "int", default=2, lo=1, hi=16)
        with pytest.raises(ConfigError, match="cannot parse"):
            k.parse("two")

    def test_bool_parse_spellings(self):
        k = Knob("fifo", "bool", default=True)
        assert k.parse("yes") is True
        assert k.parse("0") is False
        with pytest.raises(ConfigError):
            k.parse("maybe")

    def test_sample_stays_in_range(self):
        rng = random.Random(0)
        for k in SCHEDULER_KNOBS["DistWS"]:
            for _ in range(50):
                k.validate(k.sample(rng))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown knob kind"):
            Knob("x", "enum", choices=("a",))


class TestScheduleKnobTables:
    def test_every_registered_scheduler_has_knobs(self):
        assert set(SCHEDULER_KNOBS) == set(SCHEDULERS)

    def test_every_knob_is_a_constructor_kwarg(self):
        """Each declared knob must be accepted by the scheduler ctor."""
        for sched, knobs in SCHEDULER_KNOBS.items():
            config = {}
            rng = random.Random(1)
            for k in knobs:
                config[k.name] = k.sample(rng)
            make_scheduler(sched, **config)

    def test_declared_defaults_match_class_attributes(self):
        for sched, knobs in SCHEDULER_KNOBS.items():
            instance = make_scheduler(sched)
            for k in knobs:
                if k.default is None:
                    continue
                assert getattr(instance, k.name) == k.default, \
                    f"{sched}.{k.name}"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="no knob table"):
            knob_table("TurboWS")


class TestParamSpace:
    def test_unknown_knob_in_config_rejected(self):
        space = ParamSpace.for_scheduler("DistWS")
        with pytest.raises(ConfigError, match="unknown knob"):
            space.validate_config({"warp_factor": 9})

    def test_out_of_range_config_rejected(self):
        space = ParamSpace.for_scheduler("DistWS")
        with pytest.raises(ConfigError, match="out of range"):
            space.validate_config({"remote_chunk_size": 99})

    def test_restricted_space_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown knob"):
            ParamSpace.for_scheduler("DistWS", names=["chunky"])

    def test_default_config_is_empty(self):
        assert ParamSpace.for_scheduler("X10WS").default_config() == {}

    def test_sample_assigns_every_knob(self):
        space = ParamSpace.for_scheduler("DistWS",
                                         names=["remote_chunk_size",
                                                "victim_order"])
        config = space.sample(random.Random(3))
        assert set(config) == {"remote_chunk_size", "victim_order"}
        space.validate_config(config)

    def test_grid_is_cartesian_and_deterministic(self):
        space = ParamSpace.for_scheduler("DistWS",
                                         names=["remote_chunk_size",
                                                "victim_order"])
        grid = list(space.grid())
        assert len(grid) == 4 * 2
        assert grid == list(space.grid())
        assert grid[0] == {"remote_chunk_size": 1,
                           "victim_order": "random"}


class TestSchedArgParsing:
    def test_parses_typed_values(self):
        config = parse_sched_args(
            "DistWS", ["remote_chunk_size=4", "victim_order=nearest",
                       "shared_fifo=false"])
        assert config == {"remote_chunk_size": 4,
                          "victim_order": "nearest",
                          "shared_fifo": False}

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigError, match="expected key=value"):
            parse_sched_args("DistWS", ["remote_chunk_size"])

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown knob"):
            parse_sched_args("DistWS", ["warp=1"])

    def test_empty_returns_none(self):
        assert parse_sched_args("DistWS", []) is None
        assert parse_sched_args("DistWS", None) is None

    def test_union_parser_accepts_any_scheduler_knob(self):
        config = parse_sched_args_any(
            ["remote_chunk_size=4", "min_work=100000",
             "attempts_per_round=3"])
        assert config["remote_chunk_size"] == 4
        with pytest.raises(ConfigError, match="unknown knob"):
            parse_sched_args_any(["warp=1"])

    def test_accepted_kwargs_filters_per_scheduler(self):
        config = {"remote_chunk_size": 4, "min_work": 100_000.0,
                  "attempts_per_round": 3}
        assert accepted_kwargs("X10WS", config) is None
        assert accepted_kwargs("DistWS", config) == {
            "remote_chunk_size": 4}
        assert accepted_kwargs("AdaptiveDistWS", config) == {
            "remote_chunk_size": 4, "min_work": 100_000.0}
        assert accepted_kwargs("RandomWS", config) == {
            "attempts_per_round": 3}
        assert accepted_kwargs("DistWS", {}) is None
        assert accepted_kwargs("DistWS", None) is None
