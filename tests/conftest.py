"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import CostModel
from repro.cluster.network import Network
from repro.cluster.memory import MemoryManager
from repro.cluster.topology import ClusterSpec
from repro.sim.engine import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh discrete-event environment."""
    return Environment()


@pytest.fixture
def costs() -> CostModel:
    """The default cost model."""
    return CostModel()


@pytest.fixture
def small_spec() -> ClusterSpec:
    """A 4-place, 2-worker cluster — large enough for distributed steals."""
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


@pytest.fixture
def single_spec() -> ClusterSpec:
    """A single-place, 2-worker cluster (no distributed stealing possible)."""
    return ClusterSpec(n_places=1, workers_per_place=2, max_threads=4)


@pytest.fixture
def network(small_spec, costs) -> Network:
    """Interconnect over the small cluster."""
    return Network(small_spec, costs)


@pytest.fixture
def memory(network, costs) -> MemoryManager:
    """Memory manager over the small cluster's network."""
    return MemoryManager(network, costs)
