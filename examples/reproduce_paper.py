#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one go.

Runs the full experiment registry (Figs. 3-7, Tables I-III, the §VIII.2
chunk/granularity studies, and the §X UTS comparison) at benchmark scale
and prints each rendered artifact.  Expect ~15-30 minutes on a laptop.

Run:  python examples/reproduce_paper.py [test|bench] [artifact ...]

With ``test`` the suite uses small instances (a couple of minutes; the
shapes are weaker at that scale).  Naming artifacts (e.g. ``fig6 table3``)
runs just those.
"""

from __future__ import annotations

import sys
import time

from repro.harness import EXPERIMENTS


def main(argv) -> None:
    scale = "bench"
    wanted = []
    for arg in argv:
        if arg in ("test", "bench"):
            scale = arg
        elif arg in EXPERIMENTS:
            wanted.append(arg)
        else:
            raise SystemExit(
                f"unknown argument {arg!r}; artifacts: "
                f"{', '.join(EXPERIMENTS)}")
    wanted = wanted or list(EXPERIMENTS)

    for name in wanted:
        fn = EXPERIMENTS[name]
        t0 = time.perf_counter()
        print(f"\n{'#' * 70}\n# {name}  (running...)\n{'#' * 70}",
              flush=True)
        out = fn(scale=scale)
        wall = time.perf_counter() - t0
        print(out.rendered, flush=True)
        print(f"\n[{name} done in {wall:.1f}s]", flush=True)


if __name__ == "__main__":
    main(sys.argv[1:])
