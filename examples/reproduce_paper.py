#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one go.

Runs the full experiment registry (Figs. 3-7, Tables I-III, the §VIII.2
chunk/granularity studies, and the §X UTS comparison) at benchmark scale
and prints each rendered artifact.  Expect ~15-30 minutes on a laptop —
or divide that by your core count with ``--parallel``.

Run:  python examples/reproduce_paper.py [test|bench] [artifact ...]
          [--parallel N] [--cache-dir DIR]

With ``test`` the suite uses small instances (a couple of minutes; the
shapes are weaker at that scale).  Naming artifacts (e.g. ``fig6 table3``)
runs just those.  ``--parallel N`` shards the (app x scheduler x seed)
grid over N worker processes; results are byte-identical to a serial
run.  ``--cache-dir DIR`` memoises finished cells on disk, so a repeated
invocation replays from the cache without simulating anything.
"""

from __future__ import annotations

import sys
import time

from repro.harness import EXPERIMENTS, execution


def parse_args(argv):
    scale = "bench"
    wanted = []
    parallel = 1
    cache_dir = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("test", "bench"):
            scale = arg
        elif arg in EXPERIMENTS:
            wanted.append(arg)
        elif arg == "--parallel":
            if not args:
                raise SystemExit("--parallel needs a worker count")
            parallel = int(args.pop(0))
            if parallel < 1:
                raise SystemExit("--parallel must be >= 1")
        elif arg == "--cache-dir":
            if not args:
                raise SystemExit("--cache-dir needs a directory")
            cache_dir = args.pop(0)
        else:
            raise SystemExit(
                f"unknown argument {arg!r}; artifacts: "
                f"{', '.join(EXPERIMENTS)}")
    return scale, wanted or list(EXPERIMENTS), parallel, cache_dir


def main(argv) -> None:
    scale, wanted, parallel, cache_dir = parse_args(argv)

    with execution(parallel=parallel, cache_dir=cache_dir) as ctx:
        for name in wanted:
            fn = EXPERIMENTS[name]
            t0 = time.perf_counter()
            print(f"\n{'#' * 70}\n# {name}  (running...)\n{'#' * 70}",
                  flush=True)
            out = fn(scale=scale)
            wall = time.perf_counter() - t0
            print(out.rendered, flush=True)
            print(f"\n[{name} done in {wall:.1f}s]", flush=True)
        if cache_dir:
            print(f"\n[{ctx.simulations} simulations, "
                  f"{ctx.cache.hits} cache hits, "
                  f"{ctx.cache.stores} newly cached in {cache_dir}]",
                  flush=True)


if __name__ == "__main__":
    main(sys.argv[1:])
