#!/usr/bin/env python
"""Rediscover the paper's chunk-of-2 with the offline tuner.

Section VI fixes the remote steal chunk size at 2 tasks per steal:
stealing one task at a time pays the fixed steal cost (closure creation
plus a network round trip) for every task, while large chunks
concentrate scarce work on one thief.  Instead of taking the constant
on faith, this example hands the knob to ``repro.tune`` and lets a grid
search find it:

1. build a tuning cell (UTS x DistWS on a small cluster, three
   scheduler seeds so the winner is a median, not a fluke);
2. grid-search ``remote_chunk_size`` over {1, 2, 4, 8} alongside the
   forced-in paper default;
3. print the ranked report and the per-trial regret.

The search lands on chunk = 2 — ties the default (which *is* chunk 2)
and beats 1, 4 and 8 — turning the paper's constant into a found-by-
search result.

Run:  python examples/tune_chunk_size.py
"""

from __future__ import annotations

from repro.cluster.topology import ClusterSpec
from repro.harness.parallel import execution
from repro.tune import GridSearch, TuneCell, tune


def main() -> None:
    cell = TuneCell(
        app="uts", scheduler="DistWS",
        spec=ClusterSpec(n_places=4, workers_per_place=2, max_threads=4),
        scale="test", sched_seeds=(1, 2, 3))

    # parallel=4 shards the 15 runs (5 configs x 3 seeds) over four
    # processes; add cache_dir=... to make re-runs instant.
    with execution(parallel=4):
        report = tune([cell], GridSearch(),
                      knob_names=["remote_chunk_size"])

    print(report.rendered())

    best = report.cells[0].best
    chunk = best.config.get("remote_chunk_size", 2)
    print(f"\nsearch winner: remote_chunk_size={chunk} "
          f"(median {best.median_makespan:.0f} cycles)")
    if chunk == 2:
        print("=> the paper's constant, rediscovered by search.")
    else:
        print("=> on this cell the sweet spot moved off the paper's 2; "
              "locality and cluster shape shift it.")


if __name__ == "__main__":
    main()
