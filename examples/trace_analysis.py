#!/usr/bin/env python
"""Trace a run and explain *where the time went*.

Attaches a :class:`TraceRecorder` (one subscriber on the ``repro.obs``
event bus) plus a metrics registry and a Chrome-trace sink, then prints:

- the work/span decomposition and the critical chain (why the app cannot
  scale past T1/T∞ no matter the scheduler);
- a per-place busy timeline (watch X10WS leave places idle, and DistWS
  fill them);
- the steal-flow matrix (who executed whose tasks);
- steal-latency / task-granularity histograms from the metrics registry.

It also writes ``trace_analysis.trace.json`` into ``out/`` (or the
directory named as the third argument): open it in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` to see one process row
per place and one thread lane per worker.  To compare two runs
numerically, save snapshots with ``repro profile --snapshot a.json`` and
inspect them with ``repro diff-stats a.json b.json``.

Run:  python examples/trace_analysis.py [app] [scheduler] [out-dir]
"""

from __future__ import annotations

import os
import sys

from repro import ClusterSpec, SimRuntime, make_scheduler
from repro.analysis import (
    TraceRecorder,
    critical_path,
    place_timeline,
    steal_flow,
)
from repro.apps import make_app
from repro.obs import ChromeTraceSink, EventBus, MetricsRegistry


def main(app_name: str = "dmg", sched_name: str = "DistWS",
         out_dir: str = "out") -> None:
    spec = ClusterSpec(n_places=8, workers_per_place=4, max_threads=8)
    rt = SimRuntime(spec, make_scheduler(sched_name), seed=1)
    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, "trace_analysis.trace.json")

    # One bus, three subscribers: the trace recorder, a metrics registry,
    # and a Chrome trace-event exporter.  Attach before the run.
    bus = EventBus(sample_interval=100_000)
    metrics = bus.subscribe(MetricsRegistry())
    bus.subscribe(ChromeTraceSink(trace_path))
    bus.attach(rt)
    recorder = TraceRecorder(rt)  # joins the existing bus

    app = make_app(app_name, scale="test", seed=5)
    stats = app.run(rt)
    trace = recorder.finalize()

    print(f"{app_name} under {sched_name} on "
          f"{spec.n_places}x{spec.workers_per_place}: "
          f"{stats.makespan_cycles / trace.cycles_per_ms:.2f} ms simulated\n")
    print(critical_path(trace).describe())
    print()
    print(place_timeline(trace, width=64,
                         title="place busy timeline (dark = saturated)"))
    print()
    print(steal_flow(trace, title="steal flow (home -> executing place)"))
    print()
    print("metric histograms (count / mean / p50 / p90 / max):")
    for name, count, mean, p50, p90, vmax in metrics.summary_rows():
        print(f"  {name:>24s}: n={count:>6d}  mean={mean:>12.1f}"
              f"  p50={p50:>12.1f}  p90={p90:>12.1f}  max={vmax:>12.1f}")
    print(f"\nChrome trace written to {trace_path} "
          "(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main(*(sys.argv[1:4] or ["dmg", "DistWS"]))
