#!/usr/bin/env python
"""Trace a run and explain *where the time went*.

Attaches a :class:`TraceRecorder` to a simulation, then prints:

- the work/span decomposition and the critical chain (why the app cannot
  scale past T1/T∞ no matter the scheduler);
- a per-place busy timeline (watch X10WS leave places idle, and DistWS
  fill them);
- the steal-flow matrix (who executed whose tasks).

Run:  python examples/trace_analysis.py [app] [scheduler]
"""

from __future__ import annotations

import sys

from repro import ClusterSpec, SimRuntime, make_scheduler
from repro.analysis import (
    TraceRecorder,
    critical_path,
    place_timeline,
    steal_flow,
)
from repro.apps import make_app


def main(app_name: str = "dmg", sched_name: str = "DistWS") -> None:
    spec = ClusterSpec(n_places=8, workers_per_place=4, max_threads=8)
    rt = SimRuntime(spec, make_scheduler(sched_name), seed=1)
    recorder = TraceRecorder(rt)
    app = make_app(app_name, scale="test", seed=5)
    stats = app.run(rt)
    trace = recorder.finalize()

    print(f"{app_name} under {sched_name} on "
          f"{spec.n_places}x{spec.workers_per_place}: "
          f"{stats.makespan_cycles / 2e6:.2f} ms simulated\n")
    print(critical_path(trace).describe())
    print()
    print(place_timeline(trace, width=64,
                         title="place busy timeline (dark = saturated)"))
    print()
    print(steal_flow(trace, title="steal flow (home -> executing place)"))


if __name__ == "__main__":
    main(*(sys.argv[1:3] or ["dmg", "DistWS"]))
