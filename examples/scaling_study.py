#!/usr/bin/env python
"""Fig. 5-style scaling study for one application.

Sweeps the cluster from 1 to 128 workers (1 place of k workers up to 16
places of 8, exactly the paper's x-axis) and prints the speedup of
X10WS vs DistWS over the sequential baseline, showing the paper's
crossover: parity (or a slight DistWS penalty) within one node, a
growing DistWS advantage beyond it.

Run:  python examples/scaling_study.py [app] [scale]
      app   - quicksort | turing | kmeans | agglom | dmg | dmr | nbody
      scale - test (fast, default) | bench (paper-scale inputs)
"""

from __future__ import annotations

import sys

from repro import worker_sweep
from repro.harness import run_cell, series_lines


def main(app: str = "dmg", scale: str = "test") -> None:
    counts = (1, 2, 4, 8, 16, 32, 64, 128)
    series = {"X10WS": [], "DistWS": []}
    for spec in worker_sweep(counts):
        for sched in series:
            cell = run_cell(app, sched, spec, sched_seeds=(1,),
                            scale=scale)
            series[sched].append(cell.mean_speedup)
        w = spec.total_workers
        gain = series["DistWS"][-1] / series["X10WS"][-1] - 1
        print(f"  {w:3d} workers: X10WS {series['X10WS'][-1]:6.1f}x   "
              f"DistWS {series['DistWS'][-1]:6.1f}x   "
              f"({100 * gain:+.1f}%)", flush=True)
    print()
    print(series_lines(counts, series,
                       title=f"{app}: speedup vs worker count"))


if __name__ == "__main__":
    main(*(sys.argv[1:3] or ["dmg"]))
