#!/usr/bin/env python
"""Quickstart: run one application under two schedulers and compare.

This is the smallest end-to-end use of the library:

1. build a cluster spec (the paper's 16 places x 8 workers);
2. pick an application from the suite;
3. run it under the X10WS baseline and under DistWS;
4. read the metrics the paper reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DistWS, SimRuntime, X10WS, paper_cluster
from repro.apps import make_app


def main() -> None:
    spec = paper_cluster()  # 16 places x 8 workers = 128
    print(f"cluster: {spec.n_places} places x {spec.workers_per_place} "
          f"workers\n")

    results = {}
    for sched in (X10WS(), DistWS()):
        # A fresh app instance per run (apps are single-use); the same
        # seed means the identical workload.
        app = make_app("turing", scale="test", seed=7)
        runtime = SimRuntime(spec, sched, seed=1)
        stats = app.run(runtime)  # validates against the oracle
        results[sched.name] = stats
        ms = stats.makespan_cycles / runtime.costs.cycles_per_ms
        print(f"{sched.name:8s} makespan={ms:8.2f} ms"
              f"  steals={stats.steals.total_steals:5d}"
              f"  remote tasks={stats.tasks_executed_remote:4d}"
              f"  messages={stats.messages:6d}"
              f"  node-utilization spread="
              f"{stats.utilization_spread():.2f}")

    gain = (results["X10WS"].makespan_cycles
            / results["DistWS"].makespan_cycles - 1)
    print(f"\nDistWS gain over X10WS: {100 * gain:+.1f}%"
          "  (the paper reports 12-31% at full benchmark scale)")


if __name__ == "__main__":
    main()
