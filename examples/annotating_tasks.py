#!/usr/bin/env python
"""Writing your own APGAS program with locality annotations.

The paper's programming model in miniature: a two-phase pipeline where
the programmer marks which tasks may travel (``@AnyPlaceTask``, spelled
``flexible=True`` here) and which must stay with their data.  Shows:

- allocating placed data and a block-distributed :class:`DistArray`;
- spawning sensitive vs flexible activities (``async_at`` / ``ctx.spawn``);
- ``finish`` scopes as phase barriers with continuations;
- what the scheduler did to your tasks afterwards.

Run:  python examples/annotating_tasks.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterSpec, DistWS, SimRuntime
from repro.apgas import Apgas, DistArray


def main() -> None:
    spec = ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)
    rt = SimRuntime(spec, DistWS(), seed=3)
    partials = {}
    done = {}

    def program(rt) -> None:
        ap = Apgas(rt)
        data = DistArray.make(ap, 4_000, init=lambda i: float(i % 97),
                              label="vector")

        def summarize(p):
            # Reads one place's chunk, carries it along if stolen.
            def body(ctx):
                chunk = data.local_view(p)
                partials[(p, ctx.task.task_id)] = float(
                    np.square(chunk).sum())
            return body

        def phase_one(ctx):
            # Spawned from a running activity: a busy place's flexible
            # children overflow to the shared deque, where remote
            # thieves can reach them.  Place 0 gets 3x the work, so the
            # other places will steal.
            for p in range(ap.n_places):
                for _rep in range(6):
                    ctx.spawn(summarize(p), place=p,
                              work=1_500_000 * (1 + 2 * (p == 0)),
                              reads=[data.block_of(p)],
                              flexible=True, encapsulates=True,
                              label="summarize")

        scope = ap.finish("pipeline")
        ap.async_at(0, phase_one, work=50_000, label="driver",
                    finish=scope)

        def report():
            # Phase 2, launched by the barrier continuation.  The
            # reduction owns place 0's result buffer: sensitive.
            def body(ctx):
                done["sum"] = sum(partials.values())
            ap.async_at(0, body, work=200_000, flexible=False,
                        label="reduce")

        scope.on_complete(report)
        scope.close()

    stats = rt.run(program)
    print(f"sum of squares   : {done['sum']:.1f}")
    print(f"tasks executed   : {stats.tasks_executed}")
    print(f"executed remotely: {stats.tasks_executed_remote} "
          "(only flexible 'summarize' tasks may travel)")
    print(f"makespan         : "
          f"{stats.makespan_cycles / rt.costs.cycles_per_ms:.2f} ms")
    print(f"node utilization : "
          f"{[round(u, 2) for u in stats.node_utilization()]}")


if __name__ == "__main__":
    main()
