#!/usr/bin/env python
"""The dual-deque scheduler on real threads.

Runs actual Python callables through :class:`repro.live.LiveExecutor`,
which implements Algorithm 1's steal order (own deque, co-located
victims, local shared deque, remote shared deques) over thread groups.
The GIL makes this a structural demo, not a performance one — see
DESIGN.md for why the quantitative study uses the simulator.

Run:  python examples/live_threads.py
"""

from __future__ import annotations

import hashlib
import threading
import time

from repro.live import LiveExecutor


def chew(payload: int) -> str:
    """A small real computation (hash chain)."""
    h = hashlib.sha256(str(payload).encode())
    for _ in range(200):
        h = hashlib.sha256(h.digest())
    time.sleep(0.001)  # emulate non-GIL work (I/O, native kernel)
    return h.hexdigest()[:12]


def main() -> None:
    with LiveExecutor(n_places=4, workers_per_place=2,
                      selective=True) as ex:
        t0 = time.perf_counter()
        # All work born at place 0, flexible: other places will steal.
        digests = ex.map_local(chew, range(160), place=0, flexible=True)
        wall = time.perf_counter() - t0
    print(f"computed {len(digests)} digests in {wall:.2f}s")
    print(f"first: {digests[0]}  last: {digests[-1]}")
    print("scheduler counters:", dict(ex.stats))
    assert ex.stats["remote_steals"] > 0, \
        "expected cross-place stealing of the flexible burst"
    print("cross-place steals happened — the shared-deque path works on "
          "real threads")


if __name__ == "__main__":
    main()
