"""Table I — task granularities.

Paper values (ms): qsort 1.1, turing 1.86, kmeans 383, agglom 529,
DMG 732, DMR 899, nbody 623.  Our instances compress the range (see
EXPERIMENTS.md), so the reproduced claim is the *two-tier structure*:
Quicksort and Turing ring are the fine-grained apps; the other five are
substantially coarser.
"""

from __future__ import annotations

import pytest

from repro.harness.paper import table1


@pytest.mark.benchmark(group="table1")
def test_table1_granularity(benchmark):
    out = benchmark.pedantic(table1, rounds=1, iterations=1)
    print("\n" + out.rendered)
    gran = {row[0]: row[1] for row in out.rows}
    fine = [gran["quicksort"], gran["turing"]]
    coarse = [gran["kmeans"], gran["agglom"], gran["dmg"], gran["dmr"],
              gran["nbody"]]
    assert min(coarse) > max(fine) * 0.8, (
        "coarse apps should not be finer-grained than qsort/turing")
    # All tasks are sub-second but non-trivial.
    for app, g in gran.items():
        assert 0.01 < g < 1_000, app
