"""Topology ablation (paper §I, footnote 2).

"The victim-node selection policy has greater impact if the cluster is
not fully connected. For instance, in a cluster with ring topology it is
a common practice to chose nearest, or adjacent nodes first."

The ablation runs the same workload on a fully connected cluster and on
a ring: on the ring every cross-node hop multiplies transfer latency, so
the *same* scheduler pays more for distant steals — stealing still wins,
but by less.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec
from repro.harness.experiment import run_cell


def spec(topology: str) -> ClusterSpec:
    return ClusterSpec(n_places=16, workers_per_place=8, max_threads=12,
                       topology=topology)


@pytest.mark.benchmark(group="ablation-topology")
def test_ring_topology_taxes_distributed_steals(benchmark):
    def run():
        out = {}
        for topo in ("full", "ring"):
            cell = run_cell("turing", "DistWS", spec(topo),
                            sched_seeds=(1, 2))
            out[topo] = cell.mean_makespan_ms
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfull: {out['full']:.2f} ms, ring: {out['ring']:.2f} ms")
    # Multi-hop transfers make the ring no faster than full connectivity.
    assert out["ring"] >= out["full"] * 0.98


@pytest.mark.benchmark(group="ablation-topology")
def test_nearest_victims_help_on_ring(benchmark):
    """Footnote 2: on a non-fully-connected cluster, nearest-first victim
    selection is the sensible policy — it must not lose to random."""
    def run():
        out = {}
        for order in ("random", "nearest"):
            cell = run_cell("turing", "DistWS", spec("ring"),
                            sched_seeds=(1, 2),
                            sched_kwargs={"victim_order": order})
            out[order] = cell.mean_makespan_ms
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nring random: {out['random']:.2f} ms, "
          f"ring nearest: {out['nearest']:.2f} ms")
    assert out["nearest"] <= out["random"] * 1.05
