"""Fig. 6 — is the sensitive/flexible distinction really necessary?

Paper shape: at 128 workers DistWS beats the X10WS baseline on aggregate
and never degrades it meaningfully, while the non-selective DistWS-NS
gives back part (or all) of the gain — stealing the wrong tasks costs
cache locality, data movement, and copy-backs.
"""

from __future__ import annotations

import statistics

import pytest

from repro.harness.paper import fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_selectivity(benchmark, matrix_cells):
    out = benchmark.pedantic(
        fig6, kwargs=dict(cells=matrix_cells), rounds=1, iterations=1)
    print("\n" + out.rendered)
    gains_vs_x10 = []
    gains_vs_ns = []
    for app, x10, ns, dw in out.rows:
        gains_vs_x10.append(dw / x10)
        gains_vs_ns.append(dw / ns)
        # No-degradation claim, per app, with a small tolerance.
        assert dw / x10 > 0.93, f"{app}: DistWS degrades X10WS badly"
    gm_x10 = statistics.geometric_mean(gains_vs_x10)
    gm_ns = statistics.geometric_mean(gains_vs_ns)
    assert gm_x10 > 1.05, \
        f"DistWS should beat X10WS on aggregate, got {gm_x10:.3f}"
    assert gm_ns > 0.98, \
        f"DistWS should not lose to DistWS-NS on aggregate: {gm_ns:.3f}"
    # On the apps with heavy sensitive tasks the selectivity must pay.
    mixed = {row[0]: row for row in out.rows}
    for app in ("turing", "kmeans"):
        _, x10, ns, dw = mixed[app]
        assert dw >= ns * 0.97, f"{app}: NS should not beat DistWS"
