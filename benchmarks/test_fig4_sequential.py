"""Fig. 4 — sequential execution time per benchmark.

Paper shape: the applications span a wide range of sequential runtimes,
and a single worker under the parallel runtime is close to (but not
faster than) the pure sequential baseline.
"""

from __future__ import annotations

import pytest

from repro.harness.paper import fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_sequential_time(benchmark):
    out = benchmark.pedantic(fig4, rounds=1, iterations=1)
    print("\n" + out.rendered)
    for app, seq_ms, one_worker_ms in out.rows:
        assert seq_ms > 0
        # Runtime overhead exists but is bounded (< 25% on one worker).
        assert one_worker_ms >= seq_ms * 0.999, app
        assert one_worker_ms <= seq_ms * 1.25, app
