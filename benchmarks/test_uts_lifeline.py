"""§X — UTS under randomized stealing, DistWS, and lifelines.

Paper shape: "When we disable the lifeline-based load balancing, DistWS
achieves a 9% speedup over the randomized stealing approach" and "DistWS
does not incur any overhead on the UTS problem" (all tasks flexible).
The full lifeline scheduler wins in the paper; our simplified lifeline
lands within a few percent of DistWS (EXPERIMENTS.md notes the gap).
"""

from __future__ import annotations

import pytest

from repro.harness.paper import uts_study


@pytest.mark.benchmark(group="uts")
def test_uts_steal_strategy_comparison(benchmark):
    out = benchmark.pedantic(uts_study, rounds=1, iterations=1)
    print("\n" + out.rendered)
    makespans = {row[0]: row[1] for row in out.rows}
    # DistWS beats blind randomized stealing (paper: ~+9%).
    gain = makespans["RandomWS"] / makespans["DistWS"] - 1
    assert gain > 0.03, f"DistWS vs RandomWS gain too small: {gain:.3f}"
    # The lifeline scheduler is competitive with DistWS on UTS.
    assert makespans["Lifeline"] <= makespans["RandomWS"], \
        "lifelines should repair random stealing's misses"
