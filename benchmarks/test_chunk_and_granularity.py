"""§VIII.2 — the steal-chunk-size study and the micro-app granularity study.

Paper shape:

- "good performance is achieved ... when performing distributed stealing
  in chunk sizes of 2": chunk 2 is at (or within noise of) the sweet
  spot, and very large chunks over-steal;
- the five fine-grained micro applications (0.005-0.93 ms tasks) do NOT
  benefit from DistWS: "The DistWS algorithm performed worse on these
  smaller applications".
"""

from __future__ import annotations

import pytest

from repro.harness.paper import chunk_study, granularity_study


@pytest.mark.benchmark(group="chunk")
def test_chunk_size_study(benchmark):
    out = benchmark.pedantic(
        chunk_study, kwargs=dict(chunks=(1, 2, 4, 8)),
        rounds=1, iterations=1)
    print("\n" + out.rendered)
    makespans = {row[0]: row[1] for row in out.rows}
    best = min(makespans.values())
    # Chunk 2 is within 10% of the best chunk size.
    assert makespans[2] <= best * 1.10, makespans
    # Over-stealing in huge chunks does not beat chunk 2 meaningfully.
    assert makespans[8] >= makespans[2] * 0.95, makespans


@pytest.mark.benchmark(group="granularity")
def test_micro_app_granularity_study(benchmark):
    out = benchmark.pedantic(granularity_study, rounds=1, iterations=1)
    print("\n" + out.rendered)
    # Aggregate: DistWS does not achieve a meaningful gain on the
    # fine-grained apps (it performs the same or worse).
    gains = [row[4] for row in out.rows]
    assert max(gains) < 10.0, f"micro apps should not benefit: {gains}"
    import statistics
    assert statistics.fmean(gains) < 5.0, gains
