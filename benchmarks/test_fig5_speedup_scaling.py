"""Fig. 5 — speedup vs worker count (1..128), X10WS vs DistWS.

Paper shape:

- on a single node (<= 8 workers) DistWS does not beat X10WS — there are
  no cross-node steals to win, only extra deque bookkeeping ("execution
  over a single node results in slowdown in comparison to X10WS");
- with multiple nodes DistWS pulls ahead, and the margin grows with
  worker count ("DistWS exhibits larger impact for higher number of
  workers"), reaching 12-31% at high worker counts for the best apps.
"""

from __future__ import annotations

import statistics

import pytest

from repro.harness.paper import fig5

WORKER_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


@pytest.mark.benchmark(group="fig5")
def test_fig5_speedup_scaling(benchmark):
    out = benchmark.pedantic(
        fig5, kwargs=dict(worker_counts=WORKER_COUNTS,
                          sched_seeds=(1, 2)),
        rounds=1, iterations=1)
    print("\n" + out.rendered)
    series = out.extra["series"]

    single_node_gaps = []
    top_gains = []
    for app, data in series.items():
        x10 = data["X10WS"]
        dws = data["DistWS"]
        # Speedups grow with workers for both schedulers overall.
        assert dws[-1] > dws[0], app
        assert x10[-1] > x10[0], app
        # Single node: DistWS within a few percent of X10WS either way.
        for i, w in enumerate(WORKER_COUNTS):
            if w <= 8:
                single_node_gaps.append(dws[i] / x10[i])
        # At 128 workers DistWS >= X10WS (the no-degradation claim).
        top_gains.append(dws[-1] / x10[-1])

    # Single-node parity: geometric mean within 10%.
    gm = statistics.geometric_mean(single_node_gaps)
    assert 0.90 < gm < 1.10, f"single-node parity violated: {gm:.3f}"
    # Multi-node benefit: mean DistWS gain at 128 workers in the paper's
    # direction, with at least one app in the 12-31% headline band.
    mean_gain = statistics.geometric_mean(top_gains)
    assert mean_gain > 1.02, f"no aggregate DistWS benefit: {mean_gain:.3f}"
    assert max(top_gains) > 1.12, \
        f"no app reaches the paper's headline band: {max(top_gains):.3f}"
