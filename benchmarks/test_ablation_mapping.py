"""Ablation of Algorithm 1's idle/under-utilized mapping redirection
(DESIGN.md §5, item 3).

Lines 4-8 of Algorithm 1 redirect a flexible task to a *private* deque
when its place is idle or under-utilized, instead of always publishing it
on the shared deque.  The paper argues this "prioritizes the utilization
of all available cores ... and eliminates the cost of unwarranted steal
operations".  The ablation maps every flexible task to the shared deque
and measures the cost.
"""

from __future__ import annotations

import pytest

from repro.harness.experiment import run_cell
from repro.runtime.task import Task
from repro.sched.distws import DistWS


class AlwaysSharedDistWS(DistWS):
    """DistWS without the idle/under-utilized private redirection."""

    name = "DistWS-AlwaysShared"

    def map_task(self, task: Task, from_worker=None) -> None:
        if not task.is_flexible:
            self._push_private(task, from_worker)
        else:
            self._push_shared(task)


@pytest.mark.benchmark(group="ablation-mapping")
def test_idle_redirection_helps(benchmark):
    from repro.sched import SCHEDULERS
    SCHEDULERS.setdefault("DistWS-AlwaysShared", AlwaysSharedDistWS)

    def run():
        rows = {}
        for sched in ("DistWS", "DistWS-AlwaysShared"):
            cell = run_cell("turing", sched, sched_seeds=(1, 2))
            rows[sched] = (cell.mean_makespan_ms,
                           cell.mean(lambda r:
                                     r.stats.steals.total_attempts))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base_ms, base_attempts = rows["DistWS"]
    abl_ms, abl_attempts = rows["DistWS-AlwaysShared"]
    print(f"\nAlgorithm-1 mapping: {base_ms:.2f} ms "
          f"({base_attempts:.0f} steal attempts); always-shared: "
          f"{abl_ms:.2f} ms ({abl_attempts:.0f} attempts)")
    # Publishing everything forces workers to fight over the shared deque
    # for work that could have been handed to them directly: more steal
    # attempts, and no makespan win.
    assert abl_attempts > base_attempts
    assert base_ms <= abl_ms * 1.10
