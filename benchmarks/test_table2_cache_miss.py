"""Table II — L1 data-cache miss rates at 128 workers.

Paper shape: "the L1 data cache miss rates are higher for DistWS-NS
compared to that of DistWS" — the non-selective scheduler's random
steals drag foreign working sets through the caches.
"""

from __future__ import annotations

import statistics

import pytest

from repro.apps import PAPER_APPS
from repro.harness.paper import table2


@pytest.mark.benchmark(group="table2")
def test_table2_cache_miss(benchmark, matrix_cells):
    out = benchmark.pedantic(
        table2, kwargs=dict(cells=matrix_cells), rounds=1, iterations=1)
    print("\n" + out.rendered)
    rows = {r[0]: r for r in out.rows}
    ns_over_dw = []
    for app, x10, ns, dw in out.rows:
        assert 0 <= x10 <= 100 and 0 <= ns <= 100 and 0 <= dw <= 100
        ns_over_dw.append(ns / max(dw, 1e-9))
    # Aggregate: DistWS-NS misses at least as much as DistWS (the paper's
    # headline Table II direction), on geometric mean across the suite.
    gm = statistics.geometric_mean(ns_over_dw)
    assert gm > 0.98, f"NS should out-miss DistWS, got ratio {gm:.3f}"
    # Turing ring has the strongest per-place working-set reuse (the same
    # cells every iteration): the random steals' cache pollution must
    # show clearly there.
    _, _x10, ns, dw = rows["turing"]
    assert ns > dw * 1.05, "turing: NS miss rate should exceed DistWS"
