"""Shared fixtures for the paper-reproduction benchmarks.

The three-scheduler matrix at 128 workers feeds Tables II/III and
Figs. 6/7, so it is computed once per session and shared.

Benchmarks run at ``bench`` scale (the defaults documented in DESIGN.md);
they assert the paper's *shape* — who wins, in which direction the
miss-rate/message orderings go — not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.apps import PAPER_APPS
from repro.harness.paper import _three_scheduler_matrix

#: Scheduler seeds per cell (the paper averages 10 executions; a few
#: deterministic repetitions keep the full suite's runtime sane).
SCHED_SEEDS = (1, 2)


@pytest.fixture(scope="session")
def matrix_cells():
    """(app, scheduler) -> CellResult at 128 workers, bench scale."""
    return _three_scheduler_matrix(PAPER_APPS, SCHED_SEEDS, "bench")


def geomean(values):
    out = 1.0
    for v in values:
        out *= v
    return out ** (1.0 / len(values))
