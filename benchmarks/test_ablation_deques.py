"""Ablations of DistWS's deque design (DESIGN.md §5, items 1-2).

- **FIFO shared deque**: the paper argues the shared deque must serve
  the *oldest* task so thieves get the coarsest work ("Older tasks
  potentially contain the largest amount of work in the task graph").
  The ablation flips it to LIFO and checks DistWS loses (or at best
  ties) on a coarse recursive workload.
- **Chunked distributed steals**: chunk=2 vs chunk=1 on an irregular
  app (the §V-B3 design choice; also exercised by the chunk study).
"""

from __future__ import annotations

import statistics

import pytest

from repro.harness.experiment import run_cell


@pytest.mark.benchmark(group="ablation-deques")
def test_shared_deque_fifo_vs_lifo(benchmark):
    def run():
        rows = {}
        for fifo in (True, False):
            cell = run_cell("dmg", "DistWS", sched_seeds=(1, 2, 3),
                            sched_kwargs={"shared_fifo": fifo})
            rows[fifo] = cell.mean_makespan_ms
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFIFO shared deque: {rows[True]:.2f} ms, "
          f"LIFO ablation: {rows[False]:.2f} ms")
    # FIFO (steal-the-oldest) should not lose to LIFO by more than noise.
    assert rows[True] <= rows[False] * 1.08


@pytest.mark.benchmark(group="ablation-deques")
def test_chunked_steals_help_peers(benchmark):
    def run():
        rows = {}
        for chunk in (1, 2):
            cell = run_cell("turing", "DistWS", sched_seeds=(1, 2),
                            sched_kwargs={"remote_chunk_size": chunk})
            rows[chunk] = cell.mean_makespan_ms
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nchunk=1: {rows[1]:.2f} ms, chunk=2: {rows[2]:.2f} ms")
    # Chunk 2 within noise of (or better than) chunk 1.
    assert rows[2] <= rows[1] * 1.10
