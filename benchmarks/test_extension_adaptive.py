"""Extension benchmark: annotation-free adaptive classification.

The paper leaves runtime-derived locality classification as an unexplored
alternative to annotations (§II).  AdaptiveDistWS classifies tasks from
granularity, transfer economy, and result affinity alone.  Expected
shape: the adaptive scheduler recovers a solid share of annotated
DistWS's advantage over X10WS — and annotations never *hurt* (the
programmer knows algorithmic intent the classifier cannot see).
"""

from __future__ import annotations

import statistics

import pytest

from repro.harness.experiment import run_cell

APPS = ("turing", "dmg", "kmeans")


@pytest.mark.benchmark(group="extension-adaptive")
def test_adaptive_classification_recovers_gains(benchmark):
    def run():
        rows = {}
        for app in APPS:
            per = {}
            for sched in ("X10WS", "DistWS", "AdaptiveDistWS"):
                cell = run_cell(app, sched, sched_seeds=(1, 2))
                per[sched] = cell.mean_makespan_ms
            rows[app] = per
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    recovery = []
    for app, per in rows.items():
        gain_annotated = per["X10WS"] / per["DistWS"] - 1
        gain_adaptive = per["X10WS"] / per["AdaptiveDistWS"] - 1
        print(f"\n{app}: X10WS {per['X10WS']:.1f} ms, DistWS "
              f"{per['DistWS']:.1f} ms ({100 * gain_annotated:+.1f}%), "
              f"Adaptive {per['AdaptiveDistWS']:.1f} ms "
              f"({100 * gain_adaptive:+.1f}%)")
        if gain_annotated > 0.02:
            recovery.append(gain_adaptive / gain_annotated)
        # The adaptive scheduler must never badly degrade the baseline.
        assert per["AdaptiveDistWS"] <= per["X10WS"] * 1.10, app
    # On the apps where annotations help, the classifier recovers a
    # meaningful share of the benefit without any programmer input.
    assert recovery, "expected at least one app with annotated gains"
    assert statistics.fmean(recovery) > 0.35, recovery
