"""Table III — messages transmitted across nodes at 128 workers.

Paper shape: per app, X10WS < DistWS < DistWS-NS.  The selective
scheduler pays more than the no-distributed-stealing baseline (stealing
is not free) but far less than the non-selective scheduler, which hauls
locality-sensitive working sets across the interconnect.
"""

from __future__ import annotations

import statistics

import pytest

from repro.apps import PAPER_APPS
from repro.harness.paper import table3


@pytest.mark.benchmark(group="table3")
def test_table3_messages(benchmark, matrix_cells):
    out = benchmark.pedantic(
        table3, kwargs=dict(cells=matrix_cells), rounds=1, iterations=1)
    print("\n" + out.rendered)
    ratios = []
    for app, x10, ns, dw in out.rows:
        assert dw >= x10, f"{app}: DistWS should send at least X10WS"
        # Per app NS is at least in DistWS's neighbourhood (a mild
        # tolerance: on all-flexible apps DistWS steals more, so its
        # closure traffic can approach NS's)...
        assert ns > dw * 0.9, f"{app}: NS messages implausibly low"
        ratios.append(ns / max(dw, 1))
    # ...and across the suite NS transmits clearly more than DistWS.
    gm = statistics.geometric_mean(ratios)
    assert gm > 1.10, f"NS should out-message DistWS overall: {gm:.3f}"
