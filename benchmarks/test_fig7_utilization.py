"""Fig. 7 — per-node CPU utilization.

Paper shape: X10WS shows "highly disproportionate node utilization"
(~35% average disparity); with DistWS the variance drops sharply (~13%)
and the mean utilization is the highest of the three schedulers.
"""

from __future__ import annotations

import statistics

import pytest

from repro.apps import PAPER_APPS
from repro.harness.paper import fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_utilization(benchmark, matrix_cells):
    out = benchmark.pedantic(
        fig7, kwargs=dict(cells=matrix_cells), rounds=1, iterations=1)
    print("\n" + out.rendered)
    spread = {(r[0], r[1]): r[3] for r in out.rows}
    mean = {(r[0], r[1]): r[2] for r in out.rows}
    x10_spreads = [spread[(a, "X10WS")] for a in PAPER_APPS]
    dw_spreads = [spread[(a, "DistWS")] for a in PAPER_APPS]
    # Utilization disparity collapses under DistWS.
    assert statistics.fmean(dw_spreads) < statistics.fmean(x10_spreads), \
        "DistWS should even out node utilization"
    # And DistWS's mean utilization is at least X10WS's.
    x10_mean = statistics.fmean(mean[(a, "X10WS")] for a in PAPER_APPS)
    dw_mean = statistics.fmean(mean[(a, "DistWS")] for a in PAPER_APPS)
    assert dw_mean >= x10_mean * 0.98
