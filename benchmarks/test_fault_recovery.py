"""Chaos benchmark: resilient distributed work-stealing under faults.

Three scenarios against a synthetic flexible fan-out (48 tasks of 1M
cycles each on a 4-place x 2-worker cluster):

- **crash recovery** — place 2 fail-stops halfway through the fault-free
  makespan.  DistWS must re-execute every lost flexible task exactly
  once on the survivors, finish within 2x the fault-free makespan, and
  the fault counters must balance;
- **lossy interconnect** — 8% of steal and ship messages are dropped;
  every drop must be accounted for by either a transport retransmission
  or a thief-side steal timeout, with no work lost;
- **straggler** — one place runs 4x slower; the run completes with work
  conserved and a longer makespan.

These are robustness properties of the runtime, not paper artifacts:
the paper's X10 runtime assumes fail-free executions (§VII), so this
benchmark documents how far the reproduction extends beyond it.
"""

from __future__ import annotations

import pytest

from repro import ClusterSpec, DistWS, FaultInjector, FaultPlan, SimRuntime
from repro.apgas import Apgas

N_TASKS = 48
WORK = 1_000_000


def cluster():
    return ClusterSpec(n_places=4, workers_per_place=2, max_threads=4)


def fanout(n_places, executed=None):
    """48 flexible leaves, homes round-robin over ``n_places``."""
    def program(rt):
        ap = Apgas(rt)

        def leaf(i):
            def body(ctx):
                if executed is not None:
                    executed.append(i)
            return body

        for i in range(N_TASKS):
            ap.async_at(i % n_places, leaf(i), work=WORK,
                        flexible=True, label="leaf")
    return program


@pytest.fixture(scope="module")
def fault_free_makespan():
    rt = SimRuntime(cluster(), DistWS(), seed=1)
    return rt.run(fanout(4)).makespan_cycles


def run_chaos(plan, n_places=4):
    rt = SimRuntime(cluster(), DistWS(), seed=1)
    injector = FaultInjector(plan).attach(rt)
    executed = []
    stats = rt.run(fanout(n_places, executed=executed))
    return stats, injector, executed


@pytest.mark.benchmark(group="faults")
def test_crash_recovery_conserves_work(benchmark, fault_free_makespan):
    plan = FaultPlan.parse("crash:p2@0.5").resolved(fault_free_makespan)
    stats, injector, executed = benchmark.pedantic(
        run_chaos, args=(plan,), rounds=1, iterations=1)
    faults = stats.faults
    # Exactly-once re-execution of every lost flexible task.
    assert sorted(executed) == list(range(N_TASKS))
    assert stats.tasks_executed == stats.tasks_spawned == N_TASKS
    injector.ledger.assert_work_conserved()
    assert faults.places_crashed == [2]
    # The crash hit live work: something was lost or caught in flight.
    assert faults.tasks_lost + faults.committed_at_crash > 0
    assert faults.tasks_reexecuted == faults.tasks_lost
    # Bounded slowdown: survivors absorb the lost place's share.
    assert stats.makespan_cycles <= 2.0 * fault_free_makespan
    if faults.tasks_lost:
        assert faults.recovery_latency_cycles > 0


@pytest.mark.benchmark(group="faults")
def test_lossy_interconnect_accounts_every_drop(benchmark):
    # All homes at p0 so three places must steal across the (lossy) wire.
    plan = FaultPlan.parse("loss:steal=0.08,loss:ship=0.08,seed:5")
    stats, injector, executed = benchmark.pedantic(
        run_chaos, args=(plan,), kwargs={"n_places": 1},
        rounds=1, iterations=1)
    faults = stats.faults
    assert sorted(executed) == list(range(N_TASKS))
    injector.ledger.assert_work_conserved()
    assert faults.dropped_total > 0
    # Steal requests/replies are single-packet, as are leaf closures, so
    # packet drops == message drops: every one was paid for either by a
    # transparent retransmission (ship) or a thief timeout (steal).
    assert faults.retransmits + faults.steal_timeouts == faults.dropped_total


@pytest.mark.benchmark(group="faults")
def test_straggler_completes_with_work_conserved(benchmark,
                                                 fault_free_makespan):
    plan = FaultPlan.parse("straggle:p3x4")
    stats, injector, executed = benchmark.pedantic(
        run_chaos, args=(plan,), rounds=1, iterations=1)
    assert sorted(executed) == list(range(N_TASKS))
    injector.ledger.assert_work_conserved()
    assert stats.makespan_cycles > fault_free_makespan
