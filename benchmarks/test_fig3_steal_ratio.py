"""Fig. 3 — steals-to-task ratio per benchmark (DistWS, 128 workers).

Paper shape: the ratios are small (steals are rare events relative to
task counts) yet the absolute number of steals is significant, which is
what makes the benchmarks suitable for evaluating the algorithm.  Our
instances are ~10^3-10^4x smaller than the paper's, so the ratios are
proportionally larger (documented in EXPERIMENTS.md); the qualitative
claim checked here is "steals happen, and are a small minority of tasks".
"""

from __future__ import annotations

import pytest

from repro.harness.paper import fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_steal_ratio(benchmark):
    out = benchmark.pedantic(fig3, rounds=1, iterations=1)
    print("\n" + out.rendered)
    for app, steals, remote, tasks, ratio, remote_ratio in out.rows:
        # Steals occur for every irregular app...
        assert steals > 0, app
        # ...every app executes more tasks than it steals...
        assert ratio < 1.0, f"{app}: steal ratio {ratio} >= 1"
        # ...and the expensive distributed steals are a small minority.
        assert remote_ratio < 0.25, \
            f"{app}: remote steals {remote_ratio:.2f} of tasks"
