"""Snapshot diffing for regression tracking (``repro diff-stats``).

Compares two ``RunStats.snapshot()`` JSON documents (as written by
``repro profile --snapshot``) leaf-by-leaf: nested dicts flatten to
dotted paths, lists to indexed paths, and every changed numeric leaf
gets an absolute and relative delta.  The CLI exits non-zero when any
relative delta exceeds ``--fail-over`` — the hook a perf-regression CI
job needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


def flatten(obj: object, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into ``{dotted.path[i]: leaf}``."""
    out: Dict[str, object] = {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(obj[key], path))
    elif isinstance(obj, (list, tuple)):
        for i, item in enumerate(obj):
            out.update(flatten(item, f"{prefix}[{i}]"))
    else:
        out[prefix or "(root)"] = obj
    return out


@dataclass
class DiffRow:
    """One changed leaf between two snapshots."""

    key: str
    base: object
    cand: object
    #: Absolute and relative change; ``None`` for non-numeric leaves or
    #: when one side is missing / the baseline is zero.
    delta: Optional[float] = None
    pct: Optional[float] = None


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_snapshots(base: object, cand: object) -> List[DiffRow]:
    """Changed leaves between two snapshots, sorted by path."""
    fa, fb = flatten(base), flatten(cand)
    rows: List[DiffRow] = []
    for key in sorted(set(fa) | set(fb)):
        a, b = fa.get(key), fb.get(key)
        if key in fa and key in fb and a == b:
            continue
        row = DiffRow(key=key, base=a, cand=b)
        if _numeric(a) and _numeric(b):
            row.delta = b - a
            if a != 0:
                row.pct = 100.0 * (b - a) / a
        rows.append(row)
    return rows


def max_regression_pct(rows: List[DiffRow]) -> float:
    """Largest absolute relative change across numeric rows (0 if none)."""
    pcts = [abs(r.pct) for r in rows if r.pct is not None]
    return max(pcts) if pcts else 0.0
