"""The event bus: clock-stamped events from the runtime to pluggable sinks.

Usage (attach *before* the run, like the fault injector)::

    bus = EventBus(sample_interval=100_000)
    metrics = bus.subscribe(MetricsRegistry())
    bus.subscribe(ChromeTraceSink("run.trace.json"))
    bus.attach(rt)
    stats = app.run(rt)            # sinks are flushed at run end
    stats.snapshot()["obs"]        # event counts + metrics block

Pay-for-what-you-use contract: :meth:`EventBus.attach` with **no sinks
subscribed is a no-op** — the runtime's ``obs`` attribute stays ``None``
and every instrumentation point short-circuits on that, leaving the run
byte-identical to an unobserved one (the zero-overhead regression test
asserts this).  With sinks attached, events are dispatched synchronously
but never consume *simulated* time, so the simulated schedule (makespan,
steal counts, …) is also unchanged — observation only costs wall clock.

Sampling: when ``sample_interval`` (cycles) is set, the bus piggybacks on
event traffic — the first event at or past the next due time triggers one
``sample`` event per place (queue depths, outstanding distributed steal
requests).  No simulated process is created, so sampling cannot perturb
the schedule either.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import ConfigError
from repro.obs.events import EVENT_SCHEMA, ObsEvent
from repro.obs.sinks import Sink

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import SimRuntime


class EventBus:
    """Dispatches typed, clock-stamped runtime events to subscribed sinks."""

    def __init__(self, sample_interval: Optional[float] = None) -> None:
        if sample_interval is not None and sample_interval <= 0:
            raise ConfigError("sample_interval must be positive")
        self.sample_interval = sample_interval
        self.rt: Optional["SimRuntime"] = None
        self.counts: Counter = Counter()
        self._sinks: List[Sink] = []
        self._next_sample = 0.0
        self._sampling = False
        self._clock = None  # standalone wall clock (attach_clock)
        #: thief place -> worker indices with an unresolved steal request.
        self._outstanding: Dict[int, Set[int]] = {}

    # -- wiring ------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the bus is attached to a runtime."""
        return self.rt is not None

    def subscribe(self, sink: Sink) -> Sink:
        """Add a sink (returned for chaining).

        Subscribing after :meth:`attach` is allowed — the sink is opened
        immediately — but events emitted before the subscription are
        gone; subscribe first when you need the full stream.
        """
        self._sinks.append(sink)
        if self.rt is not None or self._clock is not None:
            sink.open(self, self.rt)
        return sink

    def attach(self, rt: "SimRuntime") -> "EventBus":
        """Install the bus into ``rt``.  **No-op when no sinks subscribed.**"""
        if rt._started:
            raise ConfigError("attach the event bus before running")
        if not self._sinks:
            return self  # zero sinks: zero hooks, zero overhead
        if rt.obs is not None:
            raise ConfigError("runtime already has an event bus")
        if self.rt is not None:
            raise ConfigError("event bus already attached to a runtime")
        if self._clock is not None:
            raise ConfigError("event bus is in standalone (clock) mode")
        self.rt = rt
        rt.obs = self
        rt.network.obs = self
        for sink in self._sinks:
            sink.open(self, rt)
        return self

    def attach_clock(self, clock=None) -> "EventBus":
        """Use the bus *standalone* — no runtime, host-clock timestamps.

        For harness-side event sources (the experiment store's lease /
        reaper lifecycle) where there is no simulated clock.  Only sinks
        that ignore the runtime in ``open`` make sense here (``InMemory``
        and ``Jsonl``; the Chrome sink needs a runtime's cost model).
        ``clock`` defaults to ``time.time``.
        """
        import time

        if self.rt is not None:
            raise ConfigError("bus already attached to a runtime")
        if self._clock is not None:
            raise ConfigError("bus already has a standalone clock")
        self._clock = clock if clock is not None else time.time
        for sink in self._sinks:
            sink.open(self, None)
        return self

    # -- emission ----------------------------------------------------------
    def emit(self, _kind: str, **fields: object) -> None:
        """Dispatch one event, stamped with the current simulated time.

        The event kind is positional-only in spirit (named ``_kind``) so
        schema field names — ``msg_send`` carries a ``kind`` field — can
        never collide with it.
        """
        kind = _kind
        schema = EVENT_SCHEMA.get(kind)
        if schema is None:
            raise ConfigError(f"unknown event kind {kind!r}")
        if len(fields) != len(schema) or any(f not in fields
                                             for f in schema):
            raise ConfigError(
                f"event {kind!r} fields {sorted(fields)} do not match "
                f"schema {list(schema)}")
        now = self.rt.env.now if self.rt is not None else self._clock()
        self.counts[kind] += 1
        if kind == "steal_request":
            self._outstanding.setdefault(
                fields["place"], set()).add(fields["worker"])  # type: ignore[arg-type]
        elif kind in ("chunk_arrive", "steal_miss"):
            self._outstanding.get(fields["place"], set()).discard(  # type: ignore[arg-type]
                fields["worker"])
        ev = ObsEvent(now, kind, fields)
        for sink in self._sinks:
            sink.on_event(ev)
        if (self.sample_interval is not None and not self._sampling
                and now >= self._next_sample):
            self._sample(now)

    def _sample(self, now: float) -> None:
        """Emit one ``sample`` event per place (re-entrancy guarded)."""
        self._sampling = True
        try:
            self._next_sample = now + self.sample_interval
            for place in self.rt.places:
                self.emit(
                    "sample",
                    place=place.place_id,
                    private=place.queued_private(),
                    shared=len(place.shared),
                    mailbox=len(place.mailbox),
                    outstanding=len(
                        self._outstanding.get(place.place_id, ())))
        finally:
            self._sampling = False

    def outstanding_steals(self, place_id: int) -> int:
        """Unresolved distributed steal requests issued by ``place_id``."""
        return len(self._outstanding.get(place_id, ()))

    # -- run end -----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Deterministic summary merged into ``RunStats.snapshot()["obs"]``.

        Event counts by kind, plus one block per sink that exposes a
        ``stats_key`` (the metrics registry reports under ``"metrics"``).
        """
        snap: Dict[str, object] = {
            "events": {k: self.counts[k] for k in sorted(self.counts)},
        }
        for sink in self._sinks:
            key = sink.stats_key
            if key is not None:
                snap[key] = sink.snapshot()
        return snap

    def close(self) -> None:
        """Flush and close every sink (called by the runtime at run end)."""
        for sink in self._sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "attached" if self.active else "detached"
        return f"<EventBus {state} sinks={len(self._sinks)}>"
