"""Fleet observability: per-run telemetry shipping, rollups, merged traces.

``repro.obs`` (PR 2) instruments one process; the experiment store
(PR 6) runs sweeps across many.  This module closes the gap — it is the
glue between the two layers:

- **Shipping** (:class:`FleetTelemetry`, :func:`observe_run`): a store
  worker wraps each claimed cell's simulation in its own
  :class:`~repro.obs.bus.EventBus` + :class:`MetricsRegistry` (and
  optionally a per-cell :class:`ChromeTraceSink` shard), then hands the
  serialized snapshot to :meth:`ExperimentStore.complete
  <repro.harness.db.ExperimentStore.complete>` — the telemetry row is
  written in the *same lease-fenced transaction* as the ``done`` status
  flip, so telemetry is exactly-once even under SIGKILL/restart.  The
  observed ``RunStats`` has its ``obs`` block stripped before the result
  is pickled, keeping stored results byte-identical to bare serial runs
  (the store-smoke differential enforces this).
- **Rollups** (:func:`rollup_histograms`): per-run histogram snapshots
  merge exactly (log₂ buckets are value-determined) into fleet-wide
  distributions — the steal-latency aggregate of Gast et al.
  (arXiv:1805.00857) over a whole campaign, via ``repro query --rollup``.
- **Merged traces** (:func:`merge_chrome_traces`): per-cell Chrome trace
  shards concatenate into one Perfetto file with one *process* row per
  store worker and one thread lane per simulated (place, worker), cells
  laid end to end on each worker's timeline.
- **Live view** (:class:`FleetView`, :func:`render_top`): a read-only
  WAL connection safe to point at a store other processes are actively
  draining; backs the ``repro top`` dashboard (pending/leased/done/
  failed, per-worker throughput and lease age, ETA, recent failures).

Pay-for-what-you-use: none of this touches a run without a store, and
``FleetTelemetry(enabled=False)`` restores the exact pre-fleet drain.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import Histogram

#: Worker states surfaced in ``worker_status`` rows / ``repro top``.
WORKER_STATES = ("running", "idle", "stopped", "dead")


@dataclass(frozen=True)
class FleetTelemetry:
    """What a store worker ships per completed cell.

    The default ships metric histograms and counters (cheap: one
    in-memory sink, no files); ``trace_dir`` additionally writes one
    Chrome trace shard per cell for later merging; ``sample_interval``
    (simulated cycles) turns on the bus's queue-depth sampler.
    ``enabled=False`` is the bare pre-fleet drain — no bus is built and
    the simulation path is byte-identical to PR-6 behaviour.
    """

    enabled: bool = True
    sample_interval: Optional[float] = None
    trace_dir: Optional[str] = None


def shard_filename(owner: str, key: str) -> str:
    """Filesystem-safe per-cell trace shard name (owner + cell key)."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "-", owner)
    return f"{safe}--{key[:16]}.trace.json"


def observe_run(spec, key: str, owner: str, attempt: int,
                fleet: FleetTelemetry):
    """Simulate one claimed cell under a private event bus.

    Returns ``(result, telemetry, trace_path)``: the :class:`RunResult`
    with its ``stats.obs`` block *stripped* (stored results must stay
    byte-identical to unobserved serial runs), the JSON-safe telemetry
    payload destined for the store's ``telemetry`` table, and the Chrome
    trace shard path (``None`` unless ``fleet.trace_dir`` is set).
    """
    from repro.harness.parallel import simulate
    from repro.obs.bus import EventBus
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sinks import ChromeTraceSink

    bus = EventBus(sample_interval=fleet.sample_interval)
    bus.subscribe(MetricsRegistry())
    trace_path = None
    if fleet.trace_dir:
        os.makedirs(fleet.trace_dir, exist_ok=True)
        trace_path = os.path.join(fleet.trace_dir,
                                  shard_filename(owner, key))
        bus.subscribe(ChromeTraceSink(trace_path))
    result = simulate(spec, bus=bus)
    stats = result.stats
    obs_snap = stats.obs
    # Observation only adds the "obs" snapshot block (the zero-overhead
    # contract pins every simulated metric); strip it so the pickled
    # result matches a bare run byte for byte.
    stats.obs = None
    wall = result.wall_seconds
    telemetry = {
        "attempt": attempt,
        "cache": {"hits": stats.cache_hits, "misses": stats.cache_misses},
        "faults": (None if stats.faults is None
                   else stats.faults.snapshot()),
        "makespan_cycles": stats.makespan_cycles,
        "obs": obs_snap,
        "sims_per_sec": (1.0 / wall) if wall > 0 else 0.0,
        "tasks_executed": stats.tasks_executed,
        "wall_seconds": wall,
    }
    return result, telemetry, trace_path


# ---------------------------------------------------------------------------
# Sweep-wide rollups.

def rollup_histograms(
        snapshots: Iterable[Optional[Mapping]]) -> Dict[str, Histogram]:
    """Merge per-run telemetry payloads into fleet-wide histograms.

    Accepts the ``data`` dicts of telemetry rows (or raw run snapshots
    carrying an ``obs.metrics.histograms`` block); rows without metrics
    contribute nothing.  Counts and sums are exact: the rollup's count
    per histogram equals the sum of the per-run counts.
    """
    merged: Dict[str, Histogram] = {}
    for snap in snapshots:
        if not snap:
            continue
        obs = snap.get("obs") or {}
        metrics = obs.get("metrics") or {}
        for name, hsnap in (metrics.get("histograms") or {}).items():
            hist = Histogram.from_snapshot(hsnap)
            if name in merged:
                merged[name].merge(hist)
            else:
                merged[name] = hist
    return merged


def rollup_rows(rollup: Dict[str, Histogram]) -> List[List[object]]:
    """Table rows (name, count, mean, p0, p50, p90, p99, max) of a rollup."""
    rows: List[List[object]] = []
    for name in sorted(rollup):
        h = rollup[name]
        rows.append([name, h.count, round(h.mean, 1), h.min,
                     h.percentile(0.5), h.percentile(0.9),
                     h.percentile(0.99), h.max])
    return rows


# ---------------------------------------------------------------------------
# Merged Chrome traces.

def merge_chrome_traces(shards: Sequence[Tuple[str, str]],
                        out_path: Optional[str] = None,
                        gap_us: float = 1000.0) -> Dict[str, object]:
    """Merge per-cell Chrome trace shards into one Perfetto document.

    ``shards`` is ``(owner, path)`` pairs in completion order.  Layout of
    the merged trace: one *process* row per store worker (``pid`` =
    first-seen owner index, named after the owner), one thread lane per
    simulated ``(place, worker)`` pair, and each owner's cells laid end
    to end along its timeline (every shard starts at its run's t=0, so
    successive cells are offset by the previous cell's extent plus
    ``gap_us``).  Counter tracks are suffixed with their source place so
    they stay distinguishable after the pid remap.
    """
    owners: List[str] = []
    by_owner: Dict[str, List[str]] = {}
    for owner, path in shards:
        if owner not in by_owner:
            owners.append(owner)
            by_owner[owner] = []
        by_owner[owner].append(path)

    merged: List[Dict[str, object]] = []
    for pid, owner in enumerate(owners):
        merged.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": f"worker {owner}"}})
        merged.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"sort_index": pid}})
        offset = 0.0
        lanes: Dict[Tuple[int, int], int] = {}
        for path in by_owner[owner]:
            with open(path) as fh:
                doc = json.load(fh)
            extent = 0.0
            for ev in doc.get("traceEvents", []):
                ph = ev.get("ph")
                if ph == "M":
                    continue  # shard metadata is re-emitted per lane
                src = (int(ev.get("pid", 0)), int(ev.get("tid", 0)))
                tid = lanes.get(src)
                if tid is None:
                    tid = lanes[src] = len(lanes)
                    merged.append({
                        "name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid,
                        "args": {"name": f"p{src[0]}.w{src[1]}"}})
                    merged.append({
                        "name": "thread_sort_index", "ph": "M", "pid": pid,
                        "tid": tid,
                        "args": {"sort_index": src[0] * 4096 + src[1]}})
                out = dict(ev)
                out["pid"] = pid
                out["tid"] = tid
                ts = float(ev.get("ts", 0.0)) + offset
                out["ts"] = ts
                if ph == "C":
                    out["name"] = f"{ev.get('name', 'counter')} (p{src[0]})"
                merged.append(out)
                extent = max(extent, ts + float(ev.get("dur", 0.0)))
            offset = extent + gap_us
    doc = {"traceEvents": merged, "displayTimeUnit": "ms"}
    if out_path is not None:
        with open(out_path, "w") as fh:
            json.dump(doc, fh)
    return doc


def store_trace_shards(store) -> List[Tuple[str, str]]:
    """``(owner, shard_path)`` pairs of a store's telemetry, completion-
    ordered, restricted to shards that still exist on disk."""
    shards = []
    for row in store.telemetry_rows():
        if row.trace_path and os.path.exists(row.trace_path):
            shards.append((row.owner, row.trace_path))
    return shards


# ---------------------------------------------------------------------------
# The live fleet view (read-only; safe beside active workers).

@dataclass(frozen=True)
class WorkerView:
    """One ``worker_status`` row as ``repro top`` shows it."""

    owner: str
    state: str
    current_key: Optional[str]
    started_at: float
    last_seen: float
    cells_done: int
    cells_failed: int
    leases: int
    heartbeat_misses: int
    reclaims: int
    quarantines: int

    def throughput(self) -> float:
        """Completed cells per second over this worker's lifetime."""
        elapsed = self.last_seen - self.started_at
        return self.cells_done / elapsed if elapsed > 0 else 0.0


@dataclass(frozen=True)
class FailureView:
    key: str
    app: Optional[str]
    scheduler: Optional[str]
    attempts: int
    error: str  # last line


@dataclass(frozen=True)
class FleetSnapshot:
    """Everything one ``repro top`` refresh shows, read in one pass."""

    path: str
    now: float
    counts: Dict[str, int]
    workers: List[WorkerView] = field(default_factory=list)
    failures: List[FailureView] = field(default_factory=list)
    telemetry_runs: int = 0
    mean_wall_seconds: float = 0.0
    total_wall_seconds: float = 0.0
    recent_done: int = 0  # cells finished in the last minute
    recent_window: float = 60.0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def open_cells(self) -> int:
        return self.counts.get("pending", 0) + self.counts.get("leased", 0)

    def active_workers(self) -> int:
        return sum(1 for w in self.workers if w.state == "running")

    def fleet_rate(self) -> float:
        """Fleet cells/sec over the trailing window (0 when idle)."""
        return self.recent_done / self.recent_window

    def eta_seconds(self) -> Optional[float]:
        """Naive drain ETA; ``None`` when it cannot be estimated."""
        if not self.open_cells:
            return 0.0
        rate = self.fleet_rate()
        if rate > 0:
            return self.open_cells / rate
        active = self.active_workers()
        if self.mean_wall_seconds > 0 and active:
            return self.open_cells * self.mean_wall_seconds / active
        return None


class FleetView:
    """Read-only window onto a live experiment store.

    Opens the SQLite file with ``mode=ro`` (WAL readers never block the
    workers' writes, and a read-only connection cannot perturb the store
    even by accident), falling back to a normal connection where the
    read-only VFS path is unavailable.  Pre-fleet stores — no
    ``telemetry``/``worker_status`` tables — degrade to counts-only
    views instead of erroring.
    """

    def __init__(self, path: str, clock=time.time) -> None:
        if not os.path.exists(path):
            raise ConfigError(f"no store at {path}")
        self.path = path
        self.clock = clock
        uri = f"file:{os.path.abspath(path)}?mode=ro"
        try:
            self._conn = sqlite3.connect(uri, uri=True, timeout=2.0)
            self.readonly = True
        except sqlite3.OperationalError:  # pragma: no cover - odd VFS
            self._conn = sqlite3.connect(path, timeout=2.0)
            self.readonly = False
        self._conn.row_factory = sqlite3.Row

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "FleetView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _rows(self, query: str, params: tuple = ()) -> list:
        """Run a read, treating missing tables (old stores) as empty."""
        try:
            return self._conn.execute(query, params).fetchall()
        except sqlite3.OperationalError as exc:
            if "no such table" in str(exc).lower():
                return []
            raise

    def snapshot(self, failures_limit: int = 5,
                 recent_window: float = 60.0) -> FleetSnapshot:
        now = self.clock()
        counts = {status: 0 for status in
                  ("pending", "leased", "done", "failed")}
        for row in self._rows("SELECT status, COUNT(*) AS n FROM "
                              "experiments GROUP BY status"):
            counts[row["status"]] = row["n"]
        workers = [WorkerView(owner=r["owner"], state=r["state"],
                              current_key=r["current_key"],
                              started_at=r["started_at"],
                              last_seen=r["last_seen"],
                              cells_done=r["cells_done"],
                              cells_failed=r["cells_failed"],
                              leases=r["leases"],
                              heartbeat_misses=r["heartbeat_misses"],
                              reclaims=r["reclaims"],
                              quarantines=r["quarantines"])
                   for r in self._rows(
                       "SELECT * FROM worker_status "
                       "ORDER BY started_at, owner")]
        failures = []
        for r in self._rows(
                "SELECT key, payload, attempts, error FROM experiments "
                "WHERE status = 'failed' "
                "ORDER BY COALESCE(finished_at, created_at) DESC, key "
                "LIMIT ?", (failures_limit,)):
            try:
                payload = json.loads(r["payload"])
            except (TypeError, ValueError):
                payload = {}
            lines = [ln for ln in (r["error"] or "").strip().splitlines()
                     if ln.strip()]
            failures.append(FailureView(
                key=r["key"], app=payload.get("app"),
                scheduler=payload.get("scheduler"),
                attempts=r["attempts"],
                error=lines[-1] if lines else "?"))
        tel = self._rows("SELECT COUNT(*) AS n, "
                         "COALESCE(SUM(wall_seconds), 0) AS wall "
                         "FROM telemetry")
        runs = tel[0]["n"] if tel else 0
        wall = tel[0]["wall"] if tel else 0.0
        recent = self._rows(
            "SELECT COUNT(*) AS n FROM experiments WHERE status = 'done' "
            "AND finished_at > ?", (now - recent_window,))
        return FleetSnapshot(
            path=self.path, now=now, counts=counts, workers=workers,
            failures=failures, telemetry_runs=runs,
            mean_wall_seconds=(wall / runs if runs else 0.0),
            total_wall_seconds=wall,
            recent_done=recent[0]["n"] if recent else 0,
            recent_window=recent_window)


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = int(seconds)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h:d}:{m:02d}:{s:02d}"


def _progress_bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * done / total)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_top(snap: FleetSnapshot) -> str:
    """One ``repro top`` frame as plain text (testable, pipe-friendly)."""
    from repro.harness.tables import render_table

    c = snap.counts
    done = c.get("done", 0)
    header = (f"repro top — {snap.path} — "
              f"{time.strftime('%H:%M:%S', time.localtime(snap.now))}")
    bar = (f"{_progress_bar(done + c.get('failed', 0), snap.total)} "
           f"{done}/{snap.total} done · {c.get('leased', 0)} leased · "
           f"{c.get('pending', 0)} pending · {c.get('failed', 0)} failed")
    rate = snap.fleet_rate()
    line = (f"fleet {rate:.2f} cells/s ({snap.recent_window:.0f}s window) "
            f"· mean cell {snap.mean_wall_seconds:.2f}s "
            f"· telemetry {snap.telemetry_runs} row(s) "
            f"· ETA {_fmt_eta(snap.eta_seconds())}")
    parts = [header, "", bar, line]
    if snap.workers:
        rows = []
        for w in snap.workers:
            age = max(0.0, snap.now - w.last_seen)
            rows.append([
                w.owner[:28], w.state,
                (w.current_key or "")[:10] or "-",
                w.cells_done, w.cells_failed, w.leases,
                w.reclaims + w.quarantines,
                f"{age:.1f}s", f"{w.throughput():.2f}"])
        parts.append("")
        parts.append(render_table(
            ["owner", "state", "cell", "done", "fail", "leases",
             "reclaimed", "lease age", "cells/s"], rows,
            title=f"workers ({len(snap.workers)})"))
    if snap.failures:
        parts.append("")
        parts.append("recent failures:")
        for f in snap.failures:
            parts.append(f"  {f.key[:12]} {f.app} x {f.scheduler} "
                         f"(attempt {f.attempts}): {f.error}")
    return "\n".join(parts)
