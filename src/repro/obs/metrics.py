"""Metrics on top of the event bus: what flat counters can't express.

:class:`MetricsRegistry` is a sink that derives distribution-shaped
observables from the event stream:

- **histograms** (log₂-bucketed, deterministic): distributed steal
  latency (steal request → chunk arrival, the key observable of Gast et
  al., arXiv:1805.00857), task granularity, stolen chunk sizes, and
  mailbox dwell time;
- **sampled time series**: per-place private/shared/mailbox queue depth
  and outstanding distributed steal requests, fed by the bus's sampler
  (``EventBus(sample_interval=...)``).

Everything is surfaced through ``RunStats.snapshot()["obs"]["metrics"]``
(deterministically ordered, JSON-safe) and the ``repro profile`` CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.obs.sinks import Sink

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.bus import EventBus
    from repro.obs.events import ObsEvent
    from repro.runtime.runtime import SimRuntime

#: Histograms the registry always carries (empty ones stay in the
#: snapshot so its key set is run-independent).
HISTOGRAM_NAMES = (
    "steal_latency_cycles",
    "task_granularity_cycles",
    "chunk_tasks",
    "mailbox_dwell_cycles",
)


class Histogram:
    """Log₂-bucketed histogram with exact count/sum/min/max.

    Values land in buckets keyed by their power-of-two upper bound
    (``v <= bound < 2v``); non-positive values share the ``0`` bucket.
    Percentiles are estimated as the upper bound of the bucket where the
    cumulative count crosses the rank — a deterministic, allocation-free
    over-approximation that is exact to within one octave.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self._buckets: Dict[float, int] = {}

    def record(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value
        bound = 0.0
        if value > 0.0:
            bound = 1.0
            while bound < value:
                bound *= 2.0
        self._buckets[bound] = self._buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        """Exact arithmetic mean (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution percentile estimate, ``q`` in [0, 1].

        The extremes are exact: ``percentile(0.0)`` is the recorded
        minimum (not the first occupied bucket's upper bound, which
        over-reports it by up to an octave) and ``percentile(1.0)`` is
        the recorded maximum.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        cum = 0
        for bound in sorted(self._buckets):
            cum += self._buckets[bound]
            if cum >= rank:
                return min(bound, self.max)
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (returns self).

        Log₂ buckets are value-determined, so identical values land in
        identical buckets in every process — merging is exact: bucket
        counts add, and count/sum/min/max equal those of one histogram
        fed both input streams.  This is what makes per-run telemetry
        snapshots aggregable into fleet-wide distributions.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        for bound, n in other._buckets.items():
            self._buckets[bound] = self._buckets.get(bound, 0) + n
        return self

    @classmethod
    def from_snapshot(cls, snap: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from its :meth:`snapshot` dict.

        The snapshot carries exact count/sum/min/max and every bucket,
        so ``from_snapshot(h.snapshot())`` is lossless — the round trip
        is what lets archived telemetry rows merge into rollups.
        """
        h = cls()
        h.count = int(snap["count"])  # type: ignore[arg-type]
        h.total = float(snap["sum"])  # type: ignore[arg-type]
        h.min = float(snap["min"])  # type: ignore[arg-type]
        h.max = float(snap["max"])  # type: ignore[arg-type]
        h._buckets = {float(bound): int(n)
                      for bound, n in snap["buckets"]}  # type: ignore[union-attr]
        return h

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view, deterministically ordered."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": [[bound, self._buckets[bound]]
                        for bound in sorted(self._buckets)],
        }


class TimeSeries:
    """Bounded ``(t, value)`` series with deterministic decimation.

    When the series fills to ``max_points`` it drops every other stored
    point and doubles its input stride, so memory stays bounded while
    the retained points remain a uniform, reproducible subsample.
    """

    __slots__ = ("points", "max_points", "_stride", "_seen")

    def __init__(self, max_points: int = 2048) -> None:
        self.points: List[Tuple[float, float]] = []
        self.max_points = max(8, int(max_points))
        self._stride = 1
        self._seen = 0

    def record(self, t: float, value: float) -> None:
        if self._seen % self._stride == 0:
            self.points.append((t, value))
            if len(self.points) >= self.max_points:
                self.points = self.points[::2]
                self._stride *= 2
        self._seen += 1

    def snapshot(self) -> List[List[float]]:
        """JSON-safe ``[[t, value], ...]`` view."""
        return [[t, v] for t, v in self.points]


class MetricsRegistry(Sink):
    """Derives histograms and time series from the event stream."""

    stats_key = "metrics"

    def __init__(self, series_max_points: int = 2048) -> None:
        self.histograms: Dict[str, Histogram] = {
            name: Histogram() for name in HISTOGRAM_NAMES}
        self.series: Dict[str, TimeSeries] = {}
        self._series_max_points = series_max_points
        #: task id -> mailbox deposit time (for dwell).
        self._mailbox_enter: Dict[int, float] = {}

    # -- event handling ----------------------------------------------------
    def on_event(self, ev: "ObsEvent") -> None:
        f = ev.fields
        kind = ev.kind
        if kind == "task_end":
            self.histograms["task_granularity_cycles"].record(f["work"])
        elif kind == "chunk_arrive":
            self.histograms["steal_latency_cycles"].record(f["latency"])
            self.histograms["chunk_tasks"].record(f["tasks"])
        elif kind == "mailbox_put":
            self._mailbox_enter[f["task"]] = ev.t
        elif kind == "mailbox_get":
            entered = self._mailbox_enter.pop(f["task"], None)
            if entered is not None:
                self.histograms["mailbox_dwell_cycles"].record(
                    ev.t - entered)
        elif kind == "sample":
            p = f["place"]
            self._record_series(f"p{p}.private", ev.t, f["private"])
            self._record_series(f"p{p}.shared", ev.t, f["shared"])
            self._record_series(f"p{p}.mailbox", ev.t, f["mailbox"])
            self._record_series(f"p{p}.outstanding_steals", ev.t,
                                f["outstanding"])
        elif kind == "knob_update":
            # Online-controller adjustments (repro.tune): one series per
            # knob (suffixed with the place for per-place knobs).
            p = f["place"]
            suffix = "" if p < 0 else f".p{p}"
            self._record_series(f"knob.{f['name']}{suffix}", ev.t,
                                f["value"])

    def _record_series(self, name: str, t: float, value: float) -> None:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(
                self._series_max_points)
        series.record(t, value)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s histograms into this registry (returns self).

        Histograms merge exactly (see :meth:`Histogram.merge`); names
        missing on either side are unioned in.  Time series are *not*
        merged — each series is stamped with its own run's simulated
        clock, so concatenating them across runs would interleave
        unrelated timelines; fleet rollups are distribution-shaped.
        """
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)
        return self

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Deterministic plain-dict block for the run snapshot."""
        return {
            "histograms": {name: self.histograms[name].snapshot()
                           for name in sorted(self.histograms)},
            "series": {name: self.series[name].snapshot()
                       for name in sorted(self.series)},
        }

    def summary_rows(self) -> List[List[object]]:
        """Table rows (name, count, mean, p50, p90, max) for the CLI."""
        rows: List[List[object]] = []
        for name in sorted(self.histograms):
            h = self.histograms[name]
            rows.append([name, h.count, round(h.mean, 1),
                        h.percentile(0.5), h.percentile(0.9), h.max])
        return rows
