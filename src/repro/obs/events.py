"""The typed event vocabulary of the observability layer.

Every instrumentation point in the runtime emits one of the event kinds
below through the :class:`~repro.obs.bus.EventBus`.  The schema is the
*contract* between the runtime and every sink: each kind has a fixed,
ordered tuple of field names, and the JSONL serialization writes fields
in exactly that order (pinned by the golden-file test in
``tests/obs/test_schema_golden.py``).  Add new kinds freely; changing an
existing kind's fields is a breaking change to archived event streams
and must update the golden file deliberately.

Event taxonomy
==============

Task lifecycle (runtime):
    ``task_spawn``   — an activity was submitted (``parent`` is the task
                       executing on the spawning worker, if any);
    ``task_start``   — a worker began executing an activity;
    ``task_end``     — an activity completed (``t`` is the end time,
                       ``start``/``work`` allow duration/granularity).

Steal paths (scheduler):
    ``steal_attempt`` — one probe of a victim (``tier``: ``local`` =
                        co-located private deque, ``victim`` is a worker
                        index; ``shared`` = own place's shared deque,
                        ``victim`` is the place id);
    ``steal_hit``     — a tiered probe returned work;
    ``steal_request`` — a distributed steal request left for ``victim``;
    ``steal_miss``    — a distributed steal resolved empty (empty deque,
                        exhausted retries, or dead victim);
    ``chunk_arrive``  — a stolen chunk landed at the thief
                        (``latency`` = request-send → chunk-arrival);
    ``steal_cancel``  — a concurrent steal attempt (MultiStealWS) was
                        withdrawn because a sibling request claimed work
                        first, or the thief's place died mid-flight;
    ``radius_fallback`` — a LocalizedWS worker exhausted
                        ``radius_strikes`` consecutive in-radius rounds
                        and ran one unrestricted global round.

Mailbox:
    ``mailbox_put``  — a task closure was deposited in a place's mailbox;
    ``mailbox_get``  — a worker took a task out of its place's mailbox.

Network:
    ``msg_send``     — one priced transmission attempt (every packet of
                       it), with the latency the caller will pay.

Worker loop:
    ``worker_park``  — a worker found nothing anywhere and parked
                       (``backoff`` = the timeout it armed).

Fault injection:
    ``fault``        — one injection or recovery action (``what`` is the
                       :class:`~repro.faults.stats.FaultEvent` kind).

Sampled state (emitted by the bus's own sampler, when enabled):
    ``sample``       — per-place queue depths and the place's number of
                       outstanding (unresolved) distributed steal
                       requests at the sample instant.

Online tuning (``repro.tune.controllers``):
    ``knob_update``  — a feedback controller changed a scheduler knob
                       (``place`` is -1 for cluster-wide knobs like the
                       remote chunk size).

Experiment store (``repro.harness.db``; emitted by a *standalone* bus —
wall-clock ``t``, no runtime attached):
    ``store_lease``          — a worker leased one pending cell
                               (``attempt`` is 1-based);
    ``store_heartbeat_miss`` — the reaper found a lease that expired
                               without a heartbeat (``overdue`` seconds
                               past the deadline);
    ``store_reclaim``        — an expired lease's cell was re-opened for
                               another worker (``owner`` is the presumed-
                               dead previous holder);
    ``store_quarantine``     — a cell exhausted ``max_attempts`` and was
                               parked as ``failed`` (poison cell) with
                               the last line of its error.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Tuple

#: kind -> ordered field names.  THE event vocabulary; JSONL field order
#: follows this tuple exactly.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "task_spawn": ("task", "label", "parent", "home", "flexible"),
    "task_start": ("task", "place", "worker"),
    "task_end": ("task", "label", "home", "place", "worker", "start",
                 "work", "flexible", "stolen"),
    "steal_attempt": ("tier", "place", "worker", "victim"),
    "steal_hit": ("tier", "place", "worker", "victim", "tasks"),
    "steal_request": ("place", "worker", "victim"),
    "steal_miss": ("place", "worker", "victim"),
    "chunk_arrive": ("place", "worker", "victim", "tasks", "latency"),
    "steal_cancel": ("place", "worker", "victim"),
    "radius_fallback": ("place", "worker", "strikes"),
    "mailbox_put": ("place", "task"),
    "mailbox_get": ("place", "worker", "task"),
    "msg_send": ("src", "dst", "kind", "bytes", "packets", "latency"),
    "worker_park": ("place", "worker", "backoff"),
    "fault": ("what", "place", "detail"),
    "sample": ("place", "private", "shared", "mailbox", "outstanding"),
    "knob_update": ("name", "place", "value"),
    "store_lease": ("key", "owner", "attempt"),
    "store_heartbeat_miss": ("key", "owner", "overdue"),
    "store_reclaim": ("key", "owner", "attempt"),
    "store_quarantine": ("key", "attempts", "error"),
}


class ObsEvent:
    """One clock-stamped event: ``t`` (cycles), ``kind``, and its fields."""

    __slots__ = ("t", "kind", "fields")

    def __init__(self, t: float, kind: str,
                 fields: Mapping[str, object]) -> None:
        self.t = t
        self.kind = kind
        self.fields = fields

    def as_row(self) -> Dict[str, object]:
        """Plain dict with deterministic key order (t, kind, schema order)."""
        row: Dict[str, object] = {"t": self.t, "kind": self.kind}
        for name in EVENT_SCHEMA[self.kind]:
            row[name] = self.fields[name]
        return row

    def to_json(self) -> str:
        """Compact single-line JSON (the JSONL wire format)."""
        return json.dumps(self.as_row(), separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObsEvent {self.kind} @{self.t:.0f} {dict(self.fields)}>"
