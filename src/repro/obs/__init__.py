"""``repro.obs`` — unified event tracing and metrics.

A typed, clock-stamped :class:`EventBus` with first-class
instrumentation points in the worker loop, scheduler steal paths,
mailbox, network model, and fault injector.  Events flow to pluggable
sinks: :class:`InMemorySink`, the streaming :class:`JsonlSink`, the
:class:`ChromeTraceSink` (``chrome://tracing`` / Perfetto), and the
:class:`MetricsRegistry` (latency/granularity histograms, sampled queue
depths).

The layer is pay-for-what-you-use: with no sinks subscribed,
``EventBus.attach`` installs nothing and runs stay byte-identical to
unobserved ones.  See ``DESIGN.md`` §9 for the taxonomy and the
overhead contract.
"""

from repro.obs.bus import EventBus
from repro.obs.diff import DiffRow, diff_snapshots, flatten, max_regression_pct
from repro.obs.events import EVENT_SCHEMA, ObsEvent
from repro.obs.fleet import (
    FleetTelemetry,
    FleetView,
    merge_chrome_traces,
    observe_run,
    render_top,
    rollup_histograms,
)
from repro.obs.metrics import (
    HISTOGRAM_NAMES,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.sinks import ChromeTraceSink, InMemorySink, JsonlSink, Sink

__all__ = [
    "ChromeTraceSink",
    "DiffRow",
    "EVENT_SCHEMA",
    "EventBus",
    "FleetTelemetry",
    "FleetView",
    "HISTOGRAM_NAMES",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "ObsEvent",
    "Sink",
    "TimeSeries",
    "diff_snapshots",
    "flatten",
    "max_regression_pct",
    "merge_chrome_traces",
    "observe_run",
    "render_top",
    "rollup_histograms",
]
