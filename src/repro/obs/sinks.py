"""Event sinks: where bus events flow.

Three concrete sinks ship with the library:

- :class:`InMemorySink` — keeps every event in a list (tests, ad-hoc
  analysis);
- :class:`JsonlSink` — streams one compact JSON object per line, fields
  in schema order (archivable, diffable, byte-deterministic for a fixed
  seed);
- :class:`ChromeTraceSink` — writes the Chrome trace-event format
  (load the file in ``chrome://tracing`` or https://ui.perfetto.dev):
  one *process* row per place, one *thread* lane per worker, tasks as
  complete ("X") slices, steals/faults as instants, queue depths as
  counter tracks.

Write your own by subclassing :class:`Sink`: ``open`` is called at
attach time (runtime available for clock/topology metadata),
``on_event`` per event, ``close`` once at run end.  A sink that sets
``stats_key`` contributes a block to ``RunStats.snapshot()["obs"]`` via
its ``snapshot()``.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.bus import EventBus
    from repro.obs.events import ObsEvent
    from repro.runtime.runtime import SimRuntime


class Sink:
    """Base class for event consumers."""

    #: Key under which :meth:`snapshot` is merged into the run snapshot's
    #: ``"obs"`` block; ``None`` opts out.
    stats_key: Optional[str] = None

    def open(self, bus: "EventBus", rt: "SimRuntime") -> None:
        """Called once when the bus attaches to a runtime."""

    def on_event(self, ev: "ObsEvent") -> None:
        """Called for every emitted event."""
        raise NotImplementedError

    def close(self) -> None:
        """Called once at run end; flush buffers and release files here."""

    def snapshot(self) -> Dict[str, object]:
        """Deterministic summary (only consulted when ``stats_key`` set)."""
        return {}


class InMemorySink(Sink):
    """Collects every event in order (tests and interactive use)."""

    def __init__(self) -> None:
        self.events: List["ObsEvent"] = []

    def on_event(self, ev: "ObsEvent") -> None:
        self.events.append(ev)

    def kinds(self) -> List[str]:
        """Distinct event kinds seen, in first-seen order."""
        seen: Dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.kind, None)
        return list(seen)


class JsonlSink(Sink):
    """Streams events as JSON Lines, one compact object per event.

    Field order follows the event schema, so two identically-seeded runs
    produce byte-identical streams (the determinism test asserts this).
    Pass either a ``path`` (file opened at attach, closed at run end) or
    an already-open ``stream`` (left open; useful with ``io.StringIO``).
    """

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[IO[str]] = None) -> None:
        if (path is None) == (stream is None):
            raise ConfigError("JsonlSink needs exactly one of path/stream")
        self.path = path
        self._stream = stream
        self._owns_stream = False
        self.lines_written = 0

    def open(self, bus: "EventBus", rt: "SimRuntime") -> None:
        if self.path is not None and self._stream is None:
            self._stream = open(self.path, "w")
            self._owns_stream = True

    def on_event(self, ev: "ObsEvent") -> None:
        self._stream.write(ev.to_json())
        self._stream.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
                self._stream = None


class ChromeTraceSink(Sink):
    """Exports the run in the Chrome trace-event JSON format.

    Layout: ``pid`` = place (one process row per place, named
    ``place N``), ``tid`` = worker index (one thread lane per worker).
    Timestamps are microseconds, converted with the runtime cost model's
    clock (``cycles_per_ms``), so the x-axis reads as real time on the
    simulated platform.  Emitted records:

    - every completed task as a complete ("X") slice on its executing
      worker's lane;
    - distributed steal requests and chunk arrivals as instant events on
      the thief's lane;
    - fault-injection actions as process-scoped instants;
    - per-place queue depths and outstanding steal requests as counter
      ("C") tracks, when the bus's sampler is enabled.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: List[Dict[str, object]] = []
        self._cycles_per_us = 1.0
        self._written = False

    def open(self, bus: "EventBus", rt: "SimRuntime") -> None:
        self._cycles_per_us = rt.costs.cycles_per_ms / 1000.0
        for p in range(rt.spec.n_places):
            self._meta(p, 0, "process_name", {"name": f"place {p}"})
            self._meta(p, 0, "process_sort_index", {"sort_index": p})
            for w in range(rt.spec.workers_per_place):
                self._meta(p, w, "thread_name", {"name": f"worker {w}"})
                self._meta(p, w, "thread_sort_index", {"sort_index": w})

    def _meta(self, pid: int, tid: int, name: str,
              args: Dict[str, object]) -> None:
        self._events.append({"name": name, "ph": "M", "pid": pid,
                             "tid": tid, "args": args})

    def _us(self, cycles: float) -> float:
        return cycles / self._cycles_per_us

    def on_event(self, ev: "ObsEvent") -> None:
        f = ev.fields
        if ev.kind == "task_end":
            self._events.append({
                "name": f["label"] or f"task-{f['task']}",
                "cat": "task", "ph": "X",
                "ts": self._us(f["start"]),
                "dur": self._us(ev.t - f["start"]),
                "pid": f["place"], "tid": f["worker"],
                "args": {"task": f["task"], "home": f["home"],
                         "stolen": f["stolen"],
                         "flexible": f["flexible"]},
            })
        elif ev.kind == "steal_request":
            self._events.append({
                "name": "steal_request", "cat": "steal", "ph": "i",
                "ts": self._us(ev.t), "pid": f["place"],
                "tid": f["worker"], "s": "t",
                "args": {"victim": f["victim"]},
            })
        elif ev.kind == "chunk_arrive":
            self._events.append({
                "name": "chunk_arrive", "cat": "steal", "ph": "i",
                "ts": self._us(ev.t), "pid": f["place"],
                "tid": f["worker"], "s": "t",
                "args": {"victim": f["victim"], "tasks": f["tasks"],
                         "latency_cycles": f["latency"]},
            })
        elif ev.kind == "fault":
            self._events.append({
                "name": f"fault:{f['what']}", "cat": "fault", "ph": "i",
                "ts": self._us(ev.t), "pid": max(int(f["place"]), 0),
                "tid": 0, "s": "p",
                "args": {"place": f["place"], "detail": f["detail"]},
            })
        elif ev.kind == "sample":
            self._events.append({
                "name": "queue depth", "ph": "C",
                "ts": self._us(ev.t), "pid": f["place"], "tid": 0,
                "args": {"private": f["private"], "shared": f["shared"],
                         "mailbox": f["mailbox"]},
            })
            self._events.append({
                "name": "outstanding steals", "ph": "C",
                "ts": self._us(ev.t), "pid": f["place"], "tid": 0,
                "args": {"requests": f["outstanding"]},
            })

    def close(self) -> None:
        if self._written:
            return
        with open(self.path, "w") as fh:
            json.dump({"traceEvents": self._events,
                       "displayTimeUnit": "ms"}, fh)
        self._written = True
