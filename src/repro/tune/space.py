"""Typed parameter spaces: the tunable knobs of every scheduler.

The paper fixes its scheduler parameters by fiat — distributed steals
take a chunk of 2 (§V-B3), a place turns inactive after ``n`` failed
steal attempts (§VI-B), victims are probed in a fixed order — but both
Gast/Khatiri/Trystram (latency-aware work stealing) and
John/Milthorpe/Strazdins (distributed dataflow stealing) show these
knobs dominate performance once steal latency is non-trivial.  This
module makes them first-class:

- :class:`Knob` — one tunable parameter: type, range (or choices), the
  paper's default, and grid points for exhaustive search;
- :data:`SCHEDULER_KNOBS` — the knob table per registered scheduler;
- :class:`ParamSpace` — a validated subset of one scheduler's knobs that
  can sample random configurations, enumerate a grid, and parse
  ``key=value`` strings from the CLI (``--sched-arg``).

A *configuration* is a plain ``{knob: value}`` dict, directly usable as
``sched_kwargs`` in :class:`~repro.harness.parallel.RunSpec` — which is
what makes tuning trials content-addressable and cache-replayable.

A knob whose default is ``None`` is *runtime-derived* (e.g. the idle
threshold defaults to the place's worker count); omitting it from a
configuration keeps the paper's behaviour byte-identical.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Knob value types.
KNOB_KINDS = ("int", "float", "categorical", "bool")


@dataclass(frozen=True)
class Knob:
    """One tunable scheduler parameter."""

    name: str
    kind: str
    #: The paper's default; ``None`` means runtime-derived (see module doc).
    default: object = None
    #: Inclusive numeric range (int/float knobs).
    lo: Optional[float] = None
    hi: Optional[float] = None
    #: Admissible values (categorical knobs).
    choices: Tuple[object, ...] = ()
    #: Representative values for grid search (deterministic order).
    grid: Tuple[object, ...] = ()
    #: Sample numeric values on a log scale (spans >= one decade).
    log: bool = False
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KNOB_KINDS:
            raise ConfigError(f"unknown knob kind {self.kind!r}; "
                              f"expected one of {KNOB_KINDS}")
        if self.kind in ("int", "float") and (self.lo is None
                                              or self.hi is None):
            raise ConfigError(f"numeric knob {self.name!r} needs lo/hi")
        if self.kind == "categorical" and not self.choices:
            raise ConfigError(f"categorical knob {self.name!r} needs choices")

    # -- validation --------------------------------------------------------
    def validate(self, value: object) -> object:
        """Check ``value`` is admissible; returns it (normalised)."""
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"knob {self.name!r} expects an int, got {value!r}")
            if not (self.lo <= value <= self.hi):
                raise ConfigError(
                    f"knob {self.name!r}={value} out of range "
                    f"[{self.lo:g}, {self.hi:g}]")
            return value
        if self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigError(
                    f"knob {self.name!r} expects a number, got {value!r}")
            value = float(value)
            if not (self.lo <= value <= self.hi):
                raise ConfigError(
                    f"knob {self.name!r}={value:g} out of range "
                    f"[{self.lo:g}, {self.hi:g}]")
            return value
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigError(
                    f"knob {self.name!r} expects a bool, got {value!r}")
            return value
        if value not in self.choices:
            raise ConfigError(
                f"knob {self.name!r}={value!r} not one of {self.choices}")
        return value

    def parse(self, text: str) -> object:
        """Parse a CLI string into a validated value."""
        try:
            if self.kind == "int":
                value: object = int(text)
            elif self.kind == "float":
                value = float(text)
            elif self.kind == "bool":
                lowered = text.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    value = True
                elif lowered in ("0", "false", "no", "off"):
                    value = False
                else:
                    raise ValueError(text)
            else:
                value = text
        except ValueError:
            raise ConfigError(
                f"cannot parse {text!r} as {self.kind} for knob "
                f"{self.name!r}") from None
        return self.validate(value)

    # -- search support ----------------------------------------------------
    def sample(self, rng: random.Random) -> object:
        """Draw one admissible value (deterministic given ``rng``)."""
        if self.kind == "int":
            if self.log:
                import math
                lo, hi = math.log(self.lo), math.log(self.hi)
                return max(int(self.lo), min(int(self.hi), int(round(
                    math.exp(rng.uniform(lo, hi))))))
            return rng.randint(int(self.lo), int(self.hi))
        if self.kind == "float":
            if self.log:
                import math
                return math.exp(rng.uniform(math.log(self.lo),
                                            math.log(self.hi)))
            return rng.uniform(self.lo, self.hi)
        if self.kind == "bool":
            return bool(rng.getrandbits(1))
        return self.choices[rng.randrange(len(self.choices))]

    def grid_points(self) -> Tuple[object, ...]:
        """Values grid search enumerates for this knob."""
        if self.grid:
            return self.grid
        if self.kind == "categorical":
            return self.choices
        if self.kind == "bool":
            return (True, False)
        return (self.default,) if self.default is not None else ()

    def default_label(self) -> str:
        """Human-readable default for the ``repro list`` knob table."""
        if self.default is None:
            return "auto"
        if isinstance(self.default, float):
            return f"{self.default:g}"
        return str(self.default)


def _base_knobs() -> Tuple[Knob, ...]:
    """Knobs every scheduler inherits from :class:`~repro.sched.base.Scheduler`."""
    return (
        Knob("idle_threshold", "int", default=None, lo=1, hi=64,
             grid=(1, 2, 4, 8),
             doc="consecutive failed steal rounds before a place turns "
                 "inactive (auto: workers per place, §VI-B)"),
        Knob("idle_backoff_base", "float", default=None, lo=50.0,
             hi=50_000.0, log=True, grid=(100.0, 400.0, 1_600.0, 6_400.0),
             doc="initial idle back-off in cycles (auto: cost model's "
                 "idle_backoff)"),
        Knob("idle_backoff_cap", "float", default=None, lo=10_000.0,
             hi=4_000_000.0, log=True,
             grid=(62_500.0, 500_000.0, 2_000_000.0),
             doc="cap on the doubling idle back-off (auto: cost model's "
                 "max_idle_backoff)"),
    )


def _distws_knobs() -> Tuple[Knob, ...]:
    return _base_knobs() + (
        Knob("remote_chunk_size", "int", default=2, lo=1, hi=16,
             grid=(1, 2, 4, 8),
             doc="tasks taken per successful distributed steal (§V-B3)"),
        Knob("victim_order", "categorical", default="random",
             choices=("random", "nearest"),
             doc="distributed victim traversal order (§I footnote 2)"),
        Knob("underutil_threshold", "int", default=None, lo=1, hi=64,
             grid=(2, 4, 8, 16),
             doc="size(p) bound under which flexible tasks stay on "
                 "private deques (auto: cluster max_threads, Alg. 1 l.5)"),
    )


#: scheduler registry name -> its tunable knobs (deterministic order).
SCHEDULER_KNOBS: Dict[str, Tuple[Knob, ...]] = {
    "X10WS": _base_knobs(),
    "DistWS": _distws_knobs() + (
        Knob("shared_fifo", "bool", default=True,
             doc="steal the oldest (FIFO) shared-deque task instead of "
                 "the newest (§V-B2 ablation)"),
    ),
    "DistWS-NS": _base_knobs() + (
        Knob("remote_chunk_size", "int", default=2, lo=1, hi=16,
             grid=(1, 2, 4, 8),
             doc="tasks taken per successful distributed steal"),
    ),
    "RandomWS": _base_knobs() + (
        Knob("attempts_per_round", "int", default=2, lo=1, hi=8,
             grid=(1, 2, 4),
             doc="independent random victims probed per failed round"),
    ),
    "Lifeline": _base_knobs() + (
        Knob("attempts_per_round", "int", default=2, lo=1, hi=8,
             grid=(1, 2, 4),
             doc="random steal attempts before quiescing on lifelines"),
    ),
    "StealHalfWS": _base_knobs() + (
        Knob("victim_order", "categorical", default="random",
             choices=("random", "nearest"),
             doc="distributed victim traversal order (§I footnote 2)"),
        Knob("underutil_threshold", "int", default=None, lo=1, hi=64,
             grid=(2, 4, 8, 16),
             doc="size(p) bound under which flexible tasks stay on "
                 "private deques (auto: cluster max_threads, Alg. 1 l.5)"),
        Knob("shared_fifo", "bool", default=True,
             doc="steal the oldest (FIFO) shared-deque tasks instead of "
                 "the newest (§V-B2 ablation)"),
    ),
    "MultiStealWS": _distws_knobs() + (
        Knob("shared_fifo", "bool", default=True,
             doc="steal the oldest (FIFO) shared-deque task instead of "
                 "the newest (§V-B2 ablation)"),
        Knob("steal_width", "int", default=2, lo=1, hi=8,
             grid=(2, 3, 4),
             doc="steal requests simultaneously in flight per thief "
                 "(first success wins, losers cancelled)"),
    ),
    "LocalizedWS": _base_knobs() + (
        Knob("remote_chunk_size", "int", default=2, lo=1, hi=16,
             grid=(1, 2, 4, 8),
             doc="tasks taken per successful distributed steal (§V-B3)"),
        Knob("underutil_threshold", "int", default=None, lo=1, hi=64,
             grid=(2, 4, 8, 16),
             doc="size(p) bound under which flexible tasks stay on "
                 "private deques (auto: cluster max_threads, Alg. 1 l.5)"),
        Knob("steal_radius", "int", default=2, lo=1, hi=32,
             grid=(1, 2, 4),
             doc="maximum hop distance of a regular-round steal victim "
                 "(Suksompong-style localized stealing)"),
        Knob("radius_strikes", "int", default=3, lo=1, hi=16,
             grid=(1, 3, 5),
             doc="consecutive failed local rounds before one "
                 "unrestricted global round"),
    ),
    "AdaptiveDistWS": _distws_knobs() + (
        Knob("min_work", "float", default=400_000.0, lo=50_000.0,
             hi=2_000_000.0, log=True,
             grid=(100_000.0, 400_000.0, 1_600_000.0),
             doc="minimum declared work (cycles) to classify a task "
                 "flexible (§II condition c)"),
        Knob("max_bytes_per_kcycle", "float", default=600.0, lo=50.0,
             hi=5_000.0, log=True, grid=(150.0, 600.0, 2_400.0),
             doc="transfer-economy bound: footprint bytes per 1000 "
                 "work cycles (§II conditions a/d)"),
    ),
}


def knob_table(scheduler: str) -> Tuple[Knob, ...]:
    """The knob tuple for ``scheduler`` (ConfigError on unknown names)."""
    try:
        return SCHEDULER_KNOBS[scheduler]
    except KeyError:
        raise ConfigError(
            f"no knob table for scheduler {scheduler!r}; known: "
            f"{sorted(SCHEDULER_KNOBS)}") from None


def accepted_kwargs(scheduler: str, kwargs: Optional[dict]) -> Optional[dict]:
    """Filter ``kwargs`` down to the knobs ``scheduler`` understands.

    Used when one ``--sched-arg`` set is applied across a multi-scheduler
    experiment grid (``repro reproduce``): each scheduler receives only
    the knobs it has, so e.g. ``remote_chunk_size`` silently skips X10WS.
    Returns ``None`` when nothing survives, keeping cache keys identical
    to an un-tuned run.
    """
    if not kwargs:
        return None
    names = {k.name for k in knob_table(scheduler)}
    kept = {key: value for key, value in kwargs.items() if key in names}
    return kept or None


@dataclass(frozen=True)
class ParamSpace:
    """A validated subset of one scheduler's knobs, ready to search."""

    scheduler: str
    knobs: Tuple[Knob, ...] = field(default_factory=tuple)

    @classmethod
    def for_scheduler(cls, scheduler: str,
                      names: Optional[Sequence[str]] = None) -> "ParamSpace":
        """The full (or ``names``-restricted) space for ``scheduler``."""
        table = knob_table(scheduler)
        if names is None:
            return cls(scheduler, table)
        by_name = {k.name: k for k in table}
        knobs: List[Knob] = []
        for name in names:
            if name not in by_name:
                raise ConfigError(
                    f"unknown knob {name!r} for scheduler {scheduler!r}; "
                    f"known: {sorted(by_name)}")
            knobs.append(by_name[name])
        return cls(scheduler, tuple(knobs))

    def knob(self, name: str) -> Knob:
        for k in self.knobs:
            if k.name == name:
                return k
        raise ConfigError(
            f"unknown knob {name!r} for scheduler {self.scheduler!r}; "
            f"known: {[k.name for k in self.knobs]}")

    # -- configurations ----------------------------------------------------
    def validate_config(self, config: Dict[str, object]) -> Dict[str, object]:
        """Validate a ``{knob: value}`` dict (ConfigError on any problem)."""
        out = {}
        for name in config:
            out[name] = self.knob(name).validate(config[name])
        return out

    def default_config(self) -> Dict[str, object]:
        """The paper-default configuration: empty — every knob at its
        built-in (or runtime-derived) default."""
        return {}

    def sample(self, rng: random.Random) -> Dict[str, object]:
        """One random configuration assigning every knob in the space."""
        return {k.name: k.sample(rng) for k in self.knobs}

    def grid(self) -> Iterator[Dict[str, object]]:
        """Cartesian product of every knob's grid points, lexicographic."""
        active = [(k.name, k.grid_points()) for k in self.knobs
                  if k.grid_points()]
        if not active:
            return iter(())
        names = [name for name, _ in active]
        return ({name: value for name, value in zip(names, combo)}
                for combo in itertools.product(
                    *(points for _, points in active)))


def parse_sched_args(scheduler: str,
                     pairs: Optional[Sequence[str]]) -> Optional[dict]:
    """Parse repeatable ``--sched-arg key=value`` strings for one scheduler.

    Raises :class:`ConfigError` (never a traceback-worthy ValueError) on
    a missing ``=``, an unknown knob, or an unparseable value.
    """
    if not pairs:
        return None
    space = ParamSpace.for_scheduler(scheduler)
    config: Dict[str, object] = {}
    for pair in pairs:
        key, sep, text = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"bad --sched-arg {pair!r} (expected key=value)")
        config[key] = space.knob(key).parse(text)
    return config


def union_knob_names() -> Dict[str, Knob]:
    """Every knob across all schedulers (first definition wins)."""
    union: Dict[str, Knob] = {}
    for table in SCHEDULER_KNOBS.values():
        for k in table:
            union.setdefault(k.name, k)
    return union


def parse_sched_args_any(pairs: Optional[Sequence[str]]) -> Optional[dict]:
    """Parse ``--sched-arg`` pairs against the union of all knob tables.

    Used by multi-scheduler entry points (``repro reproduce``); each
    scheduler later receives its :func:`accepted_kwargs` slice.
    """
    if not pairs:
        return None
    union = union_knob_names()
    config: Dict[str, object] = {}
    for pair in pairs:
        key, sep, text = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"bad --sched-arg {pair!r} (expected key=value)")
        if key not in union:
            raise ConfigError(
                f"unknown knob {key!r}; known: {sorted(union)}")
        config[key] = union[key].parse(text)
    return config
