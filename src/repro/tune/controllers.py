"""Online feedback controllers for distributed work-stealing knobs.

The offline half of ``repro.tune`` finds good *static* knob values; the
controllers here adjust knobs *during* a run from the same signals the
``repro.obs`` metrics derive — distributed steal success/latency and
failed-probe streaks.  They plug into any distributed scheduler via the
``controller=`` kwarg (see :class:`repro.sched.base.Scheduler`); with
``controller=None`` (the default) no hook fires and runs are
byte-identical to a build without this module.

Two control laws are provided:

- :class:`AIMDChunkController` — additive-increase /
  multiplicative-decrease on ``remote_chunk_size``.  Each successful
  remote steal reports its request→arrival latency; when the latency
  *per stolen task* exceeds the amortisation target (by default the cost
  model's fixed per-steal overhead: closure creation + one network round
  trip + victim service), the fixed costs dominate and the chunk grows
  additively.  When the EWMA steal-success rate drops below a floor —
  thieves mostly probing empty victims — the chunk shrinks
  multiplicatively so scarce work is not concentrated on one thief.
  Under a latency-spike :class:`~repro.faults.plan.FaultPlan` the
  per-task latency rises and the controller settles on a larger chunk
  than in a fault-free run (asserted in ``tests/tune``).

- :class:`IdleThresholdController` — per-place control of how many
  failed steal rounds mark a place idle.  A streak of failed probes well
  past the current threshold halves it (give up faster, park workers,
  advertise inactivity on the status board); a successful steal restores
  it additively toward the static default.

Both reuse :class:`repro.obs.metrics.Histogram` for their latency /
streak distributions and emit ``knob_update`` events on the obs bus (a
no-op when no bus is attached), so Chrome traces show every adjustment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import SimRuntime
    from repro.runtime.worker import Worker
    from repro.sched.base import Scheduler

#: Pseudo place id for cluster-wide (non-per-place) knob updates.
GLOBAL_PLACE = -1


class Controller:
    """Base class: scheduler-invoked hooks, all optional.

    Hooks are called synchronously from the scheduler's steal path, so
    implementations must stay allocation-light and deterministic (no
    wall-clock, no unseeded randomness).
    """

    def bind(self, runtime: "SimRuntime", scheduler: "Scheduler") -> None:
        self.rt = runtime
        self.sched = scheduler

    def on_steal_result(self, worker: "Worker", hit: bool,
                        latency_cycles: float, tasks: int) -> None:
        """One distributed steal attempt resolved (hit or miss)."""

    def on_failed_round(self, worker: "Worker") -> None:
        """A worker finished a full steal round without finding work."""

    def snapshot(self) -> Dict[str, object]:
        """Deterministic JSON-safe view of the controller's state."""
        return {}

    def _emit_knob(self, name: str, place: int, value: float) -> None:
        obs = self.rt.obs
        if obs is not None:
            obs.emit("knob_update", name=name, place=place,
                     value=float(value))


class AIMDChunkController(Controller):
    """AIMD control of ``remote_chunk_size`` from steal feedback."""

    def __init__(self, min_chunk: int = 1, max_chunk: int = 8,
                 increase: int = 1, decrease: float = 0.5,
                 target_latency_per_task: Optional[float] = None,
                 success_floor: float = 0.25, ewma_alpha: float = 0.125,
                 settle_every: int = 4) -> None:
        if not 1 <= min_chunk <= max_chunk:
            raise ConfigError(
                f"need 1 <= min_chunk <= max_chunk, got "
                f"{min_chunk}..{max_chunk}")
        if not 0.0 < decrease < 1.0:
            raise ConfigError(f"decrease must be in (0, 1), got {decrease}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if settle_every < 1:
            raise ConfigError(
                f"settle_every must be >= 1, got {settle_every}")
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.increase = increase
        self.decrease = decrease
        self.target_latency_per_task = target_latency_per_task
        self.success_floor = success_floor
        self.ewma_alpha = ewma_alpha
        self.settle_every = settle_every
        self.chunk = 0  # set at bind from the scheduler's static value
        self.success_rate = 1.0
        self.latency_per_task = Histogram()
        self.adjustments: List[float] = []
        self._results = 0

    def bind(self, runtime: "SimRuntime", scheduler: "Scheduler") -> None:
        super().bind(runtime, scheduler)
        self.chunk = int(scheduler.remote_chunk_size)
        if self.target_latency_per_task is None:
            c = runtime.costs
            # Fixed overhead a steal pays regardless of chunk size: the
            # thief's closure + request/reply latency + victim service.
            self.target_latency_per_task = (
                c.closure_create + 2.0 * c.net_latency
                + c.remote_steal_service)

    def on_steal_result(self, worker: "Worker", hit: bool,
                        latency_cycles: float, tasks: int) -> None:
        a = self.ewma_alpha
        self.success_rate += a * ((1.0 if hit else 0.0) - self.success_rate)
        if hit and tasks > 0:
            self.latency_per_task.record(latency_cycles / tasks)
        self._results += 1
        if self._results % self.settle_every:
            return
        old = self.chunk
        if (hit and tasks > 0
                and latency_cycles / tasks > self.target_latency_per_task):
            # Fixed steal costs dominate: amortise over a bigger chunk.
            self.chunk = min(self.max_chunk, self.chunk + self.increase)
        elif self.success_rate < self.success_floor:
            # Mostly empty victims: shrink so scarce work spreads out.
            self.chunk = max(self.min_chunk,
                             int(self.chunk * self.decrease) or 1)
        if self.chunk != old:
            self.sched.remote_chunk_size = self.chunk
            self.adjustments.append(float(self.chunk))
            self._emit_knob("remote_chunk_size", GLOBAL_PLACE, self.chunk)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "aimd_chunk",
            "chunk": self.chunk,
            "success_rate": round(self.success_rate, 6),
            "adjustments": list(self.adjustments),
            "latency_per_task": self.latency_per_task.snapshot(),
        }


class IdleThresholdController(Controller):
    """Per-place adaptation of the failed-steal idle threshold."""

    def __init__(self, min_threshold: int = 1,
                 streak_factor: int = 2) -> None:
        if min_threshold < 1:
            raise ConfigError(
                f"min_threshold must be >= 1, got {min_threshold}")
        if streak_factor < 1:
            raise ConfigError(
                f"streak_factor must be >= 1, got {streak_factor}")
        self.min_threshold = min_threshold
        self.streak_factor = streak_factor
        self.streaks: Dict[int, int] = {}
        self.defaults: Dict[int, int] = {}
        self.streak_hist = Histogram()

    def bind(self, runtime: "SimRuntime", scheduler: "Scheduler") -> None:
        super().bind(runtime, scheduler)
        for place in runtime.places:
            self.defaults[place.place_id] = place.idle_round_threshold()
            self.streaks[place.place_id] = 0

    def on_failed_round(self, worker: "Worker") -> None:
        place = worker.place
        pid = place.place_id
        streak = self.streaks.get(pid, 0) + 1
        self.streaks[pid] = streak
        threshold = place.idle_round_threshold()
        if streak >= self.streak_factor * threshold \
                and threshold > self.min_threshold:
            new = max(self.min_threshold, threshold // 2)
            place.idle_threshold = new
            self.streaks[pid] = 0
            self._emit_knob("idle_threshold", pid, new)

    def on_steal_result(self, worker: "Worker", hit: bool,
                        latency_cycles: float, tasks: int) -> None:
        if not hit:
            return
        place = worker.place
        pid = place.place_id
        self.streak_hist.record(self.streaks.get(pid, 0))
        self.streaks[pid] = 0
        threshold = place.idle_round_threshold()
        default = self.defaults.get(pid, threshold)
        if threshold < default:
            place.idle_threshold = threshold + 1
            self._emit_knob("idle_threshold", pid, threshold + 1)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "idle_threshold",
            "thresholds": {str(p.place_id): p.idle_round_threshold()
                           for p in self.rt.places},
            "streak_at_hit": self.streak_hist.snapshot(),
        }


CONTROLLERS = {
    "aimd-chunk": AIMDChunkController,
    "idle-threshold": IdleThresholdController,
}


def make_controller(name: str) -> Controller:
    """CLI-facing factory (``--controller aimd-chunk``)."""
    try:
        return CONTROLLERS[name]()
    except KeyError:
        known = ", ".join(sorted(CONTROLLERS))
        raise ConfigError(
            f"unknown controller {name!r} (known: {known})") from None
