"""Scheduler auto-tuning: offline search + online feedback control.

The paper fixes its scheduler parameters by fiat (remote steals take a
chunk of 2, a place goes idle after one failed round per worker, ...).
``repro.tune`` turns each of those constants into a declared, searchable
knob:

- :mod:`repro.tune.space` — typed per-scheduler knob declarations
  (:class:`ParamSpace`), validation, and CLI ``key=value`` parsing;
- :mod:`repro.tune.search` — grid / seeded-random / successive-halving
  engines that fan trials through the parallel harness and result
  cache, producing ranked reports with regret-vs-default and per-knob
  sensitivity;
- :mod:`repro.tune.controllers` — online AIMD chunk-size and
  idle-threshold controllers pluggable into the distributed schedulers
  via ``controller=`` (``None`` keeps runs byte-identical to the static
  build).
"""

from repro.tune.controllers import (
    CONTROLLERS,
    AIMDChunkController,
    Controller,
    IdleThresholdController,
    make_controller,
)
from repro.tune.search import (
    ENGINES,
    CellReport,
    Fidelity,
    GridSearch,
    RandomSearch,
    SearchEngine,
    SuccessiveHalving,
    Trial,
    TuneCell,
    TuningReport,
    evaluate_configs,
    tune,
)
from repro.tune.space import (
    SCHEDULER_KNOBS,
    Knob,
    ParamSpace,
    accepted_kwargs,
    knob_table,
    parse_sched_args,
    parse_sched_args_any,
    union_knob_names,
)

__all__ = [
    "AIMDChunkController",
    "CellReport",
    "CONTROLLERS",
    "Controller",
    "ENGINES",
    "Fidelity",
    "GridSearch",
    "IdleThresholdController",
    "Knob",
    "ParamSpace",
    "RandomSearch",
    "SCHEDULER_KNOBS",
    "SearchEngine",
    "SuccessiveHalving",
    "Trial",
    "TuneCell",
    "TuningReport",
    "accepted_kwargs",
    "evaluate_configs",
    "knob_table",
    "make_controller",
    "parse_sched_args",
    "parse_sched_args_any",
    "tune",
    "union_knob_names",
]
