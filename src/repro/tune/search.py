"""Offline scheduler tuning: search engines + ranked tuning reports.

A *tuning cell* is one (application, scheduler, cluster) target; a
*trial* is one configuration of that scheduler's
:class:`~repro.tune.space.ParamSpace` evaluated over one or more
scheduler seeds.  Three engines are provided:

- :class:`GridSearch` — exhaustive cartesian product of each knob's grid
  points (optionally budget-truncated, deterministic order);
- :class:`RandomSearch` — seeded uniform sampling; the same seed always
  produces the same trial sequence and the same winner;
- :class:`SuccessiveHalving` — ASHA-style: a large population evaluated
  at a cheap fidelity (small app scale, one seed), the top ``1/eta``
  promoted rung by rung to increasingly expensive fidelities.

Every trial is expressed as a :class:`~repro.harness.parallel.RunSpec`
and executed through the ambient
:class:`~repro.harness.parallel.ExecutionContext`, so searches shard
over the PR-3 process pool (``--parallel``) and memoise in the
content-addressed :class:`~repro.harness.parallel.ResultCache` —
repeating or resuming a search replays finished trials from disk with
**zero** simulations.  With ``execution(store_path=...)`` (CLI:
``repro tune --store``) trials route through the durable
:class:`~repro.harness.db.ExperimentStore` job queue instead: trials
become leased rows that ``repro workers`` processes on the same host
can help drain, a SIGKILLed search resumes exactly where it stopped, and
finished trials are never re-simulated.

The paper-default configuration (the empty config: every knob at its
built-in default) is force-evaluated at every fidelity, so each trial
carries a *regret* — its median makespan minus the default's at the
same fidelity.  Negative regret means the search found something the
paper's fixed constants leave on the table.
"""

from __future__ import annotations

import json
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.topology import ClusterSpec, paper_cluster
from repro.errors import ConfigError
from repro.harness.parallel import RunSpec, current_context
from repro.harness.tables import render_table
from repro.tune.space import ParamSpace


def _config_key(config: Dict[str, object]) -> str:
    """Canonical identity of a configuration (ties, dedup, JSON)."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def _config_label(config: Dict[str, object]) -> str:
    """Compact human-readable rendering for report tables."""
    if not config:
        return "(default)"
    parts = []
    for name in sorted(config):
        value = config[name]
        if isinstance(value, float):
            parts.append(f"{name}={value:g}")
        else:
            parts.append(f"{name}={value}")
    return " ".join(parts)


@dataclass(frozen=True)
class TuneCell:
    """One search target: an (app, scheduler, cluster) cell."""

    app: str
    scheduler: str
    spec: ClusterSpec = field(default_factory=paper_cluster)
    scale: str = "test"
    app_seed: int = 12345
    sched_seeds: Tuple[int, ...] = (1, 2)
    costs: CostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        if not self.sched_seeds:
            raise ConfigError("a tuning cell needs at least one seed")


@dataclass(frozen=True)
class Fidelity:
    """One evaluation fidelity: the app scale and the seeds averaged."""

    scale: str
    sched_seeds: Tuple[int, ...]


@dataclass
class Trial:
    """One configuration evaluated at one fidelity."""

    config: Dict[str, object]
    rung: int
    scale: str
    sched_seeds: Tuple[int, ...]
    makespans: Tuple[float, ...]
    #: Median makespan (cycles) over the fidelity's seeds.
    median_makespan: float = 0.0
    #: ``median - default_median`` at the same fidelity (< 0 beats the
    #: paper default).
    regret: float = 0.0

    @property
    def is_default(self) -> bool:
        return not self.config

    def key(self) -> str:
        return _config_key(self.config)

    def as_row(self) -> Dict[str, object]:
        """JSON-shaped view (no host-side timing: byte-deterministic)."""
        return {
            "config": {k: self.config[k] for k in sorted(self.config)},
            "rung": self.rung,
            "scale": self.scale,
            "sched_seeds": list(self.sched_seeds),
            "makespans": list(self.makespans),
            "median_makespan": self.median_makespan,
            "regret": self.regret,
        }


def evaluate_configs(cell: TuneCell, configs: Sequence[Dict[str, object]],
                     fidelity: Fidelity, rung: int = 0) -> List[Trial]:
    """Run every config at ``fidelity`` through the ambient context.

    The whole batch is flattened to :class:`RunSpec`\\ s first so a
    parallel context shards across configs *and* seeds; identical
    configs (and cache hits) are simulated only once.  Each returned
    trial carries its regret against the default config, which is
    force-included in the batch.
    """
    configs = list(configs)
    if not any(not c for c in configs):
        configs.append({})
    specs: List[RunSpec] = []
    for config in configs:
        for seed in fidelity.sched_seeds:
            specs.append(RunSpec.build(
                cell.app, cell.scheduler, cell.spec,
                app_seed=cell.app_seed, sched_seed=seed,
                scale=fidelity.scale, costs=cell.costs, validate=False,
                sched_kwargs=config))
    results = current_context().run_specs(specs)
    trials: List[Trial] = []
    cursor = 0
    for config in configs:
        runs = results[cursor:cursor + len(fidelity.sched_seeds)]
        cursor += len(fidelity.sched_seeds)
        makespans = tuple(r.stats.makespan_cycles for r in runs)
        trials.append(Trial(config=dict(config), rung=rung,
                            scale=fidelity.scale,
                            sched_seeds=fidelity.sched_seeds,
                            makespans=makespans,
                            median_makespan=statistics.median(makespans)))
    default_median = next(t.median_makespan for t in trials if t.is_default)
    for t in trials:
        t.regret = t.median_makespan - default_median
    return trials


# ---------------------------------------------------------------------------
class SearchEngine:
    """Base class: produce the full trial history for one cell."""

    name: str = "abstract"

    def search(self, cell: TuneCell, space: ParamSpace) -> List[Trial]:
        raise NotImplementedError

    def _rng(self, seed: int, cell: TuneCell) -> random.Random:
        # Seed with a string so determinism survives hash randomization
        # (random.Random(str) hashes via sha512, not PYTHONHASHSEED).
        return random.Random(f"{seed}:{cell.app}:{cell.scheduler}")


class GridSearch(SearchEngine):
    """Exhaustive sweep of every knob's grid points."""

    name = "grid"

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 1:
            raise ConfigError(f"budget must be >= 1, got {budget}")
        self.budget = budget

    def search(self, cell: TuneCell, space: ParamSpace) -> List[Trial]:
        configs: List[Dict[str, object]] = [{}]
        seen = {_config_key({})}
        for config in space.grid():
            key = _config_key(config)
            if key in seen:
                continue
            seen.add(key)
            configs.append(config)
            if self.budget is not None and len(configs) >= self.budget:
                break
        fidelity = Fidelity(cell.scale, cell.sched_seeds)
        return evaluate_configs(cell, configs, fidelity)


class RandomSearch(SearchEngine):
    """Seeded uniform random sampling (same seed => same trials)."""

    name = "random"

    def __init__(self, budget: int = 16, seed: int = 0) -> None:
        if budget < 1:
            raise ConfigError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.seed = seed

    def search(self, cell: TuneCell, space: ParamSpace) -> List[Trial]:
        rng = self._rng(self.seed, cell)
        configs: List[Dict[str, object]] = [{}]
        for _ in range(self.budget - 1):
            configs.append(space.sample(rng))
        fidelity = Fidelity(cell.scale, cell.sched_seeds)
        return evaluate_configs(cell, configs, fidelity)


class SuccessiveHalving(SearchEngine):
    """ASHA-style successive halving over increasing fidelities.

    ``rungs`` lists the fidelity ladder, cheapest first; the default
    ladder re-uses the cell's scale with a growing seed set (one seed,
    then the cell's full seed tuple), which is the cheap/robust split
    available to every app.  Pass explicit :class:`Fidelity` rungs to
    climb app scales instead (e.g. ``test`` -> ``bench``).

    The planned population of rung ``r`` is ``ceil(n0 / eta**r)``; the
    paper-default config occupies one slot of every rung so regret stays
    defined at each fidelity, and the remaining slots go to the
    best-performing survivors of the previous rung.
    """

    name = "asha"

    def __init__(self, budget: int = 16, seed: int = 0, eta: int = 2,
                 rungs: Optional[Sequence[Fidelity]] = None) -> None:
        if budget < 1:
            raise ConfigError(f"budget must be >= 1, got {budget}")
        if eta < 2:
            raise ConfigError(f"eta must be >= 2, got {eta}")
        self.budget = budget
        self.seed = seed
        self.eta = eta
        self.rungs = tuple(rungs) if rungs is not None else None

    def plan(self, n_rungs: int) -> List[int]:
        """Per-rung population sizes fitting the trial budget."""
        if n_rungs < 1:
            raise ConfigError("need at least one rung")
        if self.budget < n_rungs:
            raise ConfigError(
                f"budget {self.budget} cannot cover {n_rungs} rungs")
        n0 = 1
        while True:
            candidate = [max(1, -(-(n0 + 1) // self.eta ** r))
                         for r in range(n_rungs)]
            if sum(candidate) > self.budget:
                break
            n0 += 1
        return [max(1, -(-n0 // self.eta ** r)) for r in range(n_rungs)]

    def _default_rungs(self, cell: TuneCell) -> Tuple[Fidelity, ...]:
        first = Fidelity(cell.scale, cell.sched_seeds[:1])
        if len(cell.sched_seeds) > 1:
            return (first, Fidelity(cell.scale, cell.sched_seeds))
        return (first,)

    def search(self, cell: TuneCell, space: ParamSpace) -> List[Trial]:
        rungs = self.rungs if self.rungs is not None \
            else self._default_rungs(cell)
        sizes = self.plan(len(rungs))
        rng = self._rng(self.seed, cell)
        population: List[Dict[str, object]] = [{}]
        seen = {_config_key({})}
        attempts = 0
        while len(population) < sizes[0] and attempts < sizes[0] * 20:
            config = space.sample(rng)
            attempts += 1
            key = _config_key(config)
            if key in seen:
                continue
            seen.add(key)
            population.append(config)
        history: List[Trial] = []
        for r, fidelity in enumerate(rungs):
            trials = evaluate_configs(cell, population, fidelity, rung=r)
            history.extend(trials)
            if r + 1 == len(rungs):
                break
            ranked = sorted(
                (t for t in trials if not t.is_default),
                key=lambda t: (t.median_makespan, t.key()))
            survivors = [t.config for t in ranked[:sizes[r + 1] - 1]]
            population = [{}] + survivors
        return history


ENGINES = {
    "grid": GridSearch,
    "random": RandomSearch,
    "asha": SuccessiveHalving,
}


# ---------------------------------------------------------------------------
@dataclass
class CellReport:
    """Ranked tuning outcome for one (app, scheduler) cell."""

    cell: TuneCell
    engine: str
    space: ParamSpace
    trials: List[Trial]

    @property
    def final_rung(self) -> int:
        return max(t.rung for t in self.trials)

    def ranked(self) -> List[Trial]:
        """Final-rung trials, best (lowest median makespan) first."""
        final = [t for t in self.trials if t.rung == self.final_rung]
        return sorted(final, key=lambda t: (t.median_makespan, t.key()))

    @property
    def best(self) -> Trial:
        return self.ranked()[0]

    @property
    def default_trial(self) -> Trial:
        return next(t for t in self.ranked() if t.is_default)

    def default_rank(self) -> int:
        """1-based rank of the paper-default config at the final rung."""
        for i, t in enumerate(self.ranked()):
            if t.is_default:
                return i + 1
        raise ConfigError("default config missing from final rung")

    def sensitivity_rows(self) -> List[List[object]]:
        """Per-knob sensitivity over final-rung trials.

        For each knob: the values tried, the value whose trials achieved
        the lowest mean median-makespan, and the spread between the best
        and worst value means as a percent of the default median — a
        large spread means the knob matters on this cell.
        """
        final = self.ranked()
        default_median = self.default_trial.median_makespan
        rows: List[List[object]] = []
        for knob in self.space.knobs:
            groups: Dict[str, List[float]] = {}
            values: Dict[str, object] = {}
            for t in final:
                if knob.name not in t.config:
                    continue
                value = t.config[knob.name]
                label = f"{value:g}" if isinstance(value, float) else str(value)
                groups.setdefault(label, []).append(t.median_makespan)
                values[label] = value
            if not groups:
                continue
            means = {label: statistics.fmean(v) for label, v in groups.items()}
            best_label = min(sorted(means), key=lambda k: means[k])
            spread = max(means.values()) - min(means.values())
            spread_pct = (100.0 * spread / default_median
                          if default_median > 0 else 0.0)
            rows.append([knob.name, len(groups), best_label,
                         round(spread_pct, 2)])
        return rows

    # -- rendering ---------------------------------------------------------
    def rendered(self, top: int = 12) -> str:
        ms = self.cell.costs.cycles_per_ms
        ranked = self.ranked()
        default_median = self.default_trial.median_makespan
        rows = []
        for i, t in enumerate(ranked[:top]):
            pct = (100.0 * t.regret / default_median
                   if default_median > 0 else 0.0)
            rows.append([i + 1, _config_label(t.config),
                         round(t.median_makespan / ms, 3),
                         round(t.regret / ms, 3), f"{pct:+.2f}%"])
        title = (f"tuning {self.cell.app} x {self.cell.scheduler} "
                 f"({self.engine}, {len(self.trials)} trials, "
                 f"default rank {self.default_rank()}/{len(ranked)})")
        out = render_table(
            ["rank", "config", "median makespan (ms)", "regret (ms)",
             "vs default"], rows, title=title)
        sens = self.sensitivity_rows()
        if sens:
            out += "\n\n" + render_table(
                ["knob", "values tried", "best value", "spread % of default"],
                sens,
                title=f"knob sensitivity ({self.cell.app} x "
                      f"{self.cell.scheduler})")
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "app": self.cell.app,
            "scheduler": self.cell.scheduler,
            "scale": self.cell.scale,
            "engine": self.engine,
            "n_trials": len(self.trials),
            "default_rank": self.default_rank(),
            "default_median_makespan": self.default_trial.median_makespan,
            "best": self.best.as_row(),
            "trials": [t.as_row() for t in self.trials],
            "sensitivity": self.sensitivity_rows(),
        }


@dataclass
class TuningReport:
    """Aggregated report over every tuned cell."""

    cells: List[CellReport]

    def rendered(self, top: int = 12) -> str:
        parts = [c.rendered(top=top) for c in self.cells]
        if len(self.cells) > 1:
            rows = []
            for c in self.cells:
                ms = c.cell.costs.cycles_per_ms
                default = c.default_trial.median_makespan
                pct = (100.0 * c.best.regret / default if default > 0
                       else 0.0)
                rows.append([c.cell.app, c.cell.scheduler,
                             _config_label(c.best.config),
                             round(c.best.median_makespan / ms, 3),
                             f"{pct:+.2f}%"])
            parts.append(render_table(
                ["app", "scheduler", "best config", "median (ms)",
                 "vs default"], rows,
                title="best config per app x scheduler"))
        return "\n\n".join(parts)

    def to_json(self) -> str:
        """Byte-deterministic JSON (no wall-clock, sorted keys)."""
        return json.dumps({"cells": [c.as_dict() for c in self.cells]},
                          sort_keys=True, indent=1)


def tune(cells: Sequence[TuneCell], engine: SearchEngine,
         knob_names: Optional[Sequence[str]] = None) -> TuningReport:
    """Search every cell with ``engine`` under the ambient context.

    Wrap the call in ``with execution(parallel=N, cache_dir=...)`` to
    shard trials over a process pool and make the search resumable.
    """
    if not cells:
        raise ConfigError("nothing to tune: no cells given")
    reports = []
    for cell in cells:
        space = ParamSpace.for_scheduler(cell.scheduler, knob_names)
        trials = engine.search(cell, space)
        reports.append(CellReport(cell=cell, engine=engine.name,
                                  space=space, trials=trials))
    return TuningReport(reports)
