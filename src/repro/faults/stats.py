"""Observability for the fault-injection subsystem.

:class:`FaultStats` aggregates everything a chaos run needs to assert:
how many messages were dropped (and of which kind), how often thieves
timed out / retried / backed off, which places crashed, and how much lost
work was re-executed.  The block is merged into
:meth:`repro.runtime.stats.RunStats.snapshot` under the ``"faults"`` key
(only when an injector with a non-empty plan was attached, so fault-free
snapshots are untouched).

:class:`FaultEvent` is the trace-level record: one entry per injection or
recovery action, timestamped on the simulation clock, collected by
:class:`repro.analysis.trace.TraceRecorder` alongside the task records.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class FaultEvent:
    """One injection or recovery action on the simulated clock.

    ``kind`` is one of: ``crash``, ``spike_start``, ``spike_end``,
    ``straggler``, ``task_lost``, ``task_reexec``, ``task_rehomed``,
    ``sensitive_degraded``, ``task_committed_at_crash``, ``recovered``.
    """

    time: float
    kind: str
    place: int
    detail: str = ""


@dataclass
class FaultStats:
    """Aggregated fault-injection counters for one simulation run."""

    #: Packets dropped in flight, by message kind.
    messages_dropped: Counter = field(default_factory=Counter)
    #: Transport-level retransmissions priced into :meth:`Network.send`.
    retransmits: int = 0
    #: Remote-steal attempts that expired the thief-side timer.
    steal_timeouts: int = 0
    #: Remote-steal attempts retried after a timeout.
    steal_retries: int = 0
    #: Simulated cycles thieves spent in retry backoff.
    backoff_cycles: float = 0.0
    #: Victims placed on the decaying blacklist after exhausted retries.
    blacklists: int = 0
    #: Places that fail-stopped, in crash order.
    places_crashed: List[int] = field(default_factory=list)
    #: Task-loss events (a task whose survivor also crashes counts once
    #: per loss; queued or in flight, uncommitted).
    tasks_lost: int = 0
    #: Relocations of lost tasks to a survivor (one per loss event;
    #: completion remains exactly-once).
    tasks_reexecuted: int = 0
    #: Tasks re-homed at spawn time because their target place was dead.
    tasks_rehomed: int = 0
    #: Sensitive tasks degraded to flexible under the ``relax`` policy.
    sensitive_degraded: int = 0
    #: Running tasks whose effects had committed when their place crashed
    #: (counted as completed, not re-executed).
    committed_at_crash: int = 0
    #: Cycles from the last crash until every task it lost had re-executed.
    recovery_latency_cycles: float = 0.0

    @property
    def dropped_total(self) -> int:
        """All dropped packets, across kinds."""
        return sum(self.messages_dropped.values())

    def note_drop(self, kind: str, packets: int) -> None:
        """Account ``packets`` of one ``kind`` lost in flight."""
        self.messages_dropped[kind] += packets

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for reports (deterministically ordered)."""
        return {
            "messages_dropped": {k: self.messages_dropped[k]
                                 for k in sorted(self.messages_dropped)},
            "dropped_total": self.dropped_total,
            "retransmits": self.retransmits,
            "steal_timeouts": self.steal_timeouts,
            "steal_retries": self.steal_retries,
            "backoff_cycles": self.backoff_cycles,
            "blacklists": self.blacklists,
            "places_crashed": list(self.places_crashed),
            "tasks_lost": self.tasks_lost,
            "tasks_reexecuted": self.tasks_reexecuted,
            "tasks_rehomed": self.tasks_rehomed,
            "sensitive_degraded": self.sensitive_degraded,
            "committed_at_crash": self.committed_at_crash,
            "recovery_latency_cycles": self.recovery_latency_cycles,
        }
