"""Fault injection: deterministic chaos for the simulated cluster.

The subsystem has three parts:

- :class:`FaultPlan` — a frozen, declarative description of what goes
  wrong (crashes, message loss, latency spikes, stragglers) and the
  policy for orphaned locality-sensitive tasks;
- :class:`FaultInjector` — interprets a plan against a
  :class:`~repro.runtime.runtime.SimRuntime`, scheduling fault events on
  the simulation clock and pricing drops/delays through the existing
  LogGP network model;
- :class:`FaultStats` / :class:`FaultEvent` — the observables: counters
  merged into ``RunStats.snapshot()["faults"]`` and per-event trace
  records collected by the analysis layer.

See DESIGN.md §"Fault model" for semantics and guarantees.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LatencySpike,
    PlaceCrash,
    SensitivePolicy,
    Straggler,
)
from repro.faults.stats import FaultEvent, FaultStats

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LatencySpike",
    "PlaceCrash",
    "SensitivePolicy",
    "Straggler",
]
