"""The fault injector: interprets a :class:`FaultPlan` against a runtime.

Attachment is explicit and happens *before* the run::

    plan = FaultPlan.parse("crash:p2@3e6,loss:steal=0.05")
    injector = FaultInjector(plan)
    injector.attach(rt)          # no-op if the plan is empty
    stats = app.run(rt)
    stats.snapshot()["faults"]   # the FaultStats block

Determinism: the injector draws from its own named RNG streams (seeded by
``plan.seed``), so the runtime's victim-selection and workload streams are
never perturbed; the same seed and plan reproduce the same faults, drops
and re-homing decisions bit-for-bit.

Zero-overhead default: attaching an *empty* plan installs nothing — the
runtime's ``faults`` attribute stays ``None`` and every fault hook in the
hot paths short-circuits on that, leaving the no-faults event sequence
byte-identical.

Crash semantics (fail-stop): at the crash instant the place's workers are
interrupted and never run again; every task queued at the place (private
deques, shared deque, mailbox) and every *uncommitted* in-flight task is
lost.  Lost locality-flexible tasks are re-homed to a survivor and
re-executed exactly once (tracked by the
:class:`~repro.runtime.ledger.TaskLedger`).  Lost locality-sensitive
tasks follow the plan's :class:`SensitivePolicy`: ``fail`` raises
:class:`~repro.errors.PlaceFailedError`, ``relax`` degrades them to
flexible.  In-flight tasks whose effects already committed (see the
worker's crash-safe deferred-commit execution) are counted as completed
at the crash instant rather than re-executed, preserving exactly-once
semantics for real side effects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import ConfigError, FaultError, PlaceFailedError
from repro.faults.plan import FaultPlan, SensitivePolicy
from repro.faults.stats import FaultEvent, FaultStats
from repro.runtime.ledger import TaskLedger
from repro.runtime.task import FLEXIBLE, TaskState
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import SimRuntime
    from repro.runtime.task import Task


class FaultInjector:
    """Schedules and applies the faults described by a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self.events: List[FaultEvent] = []
        self.rt: Optional["SimRuntime"] = None
        self.ledger = TaskLedger()
        self.rngs = RngStreams(plan.seed)
        self._dead: Set[int] = set()
        self._slow: Dict[int, float] = {s.place: s.factor
                                        for s in plan.stragglers}
        #: Crash-time of the most recent crash (for recovery latency).
        self._last_crash_time: float = 0.0
        #: Lost-task ids still awaiting completion by a survivor.
        self._pending_lost: Set[int] = set()

    # -- attachment --------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the injector is attached to a runtime."""
        return self.rt is not None

    @property
    def crash_safe(self) -> bool:
        """Whether workers must use deferred-commit execution."""
        return bool(self.plan.crashes)

    def attach(self, rt: "SimRuntime") -> "FaultInjector":
        """Install the plan's faults into ``rt``. No-op for empty plans."""
        if self.plan.is_empty:
            return self
        if rt._started:
            raise ConfigError("attach the fault injector before running")
        if rt.faults is not None:
            raise ConfigError("runtime already has a fault injector")
        if self.plan.needs_horizon:
            raise ConfigError(
                "plan has fractional times; call plan.resolved(horizon) "
                "before attaching")
        self.plan.validate(rt.spec.n_places)
        self.rt = rt
        rt.faults = self
        rt.network.faults = self
        env = rt.env
        for crash in self.plan.crashes:
            ev = env.timeout(crash.at)
            ev.add_callback(
                lambda _ev, pid=crash.place: self._crash(pid))
        for spike in self.plan.spikes:
            start = env.timeout(spike.start)
            start.add_callback(
                lambda _ev, s=spike: self._record(
                    "spike_start", -1, f"x{s.factor:g}"))
            end = env.timeout(spike.start + spike.duration)
            end.add_callback(
                lambda _ev, s=spike: self._record(
                    "spike_end", -1, f"x{s.factor:g}"))
        for strag in self.plan.stragglers:
            self._record("straggler", strag.place, f"x{strag.factor:g}")
        return self

    # -- hot-path queries (called from network / worker / scheduler) ------
    def is_dead(self, place_id: int) -> bool:
        """Whether ``place_id`` has fail-stopped."""
        return place_id in self._dead

    def slow_factor(self, place_id: int) -> float:
        """Work multiplier for a (possibly straggling) place."""
        return self._slow.get(place_id, 1.0)

    def latency_factor(self, now: float) -> float:
        """Interconnect latency multiplier at simulated time ``now``."""
        factor = 1.0
        for s in self.plan.spikes:
            if s.start <= now < s.start + s.duration:
                factor *= s.factor
        return factor

    def drops(self, src: int, dst: int, kind: str) -> bool:
        """Whether one message of ``kind`` from src to dst is lost."""
        prob = self.plan.loss.get(kind, 0.0)
        if prob <= 0.0:
            return False
        return bool(self.rngs.stream("loss", kind).random() < prob)

    # -- runtime hooks -----------------------------------------------------
    def on_spawn(self, task: "Task") -> None:
        """Called by :meth:`SimRuntime.spawn` before mapping.

        Records the spawn in the ledger and re-homes tasks addressed to a
        dead place (per the sensitive-task policy).
        """
        self.ledger.record_spawn(task)
        if task.home_place in self._dead:
            self._require_relocatable(task)
            new_home = self._pick_survivor()
            self._record("task_rehomed", new_home,
                         f"task {task.task_id} from dead "
                         f"p{task.home_place}")
            task.home_place = new_home
            self.stats.tasks_rehomed += 1

    def on_finished(self, task: "Task") -> None:
        """Called by :meth:`SimRuntime.task_finished` on every completion."""
        self.ledger.record_execution(task)
        if task.task_id in self._pending_lost:
            self._pending_lost.discard(task.task_id)
            if not self._pending_lost:
                now = self.rt.env.now
                self.stats.recovery_latency_cycles = max(
                    self.stats.recovery_latency_cycles,
                    now - self._last_crash_time)
                self._record("recovered", task.exec_place or 0,
                             f"last lost task {task.task_id} done")

    # -- crash handling ----------------------------------------------------
    def _crash(self, place_id: int) -> None:
        rt = self.rt
        if place_id in self._dead or rt.done_gate.is_open:
            return
        place = rt.places[place_id]
        place.dead = True
        self._dead.add(place_id)
        self._last_crash_time = rt.env.now
        self.stats.places_crashed.append(place_id)
        self._record("crash", place_id)
        rt.board.retract(place_id)
        # Detach the workers first: interrupt() synchronously unhooks each
        # worker's pending resume, so none of them can race ahead and
        # touch a task this handler is about to relocate or finish.
        running: List[tuple] = []
        for w in place.workers:
            if w.current_task is not None:
                running.append((w, w.current_task))
            proc = getattr(w, "proc", None)
            if proc is not None and proc.is_alive:
                proc.interrupt("place-crash")
        lost: List["Task"] = []
        for w in place.workers:
            # Stolen chunks still in flight to this place: the tasks left
            # the victim's deque but never reached the mailbox.
            lost.extend(w.pending_chunk)
            w.pending_chunk = []
            while True:
                t = w.deque.pop()
                if t is None:
                    break
                lost.append(t)
        while True:
            t = place.shared.take_oldest(remote=False)
            if t is None:
                break
            lost.append(t)
        while True:
            t = place.mailbox.try_get()
            if t is None:
                break
            lost.append(t)
        for worker, task in running:
            if task.committed:
                # Effects (body, children) are already visible: count the
                # task as completed at the crash instant.
                task.state = TaskState.DONE
                task.end_time = rt.env.now
                self.stats.committed_at_crash += 1
                self._record("task_committed_at_crash", place_id,
                             f"task {task.task_id}")
                rt.task_finished(task, worker)
            else:
                lost.append(task)
        for task in lost:
            self._relocate(task, place_id)

    def _relocate(self, task: "Task", dead_place: int) -> None:
        """Hand one lost task to a survivor, exactly once per loss.

        Under multi-crash plans the chosen survivor may itself crash
        later while the task is still queued there; the task is then
        simply lost and relocated again (the ledger balances every loss
        against one relocation, and completion stays exactly-once).
        """
        rt = self.rt
        self._require_relocatable(task)
        self.ledger.record_loss(task, rt.env.now)
        self.stats.tasks_lost += 1
        self._record("task_lost", dead_place, f"task {task.task_id}")
        new_home = self._pick_survivor()
        task.home_place = new_home
        task.state = TaskState.CREATED
        task.exec_place = None
        task.exec_worker = None
        self.ledger.record_reexecution(task)
        self.stats.tasks_reexecuted += 1
        self._pending_lost.add(task.task_id)
        self._record("task_reexec", new_home, f"task {task.task_id}")
        rt.scheduler.map_task(task)
        home = rt.places[new_home]
        home.note_assignment()
        home.notify_work()

    def _require_relocatable(self, task: "Task") -> None:
        """Degrade or fail a sensitive task per the plan's policy."""
        if task.is_flexible:
            return
        if self.plan.sensitive_policy is SensitivePolicy.RELAX:
            task.locality = FLEXIBLE
            self.stats.sensitive_degraded += 1
            self._record("sensitive_degraded", task.home_place,
                         f"task {task.task_id}")
            return
        raise PlaceFailedError(
            f"locality-sensitive task {task.task_id} is pinned to dead "
            f"place p{task.home_place}; re-run with the 'relax' policy to "
            "degrade it to flexible")

    def _pick_survivor(self) -> int:
        alive = [p for p in range(self.rt.spec.n_places)
                 if p not in self._dead]
        if not alive:
            raise FaultError("no surviving places")  # pragma: no cover
        idx = int(self.rngs.stream("rehome").integers(len(alive)))
        return alive[idx]

    def _record(self, kind: str, place: int, detail: str = "") -> None:
        now = self.rt.env.now if self.rt is not None else 0.0
        self.events.append(FaultEvent(now, kind, place, detail))
        if self.rt is not None and self.rt.obs is not None:
            self.rt.obs.emit("fault", what=kind, place=place, detail=detail)
