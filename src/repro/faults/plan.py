"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen description of every fault a run should
suffer — place fail-stop crashes, per-kind message-loss probabilities,
latency-spike windows, and straggler places — plus the policy for
locality-sensitive tasks orphaned by a crash.  Plans are pure data: the
:class:`~repro.faults.injector.FaultInjector` interprets them against a
runtime.

Times may be given either in absolute cycles (values > 1) or as fractions
of a *horizon* (values in (0, 1]), typically the fault-free makespan of
the same program; fractional plans must be :meth:`resolved` against a
horizon before an injector will accept them.  The CLI does this
automatically by running a fault-free calibration first.

Spec grammar (the CLI's ``--faults`` string; comma-separated tokens)::

    crash:p2@0.4          place 2 fail-stops at 40% of the horizon
    loss:steal=0.05       5% of steal request/reply packets are dropped
    loss:ship=0.02        kinds: steal, ship, data, ref, copyback, term,
                          all, or an exact message-kind name
    spike:@0.3+0.2x8      latency x8 during [0.3, 0.5) of the horizon
    straggle:p1x4         place 1 executes task work 4x slower
    policy:relax          degrade orphaned sensitive tasks to flexible
                          (default ``fail``: raise PlaceFailedError)
    seed:7                seed for the injector's RNG streams
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.cluster.network import (
    MESSAGE_KINDS,
    MSG_DATA_BLOCK,
    MSG_REMOTE_REF,
    MSG_RESULT_COPYBACK,
    MSG_STEAL_REPLY,
    MSG_STEAL_REQUEST,
    MSG_TASK_SHIP,
    MSG_TERMINATION,
)
from repro.errors import ConfigError


class SensitivePolicy(enum.Enum):
    """What happens to a locality-sensitive task whose home place died."""

    #: Abort the run with :class:`~repro.errors.PlaceFailedError`.
    FAIL_FAST = "fail"
    #: Degrade the task to locality-flexible and re-execute on a survivor.
    RELAX = "relax"


@dataclass(frozen=True)
class PlaceCrash:
    """Fail-stop crash of one place at a point in simulated time."""

    place: int
    #: Cycles, or a fraction of the horizon when in (0, 1].
    at: float


@dataclass(frozen=True)
class LatencySpike:
    """A window during which interconnect latency is multiplied."""

    start: float
    duration: float
    factor: float


@dataclass(frozen=True)
class Straggler:
    """A place whose workers execute task work ``factor`` times slower."""

    place: int
    factor: float


#: Aliases accepted by the ``loss:`` spec token.
_LOSS_ALIASES: Dict[str, Tuple[str, ...]] = {
    "steal": (MSG_STEAL_REQUEST, MSG_STEAL_REPLY),
    "ship": (MSG_TASK_SHIP,),
    "data": (MSG_DATA_BLOCK,),
    "ref": (MSG_REMOTE_REF,),
    "copyback": (MSG_RESULT_COPYBACK,),
    "term": (MSG_TERMINATION,),
    "all": MESSAGE_KINDS,
}

_CRASH_RE = re.compile(r"^p(\d+)@([0-9.eE+-]+)$")
_SPIKE_RE = re.compile(r"^@([0-9.eE+-]+)\+([0-9.eE+-]+)x([0-9.eE+-]+)$")
_STRAGGLE_RE = re.compile(r"^p(\d+)x([0-9.eE+-]+)$")


def _is_fraction(value: float) -> bool:
    """Whether ``value`` denotes a fraction of the horizon."""
    return 0.0 < value <= 1.0


def _float(text: str, token: str) -> float:
    """``float(text)`` with malformed input reported as a ConfigError.

    The spec regexes are deliberately permissive (``[0-9.eE+-]+``), so
    strings like ``1e`` or ``--3`` reach the conversion; the CLI must see
    a :class:`ConfigError` naming the token, not a bare ``ValueError``.
    """
    try:
        return float(text)
    except ValueError:
        raise ConfigError(
            f"bad number {text!r} in fault token {token!r}") from None


def _int(text: str, token: str) -> int:
    """``int(text)`` with malformed input reported as a ConfigError."""
    try:
        return int(text)
    except ValueError:
        raise ConfigError(
            f"bad integer {text!r} in fault token {token!r}") from None


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong during one run."""

    crashes: Tuple[PlaceCrash, ...] = ()
    #: Message kind -> drop probability in [0, 1).
    loss: Dict[str, float] = field(default_factory=dict)
    spikes: Tuple[LatencySpike, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    sensitive_policy: SensitivePolicy = SensitivePolicy.FAIL_FAST
    seed: int = 0

    # -- queries -----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """A plan that injects nothing (attaching it is a no-op)."""
        return not (self.crashes or self.spikes or self.stragglers
                    or any(p > 0 for p in self.loss.values()))

    @property
    def needs_horizon(self) -> bool:
        """Whether any time in the plan is a fraction of the horizon."""
        return (any(_is_fraction(c.at) for c in self.crashes)
                or any(_is_fraction(s.start) or _is_fraction(s.duration)
                       for s in self.spikes))

    # -- construction ------------------------------------------------------
    def resolved(self, horizon: float) -> "FaultPlan":
        """Scale every fractional time by ``horizon`` (cycles)."""
        if horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon}")

        def scale(v: float) -> float:
            return v * horizon if _is_fraction(v) else v

        return replace(
            self,
            crashes=tuple(replace(c, at=scale(c.at)) for c in self.crashes),
            spikes=tuple(replace(s, start=scale(s.start),
                                 duration=scale(s.duration))
                         for s in self.spikes),
        )

    def validate(self, n_places: int) -> None:
        """Check the plan is injectable on an ``n_places`` cluster."""
        crashed = set()
        for c in self.crashes:
            if not (0 <= c.place < n_places):
                raise ConfigError(f"crash of nonexistent place {c.place}")
            if c.at < 0:
                raise ConfigError(f"crash time must be >= 0, got {c.at}")
            if c.place in crashed:
                raise ConfigError(f"place {c.place} crashes twice")
            crashed.add(c.place)
        if len(crashed) >= n_places:
            raise ConfigError("plan crashes every place; no survivors")
        for kind, prob in self.loss.items():
            if kind not in MESSAGE_KINDS:
                raise ConfigError(f"unknown message kind {kind!r}")
            if not (0.0 <= prob < 1.0):
                raise ConfigError(
                    f"loss probability for {kind!r} must be in [0, 1), "
                    f"got {prob}")
        for s in self.spikes:
            if s.start < 0 or s.duration <= 0:
                raise ConfigError(f"bad spike window {s}")
            if s.factor < 1.0:
                raise ConfigError(f"spike factor must be >= 1, got {s.factor}")
        for s in self.stragglers:
            if not (0 <= s.place < n_places):
                raise ConfigError(f"straggler place {s.place} out of range")
            if s.factor < 1.0:
                raise ConfigError(
                    f"straggler factor must be >= 1, got {s.factor}")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--faults`` spec string (see module doc)."""
        crashes: list[PlaceCrash] = []
        loss: Dict[str, float] = {}
        spikes: list[LatencySpike] = []
        stragglers: list[Straggler] = []
        policy = SensitivePolicy.FAIL_FAST
        seed = 0
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            head, sep, rest = token.partition(":")
            if not sep:
                raise ConfigError(f"malformed fault token {token!r} "
                                  "(expected kind:args)")
            if head == "crash":
                m = _CRASH_RE.match(rest)
                if not m:
                    raise ConfigError(
                        f"bad crash spec {rest!r} (expected p<i>@<t>)")
                crashes.append(PlaceCrash(int(m.group(1)),
                                          _float(m.group(2), token)))
            elif head == "loss":
                name, eq, prob = rest.partition("=")
                if not eq:
                    raise ConfigError(
                        f"bad loss spec {rest!r} (expected kind=prob)")
                kinds = _LOSS_ALIASES.get(name, (name,))
                for kind in kinds:
                    loss[kind] = _float(prob, token)
            elif head == "spike":
                m = _SPIKE_RE.match(rest)
                if not m:
                    raise ConfigError(
                        f"bad spike spec {rest!r} "
                        "(expected @<start>+<duration>x<factor>)")
                spikes.append(LatencySpike(_float(m.group(1), token),
                                           _float(m.group(2), token),
                                           _float(m.group(3), token)))
            elif head == "straggle":
                m = _STRAGGLE_RE.match(rest)
                if not m:
                    raise ConfigError(
                        f"bad straggle spec {rest!r} (expected p<i>x<f>)")
                stragglers.append(Straggler(int(m.group(1)),
                                            _float(m.group(2), token)))
            elif head == "policy":
                try:
                    policy = SensitivePolicy(rest)
                except ValueError:
                    raise ConfigError(
                        f"unknown sensitive policy {rest!r}; "
                        f"known: fail, relax") from None
            elif head == "seed":
                seed = _int(rest, token)
            else:
                raise ConfigError(f"unknown fault token {head!r}; known: "
                                  "crash, loss, spike, straggle, policy, seed")
        return cls(crashes=tuple(crashes), loss=loss, spikes=tuple(spikes),
                   stragglers=tuple(stragglers), sensitive_policy=policy,
                   seed=seed)
