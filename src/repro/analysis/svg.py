"""Dependency-free SVG rendering of experiment figures.

Produces small, standalone SVG documents (no matplotlib required — the
environment is offline) for the two figure shapes the paper uses:

- :func:`line_chart` — Fig. 5-style series over a shared x axis;
- :func:`grouped_bar_chart` — Fig. 6-style grouped bars.

Both take plain ``{name: [values]}`` dictionaries, such as the ``series``
entry in :class:`~repro.harness.paper.ExperimentOutput.extra`.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

from repro.errors import ConfigError

#: Colour-blind-safe categorical palette.
PALETTE = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
           "#aa3377", "#bbbbbb"]

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _esc(text: object) -> str:
    return html.escape(str(text))


def _nice_max(value: float) -> float:
    """Round ``value`` up to a tidy axis maximum."""
    if value <= 0:
        return 1.0
    magnitude = 10 ** max(0, len(str(int(value))) - 1)
    for mult in (1, 2, 5, 10):
        if value <= mult * magnitude:
            return float(mult * magnitude)
    return float(10 * magnitude)


def _frame(width: int, height: int, title: str, body: List[str]) -> str:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" {_FONT} '
        f'font-size="14" font-weight="bold">{_esc(title)}</text>',
        *body,
        "</svg>",
    ]
    return "\n".join(parts)


def line_chart(x_values: Sequence[object],
               series: Dict[str, Sequence[float]],
               title: str = "", x_label: str = "", y_label: str = "",
               width: int = 640, height: int = 400) -> str:
    """Fig. 5-style multi-series line chart as an SVG string."""
    if not series:
        raise ConfigError("line_chart needs at least one series")
    n = len(x_values)
    for name, vals in series.items():
        if len(vals) != n:
            raise ConfigError(f"series {name!r} length mismatch")
    if n < 1:
        raise ConfigError("line_chart needs at least one x value")
    left, right, top, bottom = 60, 120, 40, 50
    plot_w = width - left - right
    plot_h = height - top - bottom
    y_max = _nice_max(max(max(v) for v in series.values()))

    def sx(i: int) -> float:
        return left + (plot_w * i / max(n - 1, 1))

    def sy(v: float) -> float:
        return top + plot_h * (1 - v / y_max)

    body: List[str] = [
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>'
    ]
    # Y grid + ticks.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = top + plot_h * (1 - frac)
        body.append(f'<line x1="{left}" y1="{y}" x2="{left + plot_w}" '
                    f'y2="{y}" stroke="#ddd"/>')
        body.append(f'<text x="{left - 6}" y="{y + 4}" text-anchor="end" '
                    f'{_FONT} font-size="10">{y_max * frac:g}</text>')
    # X ticks.
    for i, xv in enumerate(x_values):
        body.append(f'<text x="{sx(i)}" y="{top + plot_h + 16}" '
                    f'text-anchor="middle" {_FONT} font-size="10">'
                    f'{_esc(xv)}</text>')
    # Series.
    for si, (name, vals) in enumerate(series.items()):
        colour = PALETTE[si % len(PALETTE)]
        points = " ".join(f"{sx(i):.1f},{sy(v):.1f}"
                          for i, v in enumerate(vals))
        body.append(f'<polyline points="{points}" fill="none" '
                    f'stroke="{colour}" stroke-width="2"/>')
        for i, v in enumerate(vals):
            body.append(f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" '
                        f'r="3" fill="{colour}"/>')
        ly = top + 14 + 18 * si
        lx = left + plot_w + 10
        body.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
                    f'stroke="{colour}" stroke-width="2"/>')
        body.append(f'<text x="{lx + 24}" y="{ly + 4}" {_FONT} '
                    f'font-size="11">{_esc(name)}</text>')
    if x_label:
        body.append(f'<text x="{left + plot_w / 2}" y="{height - 12}" '
                    f'text-anchor="middle" {_FONT} font-size="11">'
                    f'{_esc(x_label)}</text>')
    if y_label:
        body.append(f'<text x="16" y="{top + plot_h / 2}" {_FONT} '
                    f'font-size="11" text-anchor="middle" '
                    f'transform="rotate(-90 16 {top + plot_h / 2})">'
                    f'{_esc(y_label)}</text>')
    return _frame(width, height, title, body)


def grouped_bar_chart(groups: Sequence[str],
                      series: Dict[str, Sequence[float]],
                      title: str = "", y_label: str = "",
                      width: int = 720, height: int = 400) -> str:
    """Fig. 6-style grouped bar chart as an SVG string."""
    if not series or not groups:
        raise ConfigError("grouped_bar_chart needs groups and series")
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ConfigError(f"series {name!r} length mismatch")
    left, right, top, bottom = 60, 130, 40, 60
    plot_w = width - left - right
    plot_h = height - top - bottom
    y_max = _nice_max(max(max(v) for v in series.values()))
    n_groups = len(groups)
    n_series = len(series)
    group_w = plot_w / n_groups
    bar_w = group_w * 0.8 / n_series

    body: List[str] = [
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>'
    ]
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = top + plot_h * (1 - frac)
        body.append(f'<line x1="{left}" y1="{y}" x2="{left + plot_w}" '
                    f'y2="{y}" stroke="#ddd"/>')
        body.append(f'<text x="{left - 6}" y="{y + 4}" text-anchor="end" '
                    f'{_FONT} font-size="10">{y_max * frac:g}</text>')
    for gi, group in enumerate(groups):
        gx = left + gi * group_w + group_w * 0.1
        for si, (name, vals) in enumerate(series.items()):
            v = vals[gi]
            h = plot_h * v / y_max
            x = gx + si * bar_w
            y = top + plot_h - h
            colour = PALETTE[si % len(PALETTE)]
            body.append(f'<rect x="{x:.1f}" y="{y:.1f}" '
                        f'width="{bar_w:.1f}" height="{h:.1f}" '
                        f'fill="{colour}"/>')
        body.append(f'<text x="{left + gi * group_w + group_w / 2}" '
                    f'y="{top + plot_h + 16}" text-anchor="middle" '
                    f'{_FONT} font-size="10">{_esc(group)}</text>')
    for si, name in enumerate(series):
        colour = PALETTE[si % len(PALETTE)]
        ly = top + 14 + 18 * si
        lx = left + plot_w + 10
        body.append(f'<rect x="{lx}" y="{ly - 8}" width="14" height="10" '
                    f'fill="{colour}"/>')
        body.append(f'<text x="{lx + 20}" y="{ly + 1}" {_FONT} '
                    f'font-size="11">{_esc(name)}</text>')
    if y_label:
        body.append(f'<text x="16" y="{top + plot_h / 2}" {_FONT} '
                    f'font-size="11" text-anchor="middle" '
                    f'transform="rotate(-90 16 {top + plot_h / 2})">'
                    f'{_esc(y_label)}</text>')
    return _frame(width, height, title, body)
