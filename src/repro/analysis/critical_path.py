"""Critical-path analysis over an execution trace.

Computes the classic work/span decomposition:

- **T1** — total work (sum of task durations);
- **T∞ (span)** — the longest chain through the spawn DAG, where a child
  cannot start before its parent *started* (help-first semantics: the
  parent keeps running while children execute, so the dependency edge is
  parent-start → child-start) plus its own duration;
- **average parallelism** — T1 / T∞;
- the chain itself, for "why doesn't this scale?" debugging.

The span uses *durations* (simulated time incl. priced memory effects),
so it reflects what the cluster could at best achieve with infinitely
many workers under the same cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.trace import Trace, TaskRecord
from repro.errors import ConfigError


@dataclass
class CriticalPath:
    """Work/span summary of a trace."""

    total_work: float
    span: float
    chain: List[TaskRecord]
    makespan: float

    @property
    def parallelism(self) -> float:
        """Average parallelism T1 / T-infinity."""
        return self.total_work / self.span if self.span > 0 else 0.0

    @property
    def schedule_efficiency(self) -> float:
        """span / makespan: 1.0 means the run hit its dependency bound."""
        return self.span / self.makespan if self.makespan > 0 else 0.0

    def describe(self, limit: int = 12) -> str:
        """Human-readable report."""
        lines = [
            f"total work (T1) : {self.total_work:,.0f} cycles",
            f"span (Tinf)     : {self.span:,.0f} cycles",
            f"parallelism     : {self.parallelism:,.1f}",
            f"makespan        : {self.makespan:,.0f} cycles "
            f"(span bound {100 * self.schedule_efficiency:.0f}%)",
            "critical chain  :",
        ]
        shown = self.chain[:limit]
        for rec in shown:
            lines.append(
                f"  {rec.label or 'anon':>16s} #{rec.task_id}"
                f"  p{rec.home_place}->p{rec.exec_place}"
                f"  dur={rec.duration:,.0f}")
        if len(self.chain) > limit:
            lines.append(f"  ... {len(self.chain) - limit} more")
        return "\n".join(lines)


def critical_path(trace: Trace) -> CriticalPath:
    """Extract the work/span decomposition from a trace.

    Raises :class:`ConfigError` on an empty trace — a span of zero has
    no meaningful chain, and silently returning one would poison every
    derived ratio downstream.
    """
    records = trace.tasks
    if not records:
        raise ConfigError("empty trace: no tasks recorded")
    total_work = sum(t.duration for t in records)
    by_id = trace.by_id()
    # Longest path ending at each task, following spawn edges.  Parents
    # always start before their children spawn, so processing in start
    # order is a valid topological order.
    best: Dict[int, float] = {}
    prev: Dict[int, Optional[int]] = {}
    span = 0.0
    tail: Optional[int] = None
    for rec in sorted(records, key=lambda t: (t.start_time, t.task_id)):
        parent = rec.parent_id
        base = 0.0
        if parent is not None and parent in best:
            # Help-first: the child's chain extends the parent's chain
            # up to the moment the child was spawned.
            parent_rec = by_id[parent]
            base = best[parent] - parent_rec.duration \
                + (rec.spawn_time - parent_rec.start_time)
            base = max(base, 0.0)
        length = base + rec.duration
        best[rec.task_id] = length
        prev[rec.task_id] = parent
        if length > span:
            span = length
            tail = rec.task_id
    chain: List[TaskRecord] = []
    node = tail
    while node is not None:
        chain.append(by_id[node])
        node = prev.get(node)
    chain.reverse()
    return CriticalPath(total_work=total_work, span=span, chain=chain,
                        makespan=trace.makespan)
