"""Static HTML sweep report for a drained experiment store.

``repro report --store sweep.db --out report/`` renders one
self-contained page (inline SVG, no external assets — the environment
is offline) from the store's telemetry:

- fleet throughput timeline: cumulative completed cells per worker,
  binned over the sweep's wall-clock span;
- steal-latency rollup: the fleet-wide merged histograms (the campaign
  aggregate of Gast et al., arXiv:1805.00857) as a bucket chart plus a
  percentile table;
- worker summary: per-owner cells, failures, reclaims, throughput;
- perf trajectory: the sweep's per-cell simulation rates joined against
  the committed ``BENCH_kernel.json`` kernel baseline, so a sweep
  report shows where the harness sits relative to the benched kernel.

Everything here is read-only over :class:`ExperimentStore` views and
plain dicts, so it is unit-testable without a live fleet.
"""

from __future__ import annotations

import html
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.svg import grouped_bar_chart, line_chart
from repro.obs.fleet import rollup_histograms, rollup_rows

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 960px; color: #222; }
h1 { border-bottom: 2px solid #4477aa; padding-bottom: .3em; }
h2 { color: #4477aa; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: .35em .7em; font-size: 13px;
         text-align: right; }
th { background: #eef2f7; }
td:first-child, th:first-child { text-align: left; }
.meta { color: #666; font-size: 13px; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text))


def _html_table(headers: Sequence[object],
                rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows)
    return f"<table><tr>{head}</tr>{body}</table>"


def throughput_series(
        tel_rows, bins: int = 24
) -> Tuple[List[str], Dict[str, List[float]]]:
    """Cumulative completed cells per worker over the sweep's span.

    ``tel_rows`` are :class:`~repro.harness.db.TelemetryRow`\\ s.  Returns
    ``(x_labels, {owner: cumulative_counts})`` binned into ``bins``
    equal wall-clock slices from first to last completion — the shape
    :func:`repro.analysis.svg.line_chart` takes directly.
    """
    if not tel_rows:
        return [], {}
    t0 = min(r.finished_at for r in tel_rows)
    t1 = max(r.finished_at for r in tel_rows)
    span = max(t1 - t0, 1e-9)
    bins = max(1, min(bins, len(tel_rows)))
    owners = []
    for r in tel_rows:
        if r.owner not in owners:
            owners.append(r.owner)
    counts = {o: [0] * bins for o in owners}
    for r in tel_rows:
        b = min(int((r.finished_at - t0) / span * bins), bins - 1)
        counts[r.owner][b] += 1
    series = {}
    for owner in owners:
        total = 0
        cum = []
        for c in counts[owner]:
            total += c
            cum.append(float(total))
        series[owner] = cum
    labels = [f"{span * (b + 1) / bins:.0f}s" for b in range(bins)]
    return labels, series


def _bucket_chart(rollup, name: str) -> Optional[str]:
    """Bucket-count bar chart of one rolled-up histogram (None if empty)."""
    hist = rollup.get(name)
    if hist is None or not hist.count:
        return None
    snap = hist.snapshot()
    buckets = snap["buckets"]
    groups = [f"≤{int(bound):,}" if bound >= 1 else "0"
              for bound, _ in buckets]
    return grouped_bar_chart(groups,
                             {"samples": [float(n) for _, n in buckets]},
                             title=f"{name}: fleet-wide distribution "
                                   f"({hist.count:,} samples)",
                             y_label="samples")


def perf_trajectory_rows(tel_rows, store_rows,
                         bench: Optional[Dict]) -> List[List[object]]:
    """Join sweep throughput with the ``BENCH_kernel.json`` baseline.

    One row per (app, scheduler) pair seen in the sweep: mean cell wall
    time and simulation rate from telemetry, next to the benched
    kernel's events/sec for the same pair (``-`` when the baseline has
    no matching cell).
    """
    payload_by_key = {r.key: r.payload for r in store_rows}
    agg: Dict[Tuple[str, str], List[float]] = {}
    for r in tel_rows:
        p = payload_by_key.get(r.key, {})
        pair = (str(p.get("app")), str(p.get("scheduler")))
        agg.setdefault(pair, []).append(r.wall_seconds)
    bench_rate: Dict[Tuple[str, str], float] = {}
    for cell in (bench or {}).get("cells", []):
        cfg = cell.get("config", {})
        pair = (str(cfg.get("app")), str(cfg.get("scheduler")))
        # Keep the fastest benched shape per pair.
        rate = float(cell.get("events_per_sec", 0.0))
        if rate > bench_rate.get(pair, 0.0):
            bench_rate[pair] = rate
    rows = []
    for pair in sorted(agg):
        walls = agg[pair]
        mean_wall = sum(walls) / len(walls)
        rate = bench_rate.get(pair)
        rows.append([f"{pair[0]} × {pair[1]}", len(walls),
                     round(mean_wall, 4),
                     round(1.0 / mean_wall, 2) if mean_wall > 0 else 0.0,
                     "-" if rate is None else f"{rate:,.0f}"])
    return rows


def sweep_report_html(store, bench: Optional[Dict] = None,
                      title: str = "sweep report") -> str:
    """Render the full report page for an open :class:`ExperimentStore`."""
    counts = store.counts()
    tel_rows = store.telemetry_rows()
    worker_rows = store.worker_rows()
    store_rows = store.rows()

    parts = [f"<h1>{_esc(title)}</h1>",
             f'<p class="meta">{_esc(store.path)} — '
             f"{sum(counts.values())} cells · "
             + " · ".join(f"{counts[s]} {s}" for s in
                          ("pending", "leased", "done", "failed"))
             + f" · {len(tel_rows)} telemetry row(s)</p>"]

    parts.append("<h2>Throughput timeline</h2>")
    labels, series = throughput_series(tel_rows)
    if series:
        parts.append(line_chart(
            labels, series, title="cumulative completed cells per worker",
            x_label="wall clock since first completion",
            y_label="cells done"))
    else:
        parts.append("<p>No telemetry shipped yet.</p>")

    parts.append("<h2>Metric rollups</h2>")
    rollup = rollup_histograms(r.data for r in tel_rows)
    rows = rollup_rows(rollup)
    if rows:
        parts.append(_html_table(
            ["histogram", "count", "mean", "min", "p50", "p90", "p99",
             "max"], rows))
        chart = _bucket_chart(rollup, "steal_latency_cycles")
        if chart:
            parts.append(chart)
    else:
        parts.append("<p>No metric histograms in telemetry.</p>")

    parts.append("<h2>Workers</h2>")
    if worker_rows:
        parts.append(_html_table(
            ["owner", "state", "done", "failed", "leases", "reclaims",
             "quarantines", "lifetime (s)"],
            [[w.owner, w.state, w.cells_done, w.cells_failed, w.leases,
              w.reclaims, w.quarantines,
              round(max(0.0, w.last_seen - w.started_at), 1)]
             for w in worker_rows]))
    else:
        parts.append("<p>No workers have touched this store.</p>")

    parts.append("<h2>Perf trajectory</h2>")
    traj = perf_trajectory_rows(tel_rows, store_rows, bench)
    if traj:
        parts.append(_html_table(
            ["app × scheduler", "cells", "mean wall (s)", "cells/sec",
             "kernel bench (events/sec)"], traj))
        if bench is not None:
            parts.append(
                f'<p class="meta">kernel baseline: '
                f'{_esc(len(bench.get("cells", [])))} benched cell(s), '
                f'calibration '
                f'{bench.get("calibration_ops_per_sec", 0):,.0f} '
                f"ops/sec</p>")
    else:
        parts.append("<p>No completed cells to chart.</p>")

    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title><style>{_STYLE}</style>"
            "</head><body>" + "\n".join(parts) + "</body></html>")


def write_report(store, out_dir: str, bench_path: Optional[str] = None,
                 title: str = "sweep report") -> List[str]:
    """Write ``report.html`` (and a merged trace, when shards exist).

    Returns the list of files written.  ``bench_path`` defaulting to a
    missing file is fine — the perf-trajectory section simply omits the
    baseline column's data.
    """
    from repro.obs.fleet import merge_chrome_traces, store_trace_shards

    bench = None
    if bench_path and os.path.exists(bench_path):
        with open(bench_path) as fh:
            bench = json.load(fh)
    os.makedirs(out_dir, exist_ok=True)
    written = []
    shards = store_trace_shards(store)
    if shards:
        trace_path = os.path.join(out_dir, "merged.trace.json")
        merge_chrome_traces(shards, out_path=trace_path)
        written.append(trace_path)
    page = sweep_report_html(store, bench=bench, title=title)
    html_path = os.path.join(out_dir, "report.html")
    with open(html_path, "w") as fh:
        fh.write(page)
    written.append(html_path)
    return written
