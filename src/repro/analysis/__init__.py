"""Post-run analysis: traces, critical paths, timelines, exports."""

from repro.analysis.critical_path import CriticalPath, critical_path
from repro.analysis.fleet_report import sweep_report_html, write_report
from repro.analysis.report import (
    experiment_to_csv,
    experiment_to_json,
    stats_to_dict,
    stats_to_json,
    trace_to_json,
)
from repro.analysis.svg import grouped_bar_chart, line_chart
from repro.analysis.theory import (
    LAMBDA_GRID_FULL,
    LAMBDA_GRID_QUICK,
    LatencyFit,
    TheoryReport,
    fit_latency_model,
    run_theory_sweep,
)
from repro.analysis.timeline import place_timeline, steal_flow, worker_occupancy
from repro.analysis.trace import TaskRecord, Trace, TraceRecorder

__all__ = [
    "CriticalPath",
    "LAMBDA_GRID_FULL",
    "LAMBDA_GRID_QUICK",
    "LatencyFit",
    "TaskRecord",
    "TheoryReport",
    "Trace",
    "TraceRecorder",
    "critical_path",
    "experiment_to_csv",
    "experiment_to_json",
    "fit_latency_model",
    "grouped_bar_chart",
    "line_chart",
    "run_theory_sweep",
    "place_timeline",
    "stats_to_dict",
    "stats_to_json",
    "steal_flow",
    "sweep_report_html",
    "trace_to_json",
    "worker_occupancy",
    "write_report",
]
