"""ASCII timeline (Gantt-style) rendering of an execution trace."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.trace import Trace
from repro.errors import ConfigError

#: Busyness glyphs from idle to saturated.
_SHADES = " .:-=+*#%@"


def place_timeline(trace: Trace, width: int = 72,
                   title: str = "") -> str:
    """One row per place, shaded by the fraction of busy workers."""
    if width < 8:
        raise ConfigError("width must be >= 8")
    if trace.makespan <= 0 or trace.n_places < 1:
        return "(empty trace)"
    if trace.cycles_per_ms <= 0:
        raise ConfigError(
            f"invalid trace clock: cycles_per_ms={trace.cycles_per_ms!r}")
    profile = trace.place_busy_profile(buckets=width)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    for p, row in enumerate(profile):
        cells = "".join(
            _SHADES[min(len(_SHADES) - 1,
                        int(v * (len(_SHADES) - 1) + 0.5))]
            for v in row)
        out.append(f"p{p:02d} |{cells}|")
    out.append(f"     0{' ' * (width - 10)}"
               f"{trace.makespan / trace.cycles_per_ms:8.2f} ms")
    return "\n".join(out)


def steal_flow(trace: Trace, title: str = "") -> str:
    """Matrix of remotely-executed task counts: home place -> thief."""
    n = trace.n_places
    if n < 1:
        return "(empty trace)"
    counts = [[0] * n for _ in range(n)]
    for rec in trace.tasks:
        if rec.exec_place != rec.home_place:
            counts[rec.home_place][rec.exec_place] += 1
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    header = "home\\exec" + "".join(f"{p:>5d}" for p in range(n))
    out.append(header)
    for src in range(n):
        row = "".join(f"{counts[src][dst]:>5d}" for dst in range(n))
        out.append(f"{src:>9d}" + row)
    total = sum(sum(r) for r in counts)
    out.append(f"total tasks executed away from home: {total}")
    return "\n".join(out)


def worker_occupancy(trace: Trace, place: int,
                     width: int = 72) -> str:
    """Per-worker lanes for one place (1 row per worker)."""
    if not (0 <= place < trace.n_places):
        raise ConfigError(f"no such place: {place}")
    if width < 8:
        raise ConfigError("width must be >= 8")
    if trace.makespan <= 0:
        return "(empty trace)"
    lanes: dict[int, List[float]] = {
        w: [0.0] * width for w in range(trace.workers_per_place)}
    bucket = trace.makespan / width
    for rec in trace.tasks:
        if rec.exec_place != place or rec.worker is None:
            continue
        first = int(rec.start_time // bucket)
        last = int(min(rec.end_time, trace.makespan - 1e-9) // bucket)
        for b in range(first, min(last + 1, width)):
            lo = max(rec.start_time, b * bucket)
            hi = min(rec.end_time, (b + 1) * bucket)
            lanes[rec.worker][b] += max(0.0, hi - lo)
    out = [f"place {place} worker lanes:"]
    for w in range(trace.workers_per_place):
        cells = "".join(
            _SHADES[min(len(_SHADES) - 1,
                        int(v / bucket * (len(_SHADES) - 1) + 0.5))]
            for v in lanes[w])
        out.append(f" w{w} |{cells}|")
    return "\n".join(out)
