"""Latency-theory validation: measured makespans vs the λ·log₂W bound.

Gast/Khatiri/Trystram (arXiv 1805.01768 / 1805.00857) prove that
randomized work stealing with steal latency λ finishes a load of W work
on p processors in expected makespan

    C(W, p, λ)  ≈  W/p  +  c · λ · log₂ W

for a small constant c (their analysis gives c ≈ 4 for the classic
unit-steal protocol and tighter constants for steal-half).  The paper
this repository reproduces only *benchmarks* its schedulers; this module
checks them against the theory:

- sweep ``CostModel.net_latency`` over a λ grid, holding everything else
  fixed, through the ambient execution context (so ``--parallel``
  pools, result caches, and the SQLite experiment store all apply);
- per scheduler × app, fit measured makespan against the two-parameter
  model ``y = a + c · (λ·log₂W)`` by least squares and report the
  fitted constant ``c``, the intercept ``a`` (to be compared with the
  structural floor W/p), R², and per-point residuals;
- check the *unconditional* lower bound makespan ≥ W/p, which no
  scheduler may beat;
- emit a bound-vs-measured SVG per app (:func:`repro.analysis.svg.
  line_chart`) and a machine-readable JSON verdict.

The fit is meaningful for the schedulers the theory actually analyses
(RandomWS, and the steal-half/multi-steal variants of this repo's PR 8);
for locality-aware policies the fitted c quantifies how much steal
latency they manage to hide.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.topology import ClusterSpec, paper_cluster
from repro.errors import ConfigError
from repro.harness.parallel import CellRequest, run_cells

#: λ grids in cycles.  Every point must exceed the cost model's
#: ``local_steal_success`` (250 cycles) — ``CostModel.validate`` enforces
#: that a network hop is dearer than a local steal.
LAMBDA_GRID_QUICK: Tuple[float, ...] = (1_000.0, 3_000.0, 9_000.0,
                                        27_000.0)
LAMBDA_GRID_FULL: Tuple[float, ...] = (500.0, 1_500.0, 5_000.0, 15_000.0,
                                       45_000.0, 135_000.0)


@dataclass(frozen=True)
class LatencyFit:
    """Least-squares fit of ``makespan = a + c·(λ·log₂W)`` for one cell
    column (one scheduler × app over the λ grid)."""

    scheduler: str
    app: str
    lambdas: Tuple[float, ...]
    #: Mean measured makespan (cycles) per λ, seed-averaged.
    measured: Tuple[float, ...]
    #: Sequential work W (cycles) and worker count p.
    work_cycles: float
    workers: int
    #: Fitted latency constant c and intercept a.
    c: float
    intercept: float
    r_squared: float
    residuals: Tuple[float, ...]
    #: Smallest constant making ``W/p + c·λ·log₂W`` dominate every
    #: measurement — an empirical upper-bound certificate.
    bound_c: float
    #: Whether every measurement respects the structural floor W/p.
    lower_bound_holds: bool

    @property
    def makespan_floor(self) -> float:
        """The structural lower bound W/p (cycles)."""
        return self.work_cycles / self.workers

    def predicted(self, lam: float) -> float:
        """The fitted model evaluated at steal latency ``lam``."""
        return self.intercept + self.c * lam * math.log2(self.work_cycles)

    def bound(self, lam: float) -> float:
        """The certified upper bound ``W/p + bound_c·λ·log₂W``."""
        return (self.makespan_floor
                + self.bound_c * lam * math.log2(self.work_cycles))

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheduler": self.scheduler,
            "app": self.app,
            "lambdas": list(self.lambdas),
            "measured_makespan_cycles": list(self.measured),
            "work_cycles": self.work_cycles,
            "workers": self.workers,
            "makespan_floor": self.makespan_floor,
            "c": self.c,
            "intercept": self.intercept,
            "r_squared": self.r_squared,
            "residuals": list(self.residuals),
            "bound_c": self.bound_c,
            "lower_bound_holds": self.lower_bound_holds,
        }


def fit_latency_model(lambdas: Sequence[float],
                      makespans: Sequence[float],
                      work_cycles: float, workers: int,
                      scheduler: str = "?", app: str = "?") -> LatencyFit:
    """Fit ``makespan = a + c·(λ·log₂W)`` by ordinary least squares.

    Pure and deterministic — unit-testable on synthetic data.  Requires
    at least two distinct λ points; R² is reported against the variance
    of the measurements (1.0 for an exact fit).
    """
    if len(lambdas) != len(makespans):
        raise ConfigError("lambdas and makespans must align")
    if len(set(lambdas)) < 2:
        raise ConfigError("fitting needs at least two distinct lambdas")
    if work_cycles <= 1 or workers < 1:
        raise ConfigError("need positive work and at least one worker")
    log2w = math.log2(work_cycles)
    xs = [lam * log2w for lam in lambdas]
    ys = list(makespans)
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    c = sxy / sxx
    intercept = mean_y - c * mean_x
    predicted = [intercept + c * x for x in xs]
    residuals = tuple(y - p for y, p in zip(ys, predicted))
    ss_res = sum(r * r for r in residuals)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    if ss_tot == 0.0:
        r_squared = 1.0 if ss_res == 0.0 else 0.0
    else:
        r_squared = 1.0 - ss_res / ss_tot
    floor = work_cycles / workers
    bound_c = max((y - floor) / x for x, y in zip(xs, ys))
    lower_bound_holds = all(y >= floor for y in ys)
    return LatencyFit(scheduler=scheduler, app=app,
                      lambdas=tuple(float(l) for l in lambdas),
                      measured=tuple(float(y) for y in ys),
                      work_cycles=float(work_cycles), workers=int(workers),
                      c=c, intercept=intercept, r_squared=r_squared,
                      residuals=residuals, bound_c=bound_c,
                      lower_bound_holds=lower_bound_holds)


@dataclass
class TheoryReport:
    """All fits of one λ sweep plus figure/JSON renderers."""

    fits: List[LatencyFit] = field(default_factory=list)
    scale: str = "test"
    sched_seeds: Tuple[int, ...] = ()

    def fit_for(self, scheduler: str, app: str) -> LatencyFit:
        for f in self.fits:
            if f.scheduler == scheduler and f.app == app:
                return f
        raise ConfigError(
            f"no fit for {scheduler!r} x {app!r}; have "
            f"{[(f.scheduler, f.app) for f in self.fits]}")

    @property
    def apps(self) -> List[str]:
        seen: List[str] = []
        for f in self.fits:
            if f.app not in seen:
                seen.append(f.app)
        return seen

    def verdict(self) -> Dict[str, object]:
        """The machine-readable JSON verdict."""
        violations = [f"{f.scheduler}|{f.app}" for f in self.fits
                      if not f.lower_bound_holds]
        return {
            "model": "makespan = W/p + c * lambda * log2(W)",
            "scale": self.scale,
            "sched_seeds": list(self.sched_seeds),
            "lower_bound_violations": violations,
            "lower_bound_holds": not violations,
            "fits": [f.as_dict() for f in self.fits],
        }

    def to_json(self) -> str:
        return json.dumps(self.verdict(), indent=1, sort_keys=True)

    def figure(self, app: str) -> str:
        """Bound-vs-measured SVG for one app (all schedulers)."""
        from repro.analysis.svg import line_chart

        fits = [f for f in self.fits if f.app == app]
        if not fits:
            raise ConfigError(f"no fits for app {app!r}")
        lambdas = fits[0].lambdas
        series: Dict[str, Sequence[float]] = {}
        for f in fits:
            series[f"{f.scheduler} measured"] = list(f.measured)
            series[f"{f.scheduler} fit c={f.c:.2f}"] = [
                f.predicted(lam) for lam in lambdas]
        series["W/p floor"] = [fits[0].makespan_floor] * len(lambdas)
        return line_chart(
            list(lambdas), series,
            title=f"{app}: makespan vs steal latency "
                  f"(W/p + c*lambda*log2 W)",
            x_label="net_latency lambda (cycles)",
            y_label="makespan (cycles)")

    def rendered(self) -> str:
        """Human-readable summary table."""
        lines = ["theory: makespan = W/p + c*lambda*log2(W)",
                 f"{'scheduler':<16} {'app':<12} {'c':>8} {'R^2':>7} "
                 f"{'bound_c':>8} {'floor ok':>9}"]
        for f in self.fits:
            lines.append(
                f"{f.scheduler:<16} {f.app:<12} {f.c:>8.3f} "
                f"{f.r_squared:>7.3f} {f.bound_c:>8.3f} "
                f"{'yes' if f.lower_bound_holds else 'NO':>9}")
        return "\n".join(lines)


def run_theory_sweep(apps: Sequence[str] = ("uts",),
                     schedulers: Sequence[str] = ("RandomWS", "DistWS"),
                     spec: Optional[ClusterSpec] = None,
                     lambdas: Sequence[float] = LAMBDA_GRID_QUICK,
                     sched_seeds: Sequence[int] = (1, 2, 3, 4, 5),
                     scale: str = "test",
                     app_seed: int = 12345,
                     base_costs: CostModel = DEFAULT_COST_MODEL,
                     sched_kwargs: Optional[Dict[str, dict]] = None,
                     ) -> TheoryReport:
    """Sweep λ = ``net_latency`` and fit the latency model per column.

    One :class:`CellRequest` per (app, scheduler, λ) — each cell runs
    every scheduler seed — executed through the ambient
    :class:`~repro.harness.parallel.ExecutionContext`, so the sweep
    shards over a process pool, replays from a result cache, or drains
    through a crash-resilient experiment store, exactly like
    ``repro reproduce``.  Per-λ cost models flow into every
    ``RunSpec.cache_key``, so no two λ points can ever collide in a
    cache or store.

    ``sched_kwargs`` optionally maps scheduler name -> constructor knobs.
    """
    if len(set(lambdas)) < 2:
        raise ConfigError("a theory sweep needs >= 2 distinct lambdas")
    spec = spec or paper_cluster()
    requests = []
    columns = []
    for app in apps:
        for sched in schedulers:
            kwargs = (sched_kwargs or {}).get(sched)
            for lam in lambdas:
                costs = dataclasses.replace(base_costs,
                                            net_latency=float(lam))
                costs.validate()
                requests.append(CellRequest.build(
                    app, sched, spec=spec, sched_seeds=sched_seeds,
                    app_seed=app_seed, scale=scale, costs=costs,
                    sched_kwargs=kwargs))
            columns.append((app, sched))
    results = run_cells(requests)
    report = TheoryReport(scale=scale, sched_seeds=tuple(sched_seeds))
    per_column = len(lambdas)
    for i, (app, sched) in enumerate(columns):
        cells = results[i * per_column:(i + 1) * per_column]
        measured = [cell.mean(lambda r: r.stats.makespan_cycles)
                    for cell in cells]
        work = cells[0].mean(lambda r: r.stats.work_sum_cycles)
        report.fits.append(fit_latency_model(
            list(lambdas), measured, work, spec.total_workers,
            scheduler=sched, app=app))
    return report
