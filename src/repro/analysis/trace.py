"""Execution trace recording.

A :class:`TraceRecorder` attaches to a :class:`~repro.runtime.runtime.
SimRuntime` *before* the run and collects one record per task — spawn
time, queue time, execution window, worker, home vs executing place, and
the spawn edge to its parent — plus one record per successful steal.
The analysis tools (timeline rendering, critical-path extraction,
per-place load profiles) consume these traces.

Attachment is by wrapping two runtime hooks (`spawn` and the worker's
`execute`); the recorder never changes scheduling behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigError
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.stats import FaultEvent


@dataclass
class TaskRecord:
    """One executed task's lifecycle."""

    task_id: int
    label: str
    parent_id: Optional[int]
    home_place: int
    exec_place: int
    worker: int
    spawn_time: float
    start_time: float
    end_time: float
    work: float
    flexible: bool
    stolen_remotely: bool

    @property
    def duration(self) -> float:
        """Simulated execution duration (work + priced effects)."""
        return self.end_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Time between spawn and execution start."""
        return self.start_time - self.spawn_time


@dataclass
class Trace:
    """A completed run's trace."""

    tasks: List[TaskRecord] = field(default_factory=list)
    makespan: float = 0.0
    n_places: int = 0
    workers_per_place: int = 0
    #: Fault-injection timeline (crashes, spikes, losses, re-executions);
    #: empty for fault-free runs.
    fault_events: List["FaultEvent"] = field(default_factory=list)

    def by_id(self) -> Dict[int, TaskRecord]:
        return {t.task_id: t for t in self.tasks}

    def children_index(self) -> Dict[Optional[int], List[TaskRecord]]:
        idx: Dict[Optional[int], List[TaskRecord]] = {}
        for t in self.tasks:
            idx.setdefault(t.parent_id, []).append(t)
        return idx

    def place_busy_profile(self, buckets: int = 40) -> List[List[float]]:
        """Per-place fraction of workers busy, over ``buckets`` windows."""
        if buckets < 1:
            raise ConfigError("buckets must be >= 1")
        if self.makespan <= 0:
            return [[0.0] * buckets for _ in range(self.n_places)]
        width = self.makespan / buckets
        out = [[0.0] * buckets for _ in range(self.n_places)]
        for t in self.tasks:
            first = int(t.start_time // width)
            last = int(min(t.end_time, self.makespan - 1e-9) // width)
            for b in range(first, last + 1):
                lo = max(t.start_time, b * width)
                hi = min(t.end_time, (b + 1) * width)
                if hi > lo:
                    out[t.exec_place][b] += (hi - lo)
        denom = width * self.workers_per_place
        return [[min(1.0, v / denom) for v in row] for row in out]


class TraceRecorder:
    """Attach to a runtime to capture its execution trace."""

    def __init__(self, runtime: SimRuntime) -> None:
        if runtime._started:
            raise ConfigError("attach the recorder before running")
        self.runtime = runtime
        self.trace = Trace(n_places=runtime.spec.n_places,
                           workers_per_place=runtime.spec.workers_per_place)
        self._spawn_times: Dict[int, float] = {}
        self._parents: Dict[int, Optional[int]] = {}
        self._install()

    def _install(self) -> None:
        rt = self.runtime
        orig_spawn = rt.spawn
        orig_finished = rt.task_finished

        def spawn(task: Task, from_place=None, finish=None,
                  from_worker=None):
            self._spawn_times[task.task_id] = rt.env.now
            parent = None
            if from_worker is not None:
                # The currently executing task on that worker (if any)
                # is the spawner; worker.execute sets exec markers first.
                parent = self._current_of.get(from_worker.wid)
            self._parents[task.task_id] = parent
            return orig_spawn(task, from_place=from_place, finish=finish,
                              from_worker=from_worker)

        self._current_of: Dict[tuple, Optional[int]] = {}

        def task_finished(task: Task, worker):
            self._current_of[worker.wid] = None
            self.trace.tasks.append(TaskRecord(
                task_id=task.task_id,
                label=task.label,
                parent_id=self._parents.get(task.task_id),
                home_place=task.home_place,
                exec_place=task.exec_place,
                worker=task.exec_worker,
                spawn_time=self._spawn_times.get(task.task_id, 0.0),
                start_time=task.start_time,
                end_time=task.end_time,
                work=task.work,
                flexible=task.is_flexible,
                stolen_remotely=task.stolen_remotely,
            ))
            return orig_finished(task, worker)

        rt.spawn = spawn  # type: ignore[method-assign]
        rt.task_finished = task_finished  # type: ignore[method-assign]

        # Track which task each worker is currently executing, so spawn
        # edges can name their parent.
        from repro.runtime.worker import Worker
        recorder = self

        for place in rt.places:
            for w in place.workers:
                orig_exec = w.execute

                def make_exec(w=w, orig_exec=orig_exec):
                    def execute(task):
                        recorder._current_of[w.wid] = task.task_id
                        result = yield from orig_exec(task)
                        return result
                    return execute

                w.execute = make_exec()  # type: ignore[method-assign]

    def finalize(self) -> Trace:
        """Snapshot the trace after the run completed."""
        self.trace.makespan = self.runtime.env.now
        self.trace.tasks.sort(key=lambda t: t.start_time)
        if self.runtime.faults is not None:
            self.trace.fault_events = list(self.runtime.faults.events)
        return self.trace
