"""Execution trace recording.

A :class:`TraceRecorder` attaches to a :class:`~repro.runtime.runtime.
SimRuntime` *before* the run and collects one record per task — spawn
time, queue time, execution window, worker, home vs executing place, and
the spawn edge to its parent.  The analysis tools (timeline rendering,
critical-path extraction, per-place load profiles) consume these traces.

The recorder is one subscriber on the :mod:`repro.obs` event bus: it
listens to ``task_spawn`` / ``task_end`` events rather than wrapping
runtime hooks.  If the runtime already has a bus attached the recorder
joins it; otherwise it creates a private one.  Either way it never
changes scheduling behaviour — events consume no simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.bus import EventBus
from repro.obs.events import ObsEvent
from repro.obs.sinks import Sink
from repro.runtime.runtime import SimRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.stats import FaultEvent


@dataclass
class TaskRecord:
    """One executed task's lifecycle."""

    task_id: int
    label: str
    parent_id: Optional[int]
    home_place: int
    exec_place: int
    worker: int
    spawn_time: float
    start_time: float
    end_time: float
    work: float
    flexible: bool
    stolen_remotely: bool

    @property
    def duration(self) -> float:
        """Simulated execution duration (work + priced effects)."""
        return self.end_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Time between spawn and execution start."""
        return self.start_time - self.spawn_time


@dataclass
class Trace:
    """A completed run's trace."""

    tasks: List[TaskRecord] = field(default_factory=list)
    makespan: float = 0.0
    n_places: int = 0
    workers_per_place: int = 0
    #: Simulated clock rate the run was priced with; converts cycle
    #: timestamps to wall-clock axes (2e6 = the default 2 GHz model).
    cycles_per_ms: float = 2_000_000.0
    #: Fault-injection timeline (crashes, spikes, losses, re-executions);
    #: empty for fault-free runs.
    fault_events: List["FaultEvent"] = field(default_factory=list)

    def by_id(self) -> Dict[int, TaskRecord]:
        return {t.task_id: t for t in self.tasks}

    def children_index(self) -> Dict[Optional[int], List[TaskRecord]]:
        idx: Dict[Optional[int], List[TaskRecord]] = {}
        for t in self.tasks:
            idx.setdefault(t.parent_id, []).append(t)
        return idx

    def place_busy_profile(self, buckets: int = 40) -> List[List[float]]:
        """Per-place fraction of workers busy, over ``buckets`` windows."""
        if buckets < 1:
            raise ConfigError("buckets must be >= 1")
        if self.makespan <= 0 or self.workers_per_place < 1:
            return [[0.0] * buckets for _ in range(self.n_places)]
        width = self.makespan / buckets
        out = [[0.0] * buckets for _ in range(self.n_places)]
        for t in self.tasks:
            first = int(t.start_time // width)
            last = int(min(t.end_time, self.makespan - 1e-9) // width)
            for b in range(first, last + 1):
                lo = max(t.start_time, b * width)
                hi = min(t.end_time, (b + 1) * width)
                if hi > lo:
                    out[t.exec_place][b] += (hi - lo)
        denom = width * self.workers_per_place
        return [[min(1.0, v / denom) for v in row] for row in out]


class TraceRecorder(Sink):
    """Attach to a runtime to capture its execution trace.

    Subscribes to the runtime's event bus (creating one when the runtime
    has none).  The public surface is unchanged from the hook-wrapping
    implementation it replaced: construct before :meth:`SimRuntime.run`,
    call :meth:`finalize` after.
    """

    def __init__(self, runtime: SimRuntime) -> None:
        if runtime._started:
            raise ConfigError("attach the recorder before running")
        self.runtime = runtime
        self.trace = Trace(n_places=runtime.spec.n_places,
                           workers_per_place=runtime.spec.workers_per_place,
                           cycles_per_ms=runtime.costs.cycles_per_ms)
        self._spawn_times: Dict[int, float] = {}
        self._parents: Dict[int, Optional[int]] = {}
        if runtime.obs is not None:
            runtime.obs.subscribe(self)
        else:
            bus = EventBus()
            bus.subscribe(self)
            bus.attach(runtime)

    def on_event(self, ev: ObsEvent) -> None:
        if ev.kind == "task_spawn":
            f = ev.fields
            self._spawn_times[f["task"]] = ev.t
            self._parents[f["task"]] = f["parent"]
        elif ev.kind == "task_end":
            f = ev.fields
            self.trace.tasks.append(TaskRecord(
                task_id=f["task"],
                label=f["label"],
                parent_id=self._parents.get(f["task"]),
                home_place=f["home"],
                exec_place=f["place"],
                worker=f["worker"],
                spawn_time=self._spawn_times.get(f["task"], 0.0),
                start_time=f["start"],
                end_time=ev.t,
                work=f["work"],
                flexible=f["flexible"],
                stolen_remotely=f["stolen"],
            ))

    def finalize(self) -> Trace:
        """Snapshot the trace after the run completed."""
        self.trace.makespan = self.runtime.env.now
        self.trace.tasks.sort(key=lambda t: t.start_time)
        if self.runtime.faults is not None:
            self.trace.fault_events = list(self.runtime.faults.events)
        return self.trace
