"""Machine-readable exports of runs and experiment outputs.

JSON and CSV writers for :class:`~repro.runtime.stats.RunStats`,
:class:`~repro.harness.paper.ExperimentOutput`, and traces — so results
can be archived, diffed across commits, or plotted elsewhere.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Optional

from repro.analysis.trace import Trace
from repro.harness.paper import ExperimentOutput
from repro.runtime.stats import RunStats


def stats_to_dict(stats: RunStats) -> Dict[str, Any]:
    """Full, JSON-safe dump of one run's statistics."""
    return {
        "cluster": {
            "places": stats.n_places,
            "workers_per_place": stats.workers_per_place,
        },
        "makespan_cycles": stats.makespan_cycles,
        "tasks": {
            "spawned": stats.tasks_spawned,
            "executed": stats.tasks_executed,
            "executed_remote": stats.tasks_executed_remote,
            "by_label": dict(stats.tasks_by_label),
            "mean_granularity_cycles": stats.mean_task_granularity_cycles,
        },
        "steals": {
            "local_attempts": stats.steals.local_attempts,
            "local_hits": stats.steals.local_hits,
            "shared_local_hits": stats.steals.shared_local_hits,
            "mailbox_hits": stats.steals.mailbox_hits,
            "remote_attempts": stats.steals.remote_attempts,
            "remote_hits": stats.steals.remote_hits,
            "remote_tasks_received": stats.steals.remote_tasks_received,
            "failed_rounds": stats.steals.failed_rounds,
            "total": stats.steals.total_steals,
            "steals_to_task_ratio": stats.steals_to_task_ratio,
        },
        "memory": {
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "l1_miss_rate": stats.l1_miss_rate,
            "remote_references": stats.remote_references,
            "block_migrations": stats.block_migrations,
        },
        "network": {
            "messages": stats.messages,
            "bytes": stats.bytes_transmitted,
            "by_kind": dict(stats.messages_by_kind),
        },
        "utilization": {
            "per_node": stats.node_utilization(),
            "mean": stats.utilization_mean(),
            "spread": stats.utilization_spread(),
            "stdev": stats.utilization_stdev(),
        },
    }


def stats_to_json(stats: RunStats, indent: Optional[int] = 2) -> str:
    """JSON text of :func:`stats_to_dict`."""
    return json.dumps(stats_to_dict(stats), indent=indent, sort_keys=True)


def experiment_to_json(out: ExperimentOutput,
                       indent: Optional[int] = 2) -> str:
    """JSON text of one paper artifact's structured rows."""
    return json.dumps({
        "experiment": out.experiment,
        "headers": out.headers,
        "rows": out.rows,
    }, indent=indent, sort_keys=True)


def experiment_to_csv(out: ExperimentOutput) -> str:
    """CSV text (header + rows) of one paper artifact."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(out.headers)
    for row in out.rows:
        writer.writerow(row)
    return buf.getvalue()


def trace_to_json(trace: Trace, indent: Optional[int] = None) -> str:
    """JSON text of a full execution trace (one object per task)."""
    return json.dumps({
        "makespan": trace.makespan,
        "n_places": trace.n_places,
        "workers_per_place": trace.workers_per_place,
        "cycles_per_ms": trace.cycles_per_ms,
        "tasks": [{
            "id": t.task_id,
            "label": t.label,
            "parent": t.parent_id,
            "home": t.home_place,
            "exec": t.exec_place,
            "worker": t.worker,
            "spawn": t.spawn_time,
            "start": t.start_time,
            "end": t.end_time,
            "work": t.work,
            "flexible": t.flexible,
            "stolen_remotely": t.stolen_remotely,
        } for t in trace.tasks],
    }, indent=indent)
