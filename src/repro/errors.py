"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.

Hierarchy::

    ReproError
    ├── SimulationError      — the event kernel misused / bad state
    │   └── DeadlockError    — heap drained with processes still waiting
    ├── SchedulerError       — a policy violated an invariant
    ├── PlacementError       — task/block addressed to a nonexistent place
    ├── AppError             — an application produced a bad result
    ├── ConfigError          — inconsistent experiment/cluster configuration
    └── FaultError           — the fault-injection subsystem
        └── PlaceFailedError — a fail-stop place crash made progress
                               impossible for a locality-sensitive task

:class:`FaultError` covers misuse of the fault subsystem itself (e.g. a
task re-executed twice, violating the exactly-once ledger).
:class:`PlaceFailedError` is the *semantic* failure: a locality-sensitive
task is pinned to a crashed place and the plan's sensitive-task policy is
``fail`` (the default) — the run aborts instead of silently violating the
locality guarantee.  Under the ``relax`` policy the task is degraded to
locality-flexible and re-executed by a survivor instead.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised when :meth:`repro.sim.engine.Environment.run` exhausts the event
    heap but at least one live process is blocked on an event that can no
    longer be triggered by anyone.
    """


class SchedulerError(ReproError):
    """A scheduling policy violated an invariant (e.g. moved a sensitive task)."""


class PlacementError(ReproError):
    """A task or data block was addressed to a place that does not exist."""


class AppError(ReproError):
    """An application produced an invalid result or received bad parameters."""


class ConfigError(ReproError):
    """An experiment or cluster configuration is inconsistent."""


class FaultError(ReproError):
    """The fault-injection subsystem detected an unrecoverable condition.

    Also the base class for all fault-model failures, so resilience tests
    can catch the whole family with one clause.
    """


class PlaceFailedError(FaultError):
    """A fail-stop crash left a locality-sensitive task without its home place.

    Raised under the default ``fail`` sensitive-task policy when a crashed
    place holds (or is the target of) a locality-sensitive task; the
    ``relax`` policy degrades such tasks to flexible instead of raising.
    """
