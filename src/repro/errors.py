"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised when :meth:`repro.sim.engine.Environment.run` exhausts the event
    heap but at least one live process is blocked on an event that can no
    longer be triggered by anyone.
    """


class SchedulerError(ReproError):
    """A scheduling policy violated an invariant (e.g. moved a sensitive task)."""


class PlacementError(ReproError):
    """A task or data block was addressed to a place that does not exist."""


class AppError(ReproError):
    """An application produced an invalid result or received bad parameters."""


class ConfigError(ReproError):
    """An experiment or cluster configuration is inconsistent."""
