"""The programmer-facing APGAS layer (X10-flavoured).

Applications are written against :class:`Apgas`, which mirrors the X10
constructs the paper relies on (§III):

- ``async_at(p, body, ...)`` — X10's ``async (p) S`` (with the optional
  ``@AnyPlaceTask`` flexibility hint);
- ``finish(name)`` — a termination scope; ``scope.on_complete`` builds
  phase barriers;
- ``alloc(p, nbytes)`` — place data at ``p`` (the priced PGAS memory);
- :class:`~repro.apgas.dist_array.DistArray` — ``DistArray.make`` over a
  block distribution;
- :class:`~repro.apgas.plh.PlaceLocalHandle` — per-place storage resolved
  locally (§VI-B).

A single :class:`Apgas` object wraps one :class:`SimRuntime`; the
application's ``build`` callable receives it and spawns root activities.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cluster.memory import DataBlock
from repro.errors import ConfigError
from repro.runtime.finish import FinishScope
from repro.runtime.runtime import SimRuntime
from repro.runtime.task import Task, TaskContext
from repro.apgas.annotations import resolve_locality


class Apgas:
    """X10-style façade over a simulated runtime."""

    def __init__(self, runtime: SimRuntime) -> None:
        self.rt = runtime

    # -- places ------------------------------------------------------------
    @property
    def n_places(self) -> int:
        """Number of places in the cluster."""
        return self.rt.spec.n_places

    def places(self) -> range:
        """Iterable of place ids (X10's ``Place.places()``)."""
        return range(self.n_places)

    def place_of(self, index: int, n_items: int) -> int:
        """Home place of item ``index`` under a block distribution."""
        if not (0 <= index < n_items):
            raise ConfigError(f"index {index} outside 0..{n_items - 1}")
        from repro.cluster.memory import block_distribution
        for p, chunk in enumerate(block_distribution(n_items, self.n_places)):
            if index in chunk:
                return p
        raise AssertionError("unreachable")  # pragma: no cover

    # -- memory ----------------------------------------------------------------
    def alloc(self, place: int, nbytes: int, label: str = "") -> DataBlock:
        """Allocate a data block homed at ``place``."""
        return self.rt.memory.allocate(place, nbytes, label)

    # -- activities ----------------------------------------------------------------
    def async_at(
        self,
        place: int,
        body: Optional[Callable[[TaskContext], None]] = None,
        *,
        work: float = 0.0,
        reads: Sequence[DataBlock] = (),
        writes: Sequence[DataBlock] = (),
        flexible: Optional[bool] = None,
        encapsulates: bool = False,
        copy_back: Sequence[DataBlock] = (),
        closure_bytes: int = 256,
        label: str = "",
        finish: Optional[FinishScope] = None,
    ) -> Task:
        """X10's ``async (p) S`` — spawn an activity homed at ``place``.

        This is the *root-level* entry point (program build time or finish
        continuations); inside a running activity use ``ctx.spawn`` so the
        spawn is charged to the parent task.  ``flexible=True`` (or an
        ``@any_place_task``-decorated body) makes the task available for
        distributed stealing.
        """
        task = Task(
            body, place,
            locality=resolve_locality(body, flexible),
            work=work, reads=reads, writes=writes,
            encapsulates=encapsulates, copy_back=copy_back,
            closure_bytes=closure_bytes, label=label)
        self.rt.spawn(task, from_place=None, finish=finish)
        return task

    def finish(self, name: str = "finish",
               parent: Optional[FinishScope] = None) -> FinishScope:
        """Create a finish scope (child of the root scope by default).

        The caller must :meth:`~repro.runtime.finish.FinishScope.close` the
        scope once every task that will ever join it has been spawned.
        """
        return FinishScope(name, parent=parent or self.rt.root_finish)

    # -- conveniences ------------------------------------------------------------
    def rng(self, *names: object):
        """Deterministic RNG stream for application input synthesis."""
        return self.rt.rngs.stream("app", *names)

    @property
    def costs(self):
        """The active cost model (apps use it to size task work)."""
        return self.rt.costs
