"""X10-flavoured APGAS programming layer over the simulated runtime."""

from repro.apgas.annotations import any_place_task, is_any_place_task, resolve_locality
from repro.apgas.api import Apgas
from repro.apgas.dist_array import DistArray
from repro.apgas.plh import PlaceLocalHandle

__all__ = [
    "Apgas",
    "DistArray",
    "PlaceLocalHandle",
    "any_place_task",
    "is_any_place_task",
    "resolve_locality",
]
