"""``PlaceLocalHandle``: one storage slot per place (§VI-B).

"A PlaceLocalHandle is a unique identifier that resolves to a unique local
piece of storage at each Place."  The runtime uses the same idea for its
load-status objects; applications use it for per-place partial results
(e.g. k-means partial sums) without any cross-place synchronization.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.errors import PlacementError

T = TypeVar("T")


class PlaceLocalHandle(Generic[T]):
    """Per-place storage resolved by place id."""

    def __init__(self, n_places: int,
                 factory: Optional[Callable[[int], T]] = None) -> None:
        if n_places < 1:
            raise PlacementError(f"n_places must be >= 1, got {n_places}")
        self.n_places = n_places
        self._slots: Dict[int, T] = {}
        if factory is not None:
            for p in range(n_places):
                self._slots[p] = factory(p)

    def at(self, place: int) -> T:
        """Resolve the handle at ``place`` (X10's ``plh()``)."""
        self._check(place)
        try:
            return self._slots[place]
        except KeyError:
            raise PlacementError(
                f"handle has no value at place {place}") from None

    def set(self, place: int, value: T) -> None:
        """Store ``value`` at ``place``."""
        self._check(place)
        self._slots[place] = value

    def has(self, place: int) -> bool:
        """Whether the handle holds a value at ``place``."""
        self._check(place)
        return place in self._slots

    def items(self) -> Iterator[Tuple[int, T]]:
        """Iterate ``(place, value)`` pairs in place order."""
        for p in sorted(self._slots):
            yield p, self._slots[p]

    def _check(self, place: int) -> None:
        if not (0 <= place < self.n_places):
            raise PlacementError(
                f"place {place} out of range 0..{self.n_places - 1}")
