"""The ``@AnyPlaceTask`` annotation (§VI-A).

The paper's entire programmer interface is one annotation::

    @AnyPlaceTask async(p) S

Here the same hint is available two ways:

- decorate a task body with :func:`any_place_task`; bodies so marked
  default to :data:`~repro.runtime.task.FLEXIBLE` when spawned;
- or pass ``flexible=True`` to :meth:`repro.apgas.api.Apgas.async_at`
  (explicit argument wins over the decorator).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.runtime.task import FLEXIBLE, SENSITIVE, Locality

#: Attribute set on decorated bodies.
_MARK = "_repro_any_place_task"


def any_place_task(body: Callable) -> Callable:
    """Mark ``body`` as locality-flexible (the ``@AnyPlaceTask`` hint)."""
    setattr(body, _MARK, True)
    return body


def is_any_place_task(body: Optional[Callable]) -> bool:
    """Whether ``body`` carries the ``@AnyPlaceTask`` mark."""
    return body is not None and getattr(body, _MARK, False)


def resolve_locality(body: Optional[Callable],
                     flexible: Optional[bool]) -> Locality:
    """Combine the decorator mark and the explicit ``flexible`` argument."""
    if flexible is not None:
        return FLEXIBLE if flexible else SENSITIVE
    return FLEXIBLE if is_any_place_task(body) else SENSITIVE
