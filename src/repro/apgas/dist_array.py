"""``DistArray``: a block-distributed global array (X10's ``DistArray``).

The *data* lives in one NumPy array (the simulator runs in one address
space); the *placement* is a block distribution over places, with one
:class:`~repro.cluster.memory.DataBlock` per (place, array) chunk so tasks
can declare which chunks they read and write and have those touches priced
by the memory model — exactly the information an X10 programmer reasons
about when deciding which tasks are locality-flexible (§III).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.apgas.api import Apgas
from repro.cluster.memory import DataBlock, block_distribution
from repro.errors import ConfigError


class DistArray:
    """A 1-D distributed array with block placement."""

    def __init__(self, apgas: Apgas, data: np.ndarray,
                 bytes_per_element: int, label: str = "distarray") -> None:
        if data.ndim != 1:
            raise ConfigError("DistArray is one-dimensional")
        self.apgas = apgas
        self.data = data
        self.label = label
        self.bytes_per_element = int(bytes_per_element)
        self.chunks: List[range] = block_distribution(len(data), apgas.n_places)
        self.blocks: List[DataBlock] = [
            apgas.alloc(p, len(chunk) * self.bytes_per_element,
                        label=f"{label}[p{p}]")
            for p, chunk in enumerate(self.chunks)
        ]

    # -- construction ------------------------------------------------------
    @classmethod
    def make(cls, apgas: Apgas, n: int,
             init: Optional[Callable[[int], float]] = None,
             dtype=np.float64, bytes_per_element: int = 8,
             label: str = "distarray") -> "DistArray":
        """X10's ``DistArray.make[T](Dist.makeBlock(R), init)``."""
        if n < 0:
            raise ConfigError(f"array size must be >= 0, got {n}")
        if init is None:
            data = np.zeros(n, dtype=dtype)
        else:
            data = np.fromiter((init(i) for i in range(n)), dtype=dtype,
                               count=n)
        return cls(apgas, data, bytes_per_element, label)

    @classmethod
    def from_numpy(cls, apgas: Apgas, array: np.ndarray,
                   bytes_per_element: Optional[int] = None,
                   label: str = "distarray") -> "DistArray":
        """Wrap an existing 1-D NumPy array."""
        bpe = bytes_per_element if bytes_per_element is not None \
            else array.dtype.itemsize
        return cls(apgas, np.asarray(array), bpe, label)

    # -- placement queries ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def place_of(self, index: int) -> int:
        """Home place of element ``index``."""
        if not (0 <= index < len(self.data)):
            raise ConfigError(f"index {index} outside the array")
        for p, chunk in enumerate(self.chunks):
            if chunk.start <= index < chunk.stop:
                return p
        raise AssertionError("unreachable")  # pragma: no cover

    def chunk_of(self, place: int) -> range:
        """Index range homed at ``place``."""
        if not (0 <= place < len(self.chunks)):
            raise ConfigError(f"no such place: {place}")
        return self.chunks[place]

    def block_of(self, place: int) -> DataBlock:
        """The data block backing ``place``'s chunk."""
        if not (0 <= place < len(self.blocks)):
            raise ConfigError(f"no such place: {place}")
        return self.blocks[place]

    def blocks_for(self, indices: Sequence[int]) -> List[DataBlock]:
        """De-duplicated blocks covering ``indices``."""
        seen: dict[int, DataBlock] = {}
        for i in indices:
            b = self.block_of(self.place_of(i))
            seen.setdefault(b.block_id, b)
        return list(seen.values())

    # -- data access (real values; pricing is declared on tasks) -----------------
    def __getitem__(self, index):
        return self.data[index]

    def __setitem__(self, index, value) -> None:
        self.data[index] = value

    def local_view(self, place: int) -> np.ndarray:
        """NumPy view of the chunk homed at ``place``."""
        chunk = self.chunk_of(place)
        return self.data[chunk.start:chunk.stop]
