"""The task ledger: exactly-once execution accounting under faults.

When a place fail-stops, every task queued or running (uncommitted) there
is *lost* and must be re-executed by a survivor — but exactly once: a task
that runs twice duplicates its real side effects (bodies mutate genuine
Python state), and a task that never re-runs hangs its ``finish`` scope.

Under multi-crash plans a task can be lost more than once: relocation
picks a survivor of the *current* crash, and nothing stops that survivor
from fail-stopping later (or from the task being stolen onto a place that
does) while the task is still queued.  The ledger therefore tracks loss
and relocation as balanced *counters* per task — every loss must be
answered by exactly one relocation before the next loss — while
completion stays strictly exactly-once.

The :class:`TaskLedger` is the runtime's book of record for this
invariant.  It is only instantiated when a fault injector with a
non-empty plan attaches, so fault-free runs pay nothing.  The chaos
benchmarks call :meth:`assert_work_conserved` after a run to prove work
conservation (every spawned task executed exactly once among survivors).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, Set

from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.task import Task


class TaskLedger:
    """Tracks spawn / loss / re-execution / completion of every task."""

    def __init__(self) -> None:
        self._spawned: Set[int] = set()
        self._executed: Counter = Counter()
        #: Loss events per task (a task may be lost to several crashes).
        self._losses: Counter = Counter()
        #: Relocations per task; must always trail losses by at most one.
        self._reexecutions: Counter = Counter()
        #: Simulated time of each task's most recent loss.
        self._lost_at: Dict[int, float] = {}

    # -- recording ---------------------------------------------------------
    def record_spawn(self, task: "Task") -> None:
        """A task entered the system via :meth:`SimRuntime.spawn`."""
        self._spawned.add(task.task_id)

    def record_loss(self, task: "Task", now: float) -> None:
        """A task was lost to a crash (queued, or in flight uncommitted).

        Legal any number of times, provided every earlier loss was
        answered by a relocation — losing a task while it is still
        awaiting relocation means two crash handlers claimed it at once.
        """
        tid = task.task_id
        if self._losses[tid] != self._reexecutions[tid]:
            raise FaultError(
                f"task {tid} lost again while awaiting relocation; "
                "crash handlers must not overlap on the same task")
        if self._executed[tid]:
            raise FaultError(
                f"completed task {tid} recorded as lost")
        self._losses[tid] += 1
        self._lost_at[tid] = now

    def record_reexecution(self, task: "Task") -> None:
        """A lost task was handed to a survivor. Exactly once per loss."""
        tid = task.task_id
        if self._reexecutions[tid] >= self._losses[tid]:
            if not self._losses[tid]:
                raise FaultError(
                    f"task {tid} re-executed without being lost")
            raise FaultError(
                f"task {tid} relocated twice for one loss "
                "(exactly-once violation)")
        self._reexecutions[tid] += 1

    def record_execution(self, task: "Task") -> None:
        """A task completed (its effects committed)."""
        self._executed[task.task_id] += 1
        if self._executed[task.task_id] > 1:
            raise FaultError(
                f"task {task.task_id} completed "
                f"{self._executed[task.task_id]} times "
                "(exactly-once violation)")

    # -- queries -----------------------------------------------------------
    @property
    def lost_count(self) -> int:
        """Distinct tasks lost to crashes (not loss events)."""
        return len(self._losses)

    @property
    def loss_events(self) -> int:
        """Total loss events, counting a twice-lost task twice."""
        return sum(self._losses.values())

    @property
    def reexecuted_count(self) -> int:
        """Distinct lost tasks re-executed by survivors."""
        return len(self._reexecutions)

    def pending_lost(self) -> Set[int]:
        """Lost task ids that have not completed yet."""
        return {tid for tid in self._losses if not self._executed[tid]}

    def assert_work_conserved(self) -> None:
        """Every spawned task executed exactly once, or raise FaultError."""
        never_ran = [tid for tid in self._spawned if not self._executed[tid]]
        if never_ran:
            raise FaultError(
                f"{len(never_ran)} task(s) never executed: "
                f"{sorted(never_ran)[:10]}")
        multi = [tid for tid, n in self._executed.items() if n > 1]
        if multi:
            raise FaultError(
                f"{len(multi)} task(s) executed more than once: "
                f"{sorted(multi)[:10]}")
        unrequited = [tid for tid in self._losses
                      if self._reexecutions[tid] < self._losses[tid]]
        if unrequited:
            raise FaultError(
                f"{len(unrequited)} lost task(s) completed without a "
                f"recorded re-execution: {sorted(unrequited)[:10]}")
