"""The task ledger: exactly-once execution accounting under faults.

When a place fail-stops, every task queued or running (uncommitted) there
is *lost* and must be re-executed by a survivor — but exactly once: a task
that runs twice duplicates its real side effects (bodies mutate genuine
Python state), and a task that never re-runs hangs its ``finish`` scope.

The :class:`TaskLedger` is the runtime's book of record for this
invariant.  It is only instantiated when a fault injector with a
non-empty plan attaches, so fault-free runs pay nothing.  The chaos
benchmarks call :meth:`assert_work_conserved` after a run to prove work
conservation (every spawned task executed exactly once among survivors).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, Set

from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.task import Task


class TaskLedger:
    """Tracks spawn / loss / re-execution / completion of every task."""

    def __init__(self) -> None:
        self._spawned: Set[int] = set()
        self._executed: Counter = Counter()
        self._lost: Dict[int, float] = {}
        self._reexecuted: Set[int] = set()

    # -- recording ---------------------------------------------------------
    def record_spawn(self, task: "Task") -> None:
        """A task entered the system via :meth:`SimRuntime.spawn`."""
        self._spawned.add(task.task_id)

    def record_loss(self, task: "Task", now: float) -> None:
        """A task was lost to a crash (queued, or in flight uncommitted)."""
        if task.task_id in self._lost:
            raise FaultError(
                f"task {task.task_id} lost twice; fail-stop crashes must "
                "not overlap on the same task")
        self._lost[task.task_id] = now

    def record_reexecution(self, task: "Task") -> None:
        """A lost task was handed to a survivor. Exactly once per task."""
        if task.task_id not in self._lost:
            raise FaultError(
                f"task {task.task_id} re-executed without being lost")
        if task.task_id in self._reexecuted:
            raise FaultError(
                f"task {task.task_id} re-executed twice "
                "(exactly-once violation)")
        self._reexecuted.add(task.task_id)

    def record_execution(self, task: "Task") -> None:
        """A task completed (its effects committed)."""
        self._executed[task.task_id] += 1
        if self._executed[task.task_id] > 1:
            raise FaultError(
                f"task {task.task_id} completed "
                f"{self._executed[task.task_id]} times "
                "(exactly-once violation)")

    # -- queries -----------------------------------------------------------
    @property
    def lost_count(self) -> int:
        """Tasks recorded as lost to crashes."""
        return len(self._lost)

    @property
    def reexecuted_count(self) -> int:
        """Lost tasks re-executed by survivors."""
        return len(self._reexecuted)

    def pending_lost(self) -> Set[int]:
        """Lost task ids that have not completed yet."""
        return {tid for tid in self._lost if not self._executed[tid]}

    def assert_work_conserved(self) -> None:
        """Every spawned task executed exactly once, or raise FaultError."""
        never_ran = [tid for tid in self._spawned if not self._executed[tid]]
        if never_ran:
            raise FaultError(
                f"{len(never_ran)} task(s) never executed: "
                f"{sorted(never_ran)[:10]}")
        multi = [tid for tid, n in self._executed.items() if n > 1]
        if multi:
            raise FaultError(
                f"{len(multi)} task(s) executed more than once: "
                f"{sorted(multi)[:10]}")
        unrequited = set(self._lost) - self._reexecuted
        if unrequited:
            raise FaultError(
                f"{len(unrequited)} lost task(s) completed without a "
                f"recorded re-execution: {sorted(unrequited)[:10]}")
