"""Work deques: per-worker private deques and per-place shared deques.

Fig. 2 of the paper: each place has one *private* deque per worker (holding
locality-sensitive tasks, plus flexible tasks redirected by Algorithm 1
lines 5-6) and one *shared* deque (holding locality-flexible tasks, the only
deque remote thieves may touch).

Access disciplines (§V-A):

- private deque — the owner pushes and pops at the same end (LIFO), which
  "leads the local worker to execute the most recently created task and thus
  offers a higher chance of exploiting cache locality"; co-located thieves
  take from the opposite end (the oldest task).  No lock is modelled — X10's
  private deques use owner-biased synchronization whose cost is folded into
  the cost-model constants.
- shared deque — strict FIFO for *every* consumer "to ensure that any steal
  operation, whether local or remote, receives the oldest task in the
  deque", because older tasks carry the most work.  Guarded by a
  :class:`~repro.sim.resources.SimLock` so contention costs simulated time.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.runtime.task import Task, TaskState
from repro.sim.engine import Environment
from repro.sim.resources import SimLock


class PrivateDeque:
    """A worker's unsynchronized double-ended work queue.

    When constructed with ``place``/``owner`` backrefs (the runtime always
    does; bare construction in tests skips this), every push/pop/steal
    maintains the place's O(1) load counters — ``_n_private`` (total
    privately queued tasks) and ``_n_spare`` (idle workers with empty
    deques) — so Algorithm 1's per-spawn ``size(p)``/``spares(p)`` queries
    stop rescanning every worker.
    """

    __slots__ = ("owner_place", "owner_worker", "_items", "pushes", "owner_pops",
                 "thief_takes", "place", "owner")

    def __init__(self, owner_place: int, owner_worker: int,
                 place=None, owner=None) -> None:
        self.owner_place = owner_place
        self.owner_worker = owner_worker
        self._items: deque[Task] = deque()
        self.pushes = 0
        self.owner_pops = 0
        self.thief_takes = 0
        #: Owning :class:`~repro.runtime.place.Place` (load counters).
        self.place = place
        #: Owning :class:`~repro.runtime.worker.Worker` (spare bookkeeping).
        self.owner = owner

    def __len__(self) -> int:
        return len(self._items)

    def push(self, task: Task) -> None:
        """Owner (or the mapper) adds a task at the hot end."""
        task.state = TaskState.QUEUED
        items = self._items
        items.append(task)
        self.pushes += 1
        place = self.place
        if place is not None:
            place._n_private += 1
            if len(items) == 1:
                owner = self.owner
                if owner is not None and not owner._executing:
                    place._n_spare -= 1

    def pop(self) -> Optional[Task]:
        """Owner takes the most recently pushed task (LIFO)."""
        items = self._items
        if not items:
            return None
        self.owner_pops += 1
        task = items.pop()
        place = self.place
        if place is not None:
            place._n_private -= 1
            if not items:
                owner = self.owner
                if owner is not None and not owner._executing:
                    place._n_spare += 1
        return task

    def steal(self) -> Optional[Task]:
        """A co-located thief takes the oldest task (FIFO end)."""
        items = self._items
        if not items:
            return None
        self.thief_takes += 1
        task = items.popleft()
        task.stolen_locally = True
        place = self.place
        if place is not None:
            place._n_private -= 1
            if not items:
                owner = self.owner
                if owner is not None and not owner._executing:
                    place._n_spare += 1
        return task

    def peek_oldest(self) -> Optional[Task]:
        """Oldest task without removing it (used by place-load queries)."""
        return self._items[0] if self._items else None


class SharedDeque:
    """The per-place FIFO deque of locality-flexible tasks.

    All mutation must happen while holding :attr:`lock` (callers in
    simulated processes ``yield deque.lock.acquire()`` first); the lock is
    exposed rather than wrapped so the scheduler can model the *duration* of
    the critical section explicitly.
    """

    __slots__ = ("place_id", "lock", "_items", "pushes", "local_takes",
                 "remote_takes")

    def __init__(self, env: Environment, place_id: int) -> None:
        self.place_id = place_id
        self.lock = SimLock(env, name=f"shared-deque-p{place_id}")
        self._items: deque[Task] = deque()
        self.pushes = 0
        self.local_takes = 0
        self.remote_takes = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, task: Task) -> None:
        """Append a task at the tail (newest end)."""
        task.state = TaskState.QUEUED
        self._items.append(task)
        self.pushes += 1

    def push_front(self, task: Task) -> None:
        """Insert at the steal end (LIFO-shared ablation only)."""
        task.state = TaskState.QUEUED
        self._items.appendleft(task)
        self.pushes += 1

    def take_oldest(self, remote: bool) -> Optional[Task]:
        """Remove and return the oldest task (FIFO), or ``None`` if empty."""
        if not self._items:
            return None
        task = self._items.popleft()
        if remote:
            self.remote_takes += 1
            task.stolen_remotely = True
        else:
            self.local_takes += 1
        return task

    def take_chunk(self, n: int, remote: bool) -> List[Task]:
        """Remove up to ``n`` oldest tasks (the chunked distributed steal)."""
        out: List[Task] = []
        for _ in range(max(0, n)):
            task = self.take_oldest(remote)
            if task is None:
                break
            out.append(task)
        return out
