"""A place: one shared-memory node of the cluster.

Owns the shared deque, the incoming-task mailbox, and the load-status
bookkeeping Algorithm 1 consults ("The scheduler creates an object at each
place to maintain information that helps it to identify idle or
lightly-loaded places", §VI-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cluster.topology import ClusterSpec
from repro.runtime.deques import PrivateDeque, SharedDeque
from repro.sim.engine import CAUSE_WORK, PARK_PARKED, Environment
from repro.sim.resources import Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class Place:
    """Runtime state of one node."""

    def __init__(self, env: Environment, place_id: int, spec: ClusterSpec) -> None:
        self.env = env
        self.place_id = place_id
        self.spec = spec
        self.shared = SharedDeque(env, place_id)
        #: Incoming task closures shipped by remote places (chunk extras,
        #: lifeline pushes, tasks spawned remotely for this home place).
        self.mailbox = Mailbox(env, name=f"mailbox-p{place_id}")
        self.workers: List["Worker"] = []
        #: Fail-stop flag set by the fault injector: a dead place's workers
        #: stop permanently and its queues have been drained.  Always False
        #: in fault-free runs.
        self.dead = False
        #: Number of activities currently executing on this place's workers.
        self.running_activities = 0
        #: The paper's per-place ``active`` flag: set false after n
        #: consecutive failed steal attempts (n = workers per place),
        #: set true when an activity is assigned to the place.
        self.active = True
        #: Consecutive failed steal attempts by this place's workers.
        self.failed_steals = 0
        #: Failed-round count after which the place goes inactive.
        #: ``None`` (the default) keeps the paper's rule — one failure
        #: per worker; schedulers and online controllers may pin it
        #: (``idle_threshold`` tuning knob).
        self.idle_threshold: Optional[int] = None
        #: Round-robin cursor for mapping tasks onto private deques.
        self._rr_cursor = 0
        #: O(1) load counters (Algorithm 1 runs per spawn, so ``size``/
        #: ``spares`` must not rescan every worker).  ``_n_private`` counts
        #: tasks across all private deques, maintained by
        #: :class:`~repro.runtime.deques.PrivateDeque` push/pop/steal;
        #: ``_n_spare`` counts idle workers with empty private deques,
        #: maintained by the deque hooks plus the ``Worker.executing``
        #: property setter.
        self._n_private = 0
        self._n_spare = 0
        #: Idle workers parked waiting for work to arrive at this place:
        #: a mix of one-shot :class:`~repro.sim.events.Event` waiters (the
        #: legacy API, kept for tests and tooling) and ``(ParkRecord,
        #: round)`` entries appended by :meth:`add_park_waiter`.
        self._work_waiters: List = []
        #: Compaction threshold for stale park entries (adaptive).
        self._compact_at = 16

    # -- load status (Algorithm 1 inputs) ----------------------------------
    @property
    def n_workers(self) -> int:
        """Worker threads on this place."""
        return len(self.workers)

    def queued_private(self) -> int:
        """Tasks waiting in this place's private deques (O(1) counter)."""
        return self._n_private

    def queued_total(self) -> int:
        """All tasks queued at this place (private + shared + mailbox)."""
        return self.queued_private() + len(self.shared) + len(self.mailbox)

    def size(self) -> int:
        """The paper's ``size(p)``: demand at the place (running + queued)."""
        return self.running_activities + self.queued_total()

    def spares(self) -> int:
        """Spare capacity: idle workers with nothing queued privately.

        A worker that is searching but already has work directed at its
        private deque is *not* spare — Algorithm 1's private-deque
        redirection should fill each idle worker once, then overflow
        flexible tasks to the shared deque.
        """
        return self._n_spare

    def is_idle(self) -> bool:
        """No running activities — every worker is searching or stopped."""
        return self.running_activities == 0

    def is_under_utilized(self) -> bool:
        """Room for additional parallel computation (``size < max_threads``)."""
        return self.size() < self.spec.max_threads

    # -- status transitions (paper §VI-B) -----------------------------------
    def note_assignment(self) -> None:
        """An activity was assigned here: the place is active again."""
        self.active = True
        self.failed_steals = 0

    def idle_round_threshold(self) -> int:
        """Failed rounds before this place advertises inactive."""
        if self.idle_threshold is not None:
            return max(1, self.idle_threshold)
        return max(1, self.n_workers)

    def note_failed_steal(self) -> None:
        """A local worker failed a steal round; after
        :meth:`idle_round_threshold` consecutive failures the place is
        marked inactive."""
        self.failed_steals += 1
        if self.failed_steals >= self.idle_round_threshold():
            self.active = False

    # -- idle-worker wakeup -----------------------------------------------------
    def work_event(self):
        """Event an idle worker parks on; triggered by :meth:`notify_work`."""
        from repro.sim.events import Event  # local import avoids a cycle
        ev = Event(self.env)
        self._work_waiters.append(ev)
        return ev

    def add_park_waiter(self, record) -> None:
        """Register a worker's park record for this round's work wakeup.

        Appending ``(record, round)`` per park (rather than registering
        persistently) keeps the wake order at notification time identical
        to the legacy per-round events: simultaneously woken workers
        resume in the order they parked.  Entries from earlier rounds are
        stale — skipped at notify time, swept once the list outgrows the
        live worker count.
        """
        waiters = self._work_waiters
        waiters.append((record, record.round))
        if len(waiters) > self._compact_at:
            live = []
            for entry in waiters:
                if type(entry) is tuple:
                    rec, rnd = entry
                    if rec.round == rnd and rec.state == PARK_PARKED:
                        live.append(entry)
                elif not entry.triggered:
                    live.append(entry)
            self._work_waiters = live
            self._compact_at = max(16, 2 * len(live) + 8)

    def notify_work(self) -> None:
        """Wake every parked worker (new work arrived at this place)."""
        waiters = self._work_waiters
        if not waiters:
            return
        self._work_waiters = []
        for entry in waiters:
            if type(entry) is tuple:
                rec, rnd = entry
                if rec.round == rnd:
                    rec._fire(CAUSE_WORK)
            elif not entry.triggered:
                entry.succeed()

    # -- private-deque mapping helpers ----------------------------------------
    def pick_private_deque(self) -> PrivateDeque:
        """Choose a private deque for a directly-mapped task.

        Prefers an idle worker ("mapping a task ... directly to an idle
        worker eliminates the need for that worker to contend ... to steal
        from the local shared deque", §V-B1), falling back to round-robin.
        """
        # Deterministic: lowest-id idle worker with the shortest deque
        # (single ascending pass; strict < keeps the lowest index on ties).
        best = None
        best_len = 0
        for w in self.workers:
            if not w._executing:
                n = len(w.deque._items)
                if best is None or n < best_len:
                    best = w
                    best_len = n
        if best is not None:
            return best.deque
        self._rr_cursor = (self._rr_cursor + 1) % self.n_workers
        return self.workers[self._rr_cursor].deque

    def least_loaded_deque(self) -> PrivateDeque:
        """Private deque with the fewest queued tasks."""
        best = min(self.workers, key=lambda w: (len(w.deque), w.worker_index))
        return best.deque

    def __repr__(self) -> str:  # pragma: no cover
        state = " DEAD" if self.dead else ""
        return (f"<Place {self.place_id} running={self.running_activities} "
                f"queued={self.queued_total()} active={self.active}{state}>")
