"""The worker: one simulated hardware thread executing activities.

A worker runs an endless loop (a simulated process):

1. pop the own private deque (LIFO — most recently created task first);
2. otherwise ask the scheduler policy to find work (mailbox probe,
   co-located steal, shared deque, distributed steal — policy-specific);
3. execute the task: run its Python body, price its memory behaviour,
   spawn its children, and advance simulated time by the total cost;
4. if no work was found anywhere, record a failed round and back off
   (exponentially, capped), waking early if work arrives at the place or
   the computation terminates.

Busy time is split into *task* cycles (executing activities) and *overhead*
cycles (searching/stealing); Fig. 7's utilization counts both, matching the
paper's observation that stealing itself raises measured node utilization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cluster.cache import LruCache
from repro.runtime.deques import PrivateDeque
from repro.runtime.task import Task, TaskContext, TaskState
from repro.sim.engine import CAUSE_WORK, Interrupt, ParkRecord
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.place import Place
    from repro.runtime.runtime import SimRuntime


class Worker:
    """One worker thread at a place."""

    def __init__(self, runtime: "SimRuntime", place: "Place",
                 worker_index: int) -> None:
        self.runtime = runtime
        self.place = place
        self.worker_index = worker_index
        self.deque = PrivateDeque(place.place_id, worker_index)
        self.cache = LruCache(runtime.costs.l1_capacity_lines)
        self.executing = False
        #: Task currently in :meth:`execute`.  The fault injector reads
        #: this to find in-flight work at a crash; the runtime reads it
        #: to attribute spawn parentage for the observability layer.
        self.current_task: Task | None = None
        #: Stolen chunk in transit to this worker's place: populated from
        #: the instant the tasks leave the victim's shared deque until
        #: they land in the home mailbox / start executing.  The fault
        #: injector drains it at a crash — these tasks are otherwise
        #: invisible (neither queued nor anyone's ``current_task``).
        self.pending_chunk: list[Task] = []
        #: The simulated process running :meth:`run` (set by the runtime).
        self.proc = None
        self.task_cycles = 0.0
        self.overhead_cycles = 0.0
        self.tasks_run = 0
        self._backoff = runtime.idle_backoff_base
        #: Steal-tier caches (scheduler-owned, lazily filled): the victim
        #: RNG streams are keyed by this worker's id and the peer/place
        #: orders are structurally constant, so re-deriving them on every
        #: steal attempt was pure overhead.
        self.victims_rng = None
        self.steal_peers: "list[Worker] | None" = None
        self.place_victims_rng = None
        self.other_places: list[int] | None = None

    def reset_backoff(self) -> None:
        """Re-arm the idle backoff at the runtime's (possibly tuned) base."""
        self._backoff = self.runtime.idle_backoff_base

    @property
    def wid(self) -> tuple[int, int]:
        """Globally unique (place, worker) id pair."""
        return (self.place.place_id, self.worker_index)

    def charge_overhead(self, cycles: float) -> None:
        """Account CPU-bound scheduling work (deque ops, steal service).

        Time a thief spends *waiting* on the interconnect is simulated but
        deliberately not charged here, so Fig. 7's utilization reflects CPU
        activity rather than network latency.
        """
        self.overhead_cycles += cycles

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, object, None]:
        """The worker's simulated process body.

        A fail-stop crash of this worker's place (fault injection)
        delivers an :class:`Interrupt`; the worker then stops permanently
        — its in-flight task has already been accounted for (re-executed
        or committed) by the injector.
        """
        try:
            yield from self._run_loop()
        except Interrupt:
            if self.place.dead:
                return  # fail-stop: this worker never runs again
            raise

    def _run_loop(self) -> Generator[Event, object, None]:
        rt = self.runtime
        env = rt.env
        costs = rt.costs
        place = self.place
        gate = rt.done_gate
        scheduler = rt.scheduler
        steal_stats = rt.stats.steals
        # Hot-loop locals: these lookups are loop-invariant, and the
        # per-round deque-op stall is by far the most common sleep.
        sleep = env.sleep
        deque_pop = self.deque.pop
        find_work = scheduler.find_work
        deque_op = costs.private_deque_op
        # One reusable park replaces the per-round AnyOf garbage; the
        # board a parking worker watches is fixed per policy.
        park = ParkRecord(env, self.proc)
        board = scheduler.park_board()
        gate_registered = False
        while not gate.is_open:
            if place.dead:
                return
            yield sleep(deque_op)
            self.overhead_cycles += deque_op
            task = deque_pop()
            if task is None:
                task = yield from find_work(self)
            if task is not None:
                self._backoff = rt.idle_backoff_base
                yield from self.execute(task)
                continue
            # Nothing anywhere: failed round, then back off.
            place.note_failed_steal()
            scheduler.note_failed_round(self)
            steal_stats.failed_rounds += 1
            if rt.obs is not None:
                rt.obs.emit("worker_park", place=place.place_id,
                            worker=self.worker_index,
                            backoff=self._backoff)
            park.begin(self._backoff, gate.is_open)
            if not gate_registered:
                # The gate fires at most once (termination), so the park
                # registers exactly once — no per-round waiter leak.
                gate.register_park(park)
                gate_registered = True
            place.add_park_waiter(park)
            if board is not None:
                board.add_park_waiter(park)
            # Backoff is read by the runtime's idle parameters live:
            # online controllers may retune base/cap mid-run.
            self._backoff = min(self._backoff * 2, rt.idle_backoff_cap)
            cause = yield park
            if cause is CAUSE_WORK:
                # Work arrived at this place: search eagerly again.
                self._backoff = rt.idle_backoff_base

    # -- execution -------------------------------------------------------------
    def execute(self, task: Task) -> Generator[Event, object, None]:
        """Run one activity to completion in simulated time.

        When a fault plan includes crashes, execution defers the *commit*
        (running the real body and spawning children) until after the
        work stall, so a fail-stop crash mid-task loses the task cleanly
        — no real side effects, re-executable exactly once.  The default
        path below is untouched when no injector is attached.
        """
        rt = self.runtime
        faults = rt.faults
        if faults is not None and faults.crash_safe:
            yield from self._execute_crash_safe(task)
            return
        env = rt.env
        costs = rt.costs
        place = self.place
        task.state = TaskState.RUNNING
        task.exec_place = place.place_id
        task.exec_worker = self.worker_index
        if (rt.scheduler.enforces_locality and not task.is_flexible
                and task.exec_place != task.home_place):
            from repro.errors import SchedulerError
            raise SchedulerError(
                f"locality violation: sensitive task {task.task_id} "
                f"(home p{task.home_place}) executing at "
                f"p{task.exec_place} under {rt.scheduler.name}")
        task.start_time = env.now
        place.running_activities += 1
        place.note_assignment()
        self.executing = True
        self.current_task = task
        if rt.obs is not None:
            rt.obs.emit("task_start", task=task.task_id,
                        place=place.place_id, worker=self.worker_index)
        try:
            cost = task.work
            if faults is not None:
                cost *= faults.slow_factor(place.place_id)
            remote = task.exec_place != task.home_place
            # An encapsulating task (§II condition d) carried its data in
            # the closure: the blocks it touches become persistent local
            # replicas, paid for once — wherever the task runs (a bucket
            # merge *gathers* even at home).  Every other task is left
            # with X10 `at` semantics: per-access remote references priced
            # in :meth:`MemoryManager.access`.
            if task.encapsulates:
                for block in task.unique_blocks():
                    cost += rt.memory.migrate(block, place.place_id,
                                              warm_cache=self.cache)
            # Run the real body; children are collected, not yet mapped.
            ctx = TaskContext(rt, task, place.place_id, self.worker_index)
            if task.body is not None:
                task.body(ctx)
            children = ctx.drain_children()
            # Price every declared memory access at the executing place.
            for block in task.reads:
                cost += rt.memory.access(place.place_id, self.cache, block)
            for block in task.writes:
                cost += rt.memory.access(place.place_id, self.cache, block,
                                         write=True)
            # Help-first: children become available as the parent continues.
            for child in children:
                cost += costs.spawn_overhead
                cost += rt.scheduler.mapping_cost(child)
                rt.spawn(child, from_place=place.place_id,
                         finish=task.finish, from_worker=self)
            # Results that must explicitly travel back after a remote
            # execution (e.g. the Turing-ring inner population update).
            if remote:
                for block in task.copy_back:
                    cost += rt.memory.copy_back(block, place.place_id)
            yield env.sleep(cost)
        finally:
            self.executing = False
            self.current_task = None
            place.running_activities -= 1
        task.state = TaskState.DONE
        task.end_time = env.now
        self.task_cycles += env.now - task.start_time
        self.tasks_run += 1
        rt.task_finished(task, self)

    def _execute_crash_safe(self, task: Task) -> Generator[Event, object, None]:
        """Deferred-commit execution for runs with planned crashes.

        The work stall happens *first*; the real body runs, children are
        spawned, and ``task.committed`` flips only at the commit point.
        An interrupt (place crash) before the commit leaves no visible
        effects: the fault injector re-executes the task on a survivor.
        An interrupt after it finds ``committed`` set and counts the task
        as done instead.  Memory effects (migrations, cache warming) may
        partially happen before the commit — data movement, unlike
        computation results, survives a crash honestly.
        """
        rt = self.runtime
        env = rt.env
        costs = rt.costs
        place = self.place
        faults = rt.faults
        task.state = TaskState.RUNNING
        task.exec_place = place.place_id
        task.exec_worker = self.worker_index
        if (rt.scheduler.enforces_locality and not task.is_flexible
                and task.exec_place != task.home_place):
            from repro.errors import SchedulerError
            raise SchedulerError(
                f"locality violation: sensitive task {task.task_id} "
                f"(home p{task.home_place}) executing at "
                f"p{task.exec_place} under {rt.scheduler.name}")
        task.start_time = env.now
        place.running_activities += 1
        place.note_assignment()
        self.executing = True
        self.current_task = task
        if rt.obs is not None:
            rt.obs.emit("task_start", task=task.task_id,
                        place=place.place_id, worker=self.worker_index)
        try:
            cost = task.work * faults.slow_factor(place.place_id)
            remote = task.exec_place != task.home_place
            if task.encapsulates:
                for block in task.unique_blocks():
                    cost += rt.memory.migrate(block, place.place_id,
                                              warm_cache=self.cache)
            for block in task.reads:
                cost += rt.memory.access(place.place_id, self.cache, block)
            for block in task.writes:
                cost += rt.memory.access(place.place_id, self.cache, block,
                                         write=True)
            yield env.sleep(cost)
            # ---- commit point: effects become visible atomically ----
            ctx = TaskContext(rt, task, place.place_id, self.worker_index)
            if task.body is not None:
                task.body(ctx)
            children = ctx.drain_children()
            task.committed = True
            post = 0.0
            for child in children:
                post += costs.spawn_overhead
                post += rt.scheduler.mapping_cost(child)
                rt.spawn(child, from_place=place.place_id,
                         finish=task.finish, from_worker=self)
            if remote:
                for block in task.copy_back:
                    post += rt.memory.copy_back(block, place.place_id)
            yield env.sleep(post)
        finally:
            self.executing = False
            self.current_task = None
            place.running_activities -= 1
        task.state = TaskState.DONE
        task.end_time = env.now
        self.task_cycles += env.now - task.start_time
        self.tasks_run += 1
        rt.task_finished(task, self)
