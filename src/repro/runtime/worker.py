"""The worker: one simulated hardware thread executing activities.

A worker runs an endless loop (a simulated process):

1. pop the own private deque (LIFO — most recently created task first);
2. otherwise ask the scheduler policy to find work (mailbox probe,
   co-located steal, shared deque, distributed steal — policy-specific);
3. execute the task: run its Python body, price its memory behaviour,
   spawn its children, and advance simulated time by the total cost;
4. if no work was found anywhere, record a failed round and back off
   (exponentially, capped), waking early if work arrives at the place or
   the computation terminates.

Busy time is split into *task* cycles (executing activities) and *overhead*
cycles (searching/stealing); Fig. 7's utilization counts both, matching the
paper's observation that stealing itself raises measured node utilization.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Generator, Optional

from repro.cluster.cache import LruCache
from repro.runtime.deques import PrivateDeque
from repro.runtime.task import Task, TaskContext, TaskState
from repro.sim import engine as _engine
from repro.sim.engine import (SCAN_MISS, CAUSE_WORK, Interrupt, KernelRound,
                              ParkRecord)
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.place import Place
    from repro.runtime.runtime import SimRuntime


class _StealScan(KernelRound):
    """Kernel-resident deque-pop + mailbox + co-located-steal round.

    Executes the universal prefix of ``Scheduler.find_work`` (the tiers
    every policy shares) step by step from the dispatch loop, arming one
    heap entry per legacy ``sleep`` with the same due time and sequence
    number and performing the same side effects in the same order — see
    :class:`~repro.sim.engine.KernelRound` for the byte-identity
    contract.  Resolves with the acquired task, or with ``SCAN_MISS`` so
    the worker's generator runs the policy tail (shared deque, remote
    steals) in ordinary yielded-event style.

    Phases: 0 = the private-deque-op stall fired (pop own deque, probe
    the mailbox, open the co-located scan); 1 = one co-located probe
    fired (attempt the steal, advance or miss out); 2 = the
    steal-success stall fired (settle the stolen task); 3 = a collapsed
    round's end stall fired (idle mode: park straight from the kernel).

    **Idle mode** (:meth:`attach_idle`): for a scheduler with no policy
    tail past the co-located tier (``find_work_tail is None``), the
    *whole* idle cycle — failed round, park, wake, next round — runs
    kernel-resident.  A miss performs the failed-round bookkeeping and
    parks the worker without resuming the generator; the park delivers
    its wake cause to :meth:`on_wake`, which starts the next round (or a
    collapsed one) in place.  The generator resumes only with a task in
    hand, or with ``None`` once the termination gate opens.
    """

    __slots__ = ("worker", "st", "costs", "phase", "order", "idx",
                 "peers", "task", "mailbox_get", "deque_pop",
                 "idle", "park", "board", "gate", "fast_round",
                 "gate_registered")

    def __init__(self, env, proc, worker: "Worker") -> None:
        super().__init__(env, proc)
        self.worker = worker
        rt = worker.runtime
        self.st = rt.stats.steals
        self.costs = rt.costs
        self.phase = 0
        self.order: list = []
        self.idx = 0
        self.peers: "list[Worker] | None" = None
        self.task: Task | None = None
        self.mailbox_get = worker.place.mailbox.try_get
        self.deque_pop = worker.deque.pop
        self.idle = False
        self.park = None
        self.board = None
        self.gate = None
        self.fast_round = None
        self.gate_registered = False

    def attach_idle(self, park, board, gate, fast_round) -> None:
        """Enter idle mode: this scan owns the worker's park and rounds."""
        self.idle = True
        self.park = park
        self.board = board
        self.gate = gate
        self.fast_round = fast_round
        park.scan_owner = self

    def begin(self) -> "_StealScan":
        """Arm the round's opening deque-op stall; yield ``self`` after."""
        self.phase = 0
        env = self.env
        env._seq += 1
        env._arm[self._h] = env._seq
        _heappush(env._queue,
                  (env._now + self.costs.private_deque_op, env._seq, self._h))
        return self

    def step(self) -> None:
        # _arm() is inlined in every branch: this method fires hundreds of
        # thousands of times per cell and the extra call frame is measurable.
        phase = self.phase
        costs = self.costs
        worker = self.worker
        env = self.env
        if phase == 1:
            # A co-located probe fired: attempt the steal it paid for.
            worker.overhead_cycles += costs.local_steal_attempt
            task = self.peers[self.order[self.idx]].deque.steal()
            if task is not None:
                self.task = task
                self.phase = 2
                env._seq += 1
                env._arm[self._h] = env._seq
                _heappush(env._queue, (env._now + costs.local_steal_success,
                                       env._seq, self._h))
                return
            idx = self.idx + 1
            if idx < len(self.order):
                self.idx = idx
                self.st.local_attempts += 1
                env._seq += 1
                env._arm[self._h] = env._seq
                _heappush(env._queue, (env._now + costs.local_steal_attempt,
                                       env._seq, self._h))
                return
            if self.idle:
                self._park_failed_round()
            else:
                self._resolve(SCAN_MISS)
        elif phase == 0:
            worker.overhead_cycles += costs.private_deque_op
            task = self.deque_pop()
            if task is None:
                task = self.mailbox_get()
                if task is None:
                    peers = self.peers
                    if peers is None:
                        peers = worker.steal_peers
                        if peers is None:
                            peers = worker.steal_peers = [
                                w for w in worker.place.workers
                                if w is not worker]
                        self.peers = peers
                    rng = worker.victims_rng
                    if rng is None:
                        rng = worker.victims_rng = \
                            worker.runtime.rngs.stream("victims", *worker.wid)
                    order = rng.permutation(len(peers)).tolist()
                    if order:
                        self.order = order
                        self.idx = 0
                        self.st.local_attempts += 1
                        self.phase = 1
                        env._seq += 1
                        env._arm[self._h] = env._seq
                        _heappush(env._queue,
                                  (env._now + costs.local_steal_attempt,
                                   env._seq, self._h))
                        return
                    if self.idle:
                        self._park_failed_round()
                    else:
                        self._resolve(SCAN_MISS)
                    return
                self.st.mailbox_hits += 1
            self._resolve(task)
        elif phase == 2:
            # The steal-success stall fired; settle the task.
            worker.overhead_cycles += costs.local_steal_success
            self.st.local_hits += 1
            task = self.task
            self.task = None
            self._resolve(task)
        else:
            # Phase 3 (idle mode): a collapsed round's end stall fired —
            # the legacy generator would now run the failed-round path.
            self._park_failed_round()

    # -- kernel-resident idle loop (tail-less schedulers) ---------------------
    def begin_idle(self) -> "_StealScan":
        """Open a round in idle mode; yield ``self`` afterwards.

        Mirrors the legacy loop top: a collapsible round (every tier
        provably empty, heap quiescent) arms one stall at the round's end
        — the seq the legacy ``sleep_at`` consumed — otherwise the
        ordinary scan opens with the deque-op stall.
        """
        fr = self.fast_round
        if fr is not None:
            due = fr(self.worker)
            if due is not None:
                self.phase = 3
                env = self.env
                env._seq += 1
                env._arm[self._h] = env._seq
                _heappush(env._queue, (due, env._seq, self._h))
                return self
        return self.begin()

    def _park_failed_round(self) -> None:
        """Failed-round bookkeeping + park, in the legacy generator's order."""
        worker = self.worker
        place = worker.place
        rt = worker.runtime
        place.note_failed_steal()
        rt.scheduler.note_failed_round(worker)
        self.st.failed_rounds += 1
        park = self.park
        gate = self.gate
        park.begin(worker._backoff, gate.is_open)
        if not self.gate_registered:
            gate.register_park(park)
            self.gate_registered = True
        place.add_park_waiter(park)
        if self.board is not None:
            self.board.add_park_waiter(park)
        worker._backoff = min(worker._backoff * 2, rt.idle_backoff_cap)

    def on_wake(self, cause) -> None:
        """The park's wake hop landed: restart the round in the kernel.

        Replicates the legacy resume — backoff reset on a work wake, the
        loop-top gate check (resolving ``None`` hands the generator its
        exit), then the next round's fast-path probe or opening stall.
        """
        worker = self.worker
        if cause is CAUSE_WORK:
            worker._backoff = worker.runtime.idle_backoff_base
        if self.gate.is_open:
            self._resolve(None)
            return
        fr = self.fast_round
        if fr is not None:
            due = fr(worker)
            if due is not None:
                self.phase = 3
                env = self.env
                env._seq += 1
                env._arm[self._h] = env._seq
                _heappush(env._queue, (due, env._seq, self._h))
                return
        self.phase = 0
        env = self.env
        env._seq += 1
        env._arm[self._h] = env._seq
        _heappush(env._queue,
                  (env._now + self.costs.private_deque_op, env._seq, self._h))


class Worker:
    """One worker thread at a place."""

    def __init__(self, runtime: "SimRuntime", place: "Place",
                 worker_index: int) -> None:
        self.runtime = runtime
        self.place = place
        self.worker_index = worker_index
        self.deque = PrivateDeque(place.place_id, worker_index,
                                  place=place, owner=self)
        self.cache = LruCache(runtime.costs.l1_capacity_lines)
        self._executing = False
        # A fresh worker is idle with an empty deque: one spare slot.
        place._n_spare += 1
        #: Task currently in :meth:`execute`.  The fault injector reads
        #: this to find in-flight work at a crash; the runtime reads it
        #: to attribute spawn parentage for the observability layer.
        self.current_task: Task | None = None
        #: Stolen chunk in transit to this worker's place: populated from
        #: the instant the tasks leave the victim's shared deque until
        #: they land in the home mailbox / start executing.  The fault
        #: injector drains it at a crash — these tasks are otherwise
        #: invisible (neither queued nor anyone's ``current_task``).
        self.pending_chunk: list[Task] = []
        #: The simulated process running :meth:`run` (set by the runtime).
        self.proc = None
        self.task_cycles = 0.0
        self.overhead_cycles = 0.0
        self.tasks_run = 0
        self._backoff = runtime.idle_backoff_base
        #: Steal-tier caches (scheduler-owned, lazily filled): the victim
        #: RNG streams are keyed by this worker's id and the peer/place
        #: orders are structurally constant, so re-deriving them on every
        #: steal attempt was pure overhead.
        self.victims_rng = None
        self.steal_peers: "list[Worker] | None" = None
        self.place_victims_rng = None
        self.other_places: list[int] | None = None

    def reset_backoff(self) -> None:
        """Re-arm the idle backoff at the runtime's (possibly tuned) base."""
        self._backoff = self.runtime.idle_backoff_base

    @property
    def executing(self) -> bool:
        """Whether an activity is currently running on this worker.

        A property so the place's O(1) spare-worker counter stays in sync
        no matter who flips the flag (the execute paths here, or tests
        poking it directly).
        """
        return self._executing

    @executing.setter
    def executing(self, flag: bool) -> None:
        if flag != self._executing:
            self._executing = flag
            if not self.deque._items:
                self.place._n_spare += -1 if flag else 1

    @property
    def wid(self) -> tuple[int, int]:
        """Globally unique (place, worker) id pair."""
        return (self.place.place_id, self.worker_index)

    def charge_overhead(self, cycles: float) -> None:
        """Account CPU-bound scheduling work (deque ops, steal service).

        Time a thief spends *waiting* on the interconnect is simulated but
        deliberately not charged here, so Fig. 7's utilization reflects CPU
        activity rather than network latency.
        """
        self.overhead_cycles += cycles

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, object, None]:
        """The worker's simulated process body.

        A fail-stop crash of this worker's place (fault injection)
        delivers an :class:`Interrupt`; the worker then stops permanently
        — its in-flight task has already been accounted for (re-executed
        or committed) by the injector.
        """
        try:
            yield from self._run_loop()
        except Interrupt:
            if self.place.dead:
                return  # fail-stop: this worker never runs again
            raise

    def _run_loop(self) -> Generator[Event, object, None]:
        rt = self.runtime
        env = rt.env
        costs = rt.costs
        place = self.place
        gate = rt.done_gate
        scheduler = rt.scheduler
        steal_stats = rt.stats.steals
        # Hot-loop locals: these lookups are loop-invariant, and the
        # per-round deque-op stall is by far the most common sleep.
        sleep = env.sleep
        deque_pop = self.deque.pop
        find_work = scheduler.find_work
        deque_op = costs.private_deque_op
        # Collapsed probe round (flat kernel only): when every steal tier
        # is provably empty and no other heap entry comes due before the
        # round would end, the scheduler commits the round's counters and
        # RNG draws in one call and the kernel sleeps once to the round's
        # end time instead of resuming this generator per probe.  Fault
        # plans and observers watch the intermediate micro-events, so
        # either one disables the collapse.
        fast_round = None
        sleep_at = None
        if (_engine.KERNEL == "flat" and scheduler._fast_round_ok
                and rt.faults is None and rt.obs is None):
            fast_round = scheduler.fast_round
            sleep_at = env.sleep_at
        # Kernel-resident steal scan (flat kernel only): the universal
        # find_work prefix — deque-op stall, own pop, mailbox probe,
        # co-located scan — runs from the dispatch loop without resuming
        # this generator per probe.  Only sound when the scheduler uses
        # the stock find_work (an override may reorder the tiers), and
        # fault plans / observers watch the per-probe resumes, so either
        # one falls back to the generator path.
        scan = None
        find_work_tail = None
        if (_engine.KERNEL == "flat" and rt.faults is None
                and rt.obs is None):
            from repro.sched.base import Scheduler as _SchedulerBase
            if type(scheduler).find_work is _SchedulerBase.find_work:
                scan = _StealScan(env, self.proc, self)
                find_work_tail = scheduler.find_work_tail
        # One reusable park replaces the per-round AnyOf garbage; the
        # board a parking worker watches is fixed per policy.
        park = ParkRecord(env, self.proc)
        board = scheduler.park_board()
        gate_registered = False
        if scan is not None and find_work_tail is None:
            # No policy tier past the co-located scan: the whole idle
            # cycle — round, failed-round bookkeeping, park, wake — runs
            # kernel-resident.  The generator resumes per *task*, not per
            # round: with a task in hand, or with None at termination.
            scan.attach_idle(park, board, gate, fast_round)
            while not gate.is_open:
                if place.dead:
                    return
                task = yield scan.begin_idle()
                if task is None:
                    continue
                self._backoff = rt.idle_backoff_base
                yield from self.execute(task)
            return
        while not gate.is_open:
            if place.dead:
                return
            if fast_round is not None and (due := fast_round(self)) is not None:
                yield sleep_at(due)
                task = None
            elif scan is not None:
                task = yield scan.begin()
                if task is SCAN_MISS:
                    task = None if find_work_tail is None \
                        else (yield from find_work_tail(self))
            else:
                yield sleep(deque_op)
                self.overhead_cycles += deque_op
                task = deque_pop()
                if task is None:
                    task = yield from find_work(self)
            if task is not None:
                self._backoff = rt.idle_backoff_base
                yield from self.execute(task)
                continue
            # Nothing anywhere: failed round, then back off.
            place.note_failed_steal()
            scheduler.note_failed_round(self)
            steal_stats.failed_rounds += 1
            if rt.obs is not None:
                rt.obs.emit("worker_park", place=place.place_id,
                            worker=self.worker_index,
                            backoff=self._backoff)
            park.begin(self._backoff, gate.is_open)
            if not gate_registered:
                # The gate fires at most once (termination), so the park
                # registers exactly once — no per-round waiter leak.
                gate.register_park(park)
                gate_registered = True
            place.add_park_waiter(park)
            if board is not None:
                board.add_park_waiter(park)
            # Backoff is read by the runtime's idle parameters live:
            # online controllers may retune base/cap mid-run.
            self._backoff = min(self._backoff * 2, rt.idle_backoff_cap)
            cause = yield park
            if cause is CAUSE_WORK:
                # Work arrived at this place: search eagerly again.
                self._backoff = rt.idle_backoff_base

    # -- execution -------------------------------------------------------------
    def execute(self, task: Task) -> Generator[Event, object, None]:
        """Run one activity to completion in simulated time.

        When a fault plan includes crashes, execution defers the *commit*
        (running the real body and spawning children) until after the
        work stall, so a fail-stop crash mid-task loses the task cleanly
        — no real side effects, re-executable exactly once.  The default
        path below is untouched when no injector is attached.
        """
        rt = self.runtime
        faults = rt.faults
        if faults is not None and faults.crash_safe:
            yield from self._execute_crash_safe(task)
            return
        env = rt.env
        costs = rt.costs
        place = self.place
        task.state = TaskState.RUNNING
        task.exec_place = place.place_id
        task.exec_worker = self.worker_index
        if (rt.scheduler.enforces_locality and not task.is_flexible
                and task.exec_place != task.home_place):
            from repro.errors import SchedulerError
            raise SchedulerError(
                f"locality violation: sensitive task {task.task_id} "
                f"(home p{task.home_place}) executing at "
                f"p{task.exec_place} under {rt.scheduler.name}")
        task.start_time = env.now
        place.running_activities += 1
        place.note_assignment()
        self.executing = True
        self.current_task = task
        if rt.obs is not None:
            rt.obs.emit("task_start", task=task.task_id,
                        place=place.place_id, worker=self.worker_index)
        try:
            cost = task.work
            if faults is not None:
                cost *= faults.slow_factor(place.place_id)
            remote = task.exec_place != task.home_place
            # An encapsulating task (§II condition d) carried its data in
            # the closure: the blocks it touches become persistent local
            # replicas, paid for once — wherever the task runs (a bucket
            # merge *gathers* even at home).  Every other task is left
            # with X10 `at` semantics: per-access remote references priced
            # in :meth:`MemoryManager.access`.
            if task.encapsulates:
                for block in task.unique_blocks():
                    cost += rt.memory.migrate(block, place.place_id,
                                              warm_cache=self.cache)
            # Run the real body; children are collected, not yet mapped.
            ctx = TaskContext(rt, task, place.place_id, self.worker_index)
            if task.body is not None:
                task.body(ctx)
            children = ctx.drain_children()
            # Price every declared memory access at the executing place.
            for block in task.reads:
                cost += rt.memory.access(place.place_id, self.cache, block)
            for block in task.writes:
                cost += rt.memory.access(place.place_id, self.cache, block,
                                         write=True)
            # Help-first: children become available as the parent continues.
            for child in children:
                cost += costs.spawn_overhead
                cost += rt.scheduler.mapping_cost(child)
                rt.spawn(child, from_place=place.place_id,
                         finish=task.finish, from_worker=self)
            # Results that must explicitly travel back after a remote
            # execution (e.g. the Turing-ring inner population update).
            if remote:
                for block in task.copy_back:
                    cost += rt.memory.copy_back(block, place.place_id)
            yield env.sleep(cost)
        finally:
            self.executing = False
            self.current_task = None
            place.running_activities -= 1
        task.state = TaskState.DONE
        task.end_time = env.now
        self.task_cycles += env.now - task.start_time
        self.tasks_run += 1
        rt.task_finished(task, self)

    def _execute_crash_safe(self, task: Task) -> Generator[Event, object, None]:
        """Deferred-commit execution for runs with planned crashes.

        The work stall happens *first*; the real body runs, children are
        spawned, and ``task.committed`` flips only at the commit point.
        An interrupt (place crash) before the commit leaves no visible
        effects: the fault injector re-executes the task on a survivor.
        An interrupt after it finds ``committed`` set and counts the task
        as done instead.  Memory effects (migrations, cache warming) may
        partially happen before the commit — data movement, unlike
        computation results, survives a crash honestly.
        """
        rt = self.runtime
        env = rt.env
        costs = rt.costs
        place = self.place
        faults = rt.faults
        task.state = TaskState.RUNNING
        task.exec_place = place.place_id
        task.exec_worker = self.worker_index
        if (rt.scheduler.enforces_locality and not task.is_flexible
                and task.exec_place != task.home_place):
            from repro.errors import SchedulerError
            raise SchedulerError(
                f"locality violation: sensitive task {task.task_id} "
                f"(home p{task.home_place}) executing at "
                f"p{task.exec_place} under {rt.scheduler.name}")
        task.start_time = env.now
        place.running_activities += 1
        place.note_assignment()
        self.executing = True
        self.current_task = task
        if rt.obs is not None:
            rt.obs.emit("task_start", task=task.task_id,
                        place=place.place_id, worker=self.worker_index)
        try:
            cost = task.work * faults.slow_factor(place.place_id)
            remote = task.exec_place != task.home_place
            if task.encapsulates:
                for block in task.unique_blocks():
                    cost += rt.memory.migrate(block, place.place_id,
                                              warm_cache=self.cache)
            for block in task.reads:
                cost += rt.memory.access(place.place_id, self.cache, block)
            for block in task.writes:
                cost += rt.memory.access(place.place_id, self.cache, block,
                                         write=True)
            yield env.sleep(cost)
            # ---- commit point: effects become visible atomically ----
            ctx = TaskContext(rt, task, place.place_id, self.worker_index)
            if task.body is not None:
                task.body(ctx)
            children = ctx.drain_children()
            task.committed = True
            post = 0.0
            for child in children:
                post += costs.spawn_overhead
                post += rt.scheduler.mapping_cost(child)
                rt.spawn(child, from_place=place.place_id,
                         finish=task.finish, from_worker=self)
            if remote:
                for block in task.copy_back:
                    post += rt.memory.copy_back(block, place.place_id)
            yield env.sleep(post)
        finally:
            self.executing = False
            self.current_task = None
            place.running_activities -= 1
        task.state = TaskState.DONE
        task.end_time = env.now
        self.task_cycles += env.now - task.start_time
        self.tasks_run += 1
        rt.task_finished(task, self)
