"""Tasking runtime: tasks, deques, places, workers, finish scopes, stats."""

from repro.runtime.deques import PrivateDeque, SharedDeque
from repro.runtime.finish import FinishScope
from repro.runtime.place import Place
from repro.runtime.runtime import SimRuntime
from repro.runtime.stats import RunStats, StealCounters
from repro.runtime.task import (
    FLEXIBLE,
    SENSITIVE,
    Locality,
    Task,
    TaskContext,
    TaskState,
)
from repro.runtime.worker import Worker

__all__ = [
    "FLEXIBLE",
    "FinishScope",
    "Locality",
    "Place",
    "PrivateDeque",
    "RunStats",
    "SENSITIVE",
    "SharedDeque",
    "SimRuntime",
    "StealCounters",
    "Task",
    "TaskContext",
    "TaskState",
    "Worker",
]
