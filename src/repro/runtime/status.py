"""Cluster-wide load-status board (the paper's §VI-B status objects).

"The scheduler creates an object at each place to maintain information
that helps it to identify idle or lightly-loaded places", accessed through
PlaceLocalHandles.  The board tracks which places currently *advertise
surplus* — a non-empty shared deque — so a thief only sends steal requests
to places that actually have stealable work, instead of blind-polling the
whole cluster.

Reading the board is modelled as free (the real implementation piggybacks
status on existing traffic and caches it locally); what is counted is every
actual steal request, reply, and data transfer.  Races remain possible: a
place may be emptied between the board read and the request's arrival, in
which case the thief pays a failed round trip exactly as on hardware.

The randomized and lifeline schedulers deliberately do NOT consult the
board — their defining property (blind random victim selection, §X) is
what the lifeline mechanism exists to repair.
"""

from __future__ import annotations

from typing import List, Set

from repro.sim.engine import CAUSE_BOARD, PARK_PARKED, Environment
from repro.sim.events import Event


class StatusBoard:
    """Tracks which places advertise stealable surplus."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._surplus: Set[int] = set()
        #: One-shot :class:`Event` waiters (legacy API) mixed with
        #: ``(ParkRecord, round)`` entries from parked workers.
        self._waiters: List = []
        self._compact_at = 16

    def advertise(self, place_id: int) -> None:
        """Mark a place as having surplus; wakes parked thieves."""
        if place_id in self._surplus:
            return
        self._surplus.add(place_id)
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        for entry in waiters:
            if type(entry) is tuple:
                rec, rnd = entry
                if rec.round == rnd:
                    rec._fire(CAUSE_BOARD)
            elif not entry.triggered:
                entry.succeed(place_id)

    def add_park_waiter(self, record) -> None:
        """Register a park record for the next surplus advertisement.

        Per-round ``(record, round)`` entries (see
        :meth:`~repro.runtime.place.Place.add_park_waiter`) preserve the
        legacy park-order wakeup; stale rounds are skipped and lazily
        swept.
        """
        waiters = self._waiters
        waiters.append((record, record.round))
        if len(waiters) > self._compact_at:
            live = []
            for entry in waiters:
                if type(entry) is tuple:
                    rec, rnd = entry
                    if rec.round == rnd and rec.state == PARK_PARKED:
                        live.append(entry)
                elif not entry.triggered:
                    live.append(entry)
            self._waiters = live
            self._compact_at = max(16, 2 * len(live) + 8)

    def retract(self, place_id: int) -> None:
        """Mark a place as having no surplus. Idempotent."""
        self._surplus.discard(place_id)

    def has_surplus(self, place_id: int) -> bool:
        """Whether ``place_id`` currently advertises surplus."""
        return place_id in self._surplus

    def has_surplus_other(self, exclude: int) -> bool:
        """Whether any place other than ``exclude`` advertises surplus.

        O(1) in the common cases (empty board, or a board whose first
        entry is not ``exclude``); used by the collapsed-round fast path
        to prove the remote tier would skip every victim.
        """
        surplus = self._surplus
        if not surplus:
            return False
        for p in surplus:
            if p != exclude:
                return True
        return False

    def surplus_places(self, exclude: int) -> List[int]:
        """Advertising places other than ``exclude``, id-sorted."""
        return sorted(p for p in self._surplus if p != exclude)

    def surplus_event(self) -> Event:
        """Event that triggers the next time any place advertises."""
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev
