"""``finish`` semantics: hierarchical task-completion scopes.

X10's ``finish S`` blocks until every activity transitively spawned inside
``S`` terminates.  In the simulator nothing blocks a Python thread; instead
a :class:`FinishScope` counts registered tasks and fires a continuation when
the count drains.  Applications use scopes to build phase barriers (e.g. the
Turing ring's per-iteration barrier) by spawning the next phase from the
continuation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import SimulationError


class FinishScope:
    """Counts live tasks; runs continuations when the count reaches zero.

    A scope starts *open*: tasks may still be registered, so draining to
    zero does not complete it.  :meth:`close` seals the scope; completion
    fires when (closed and pending == 0).
    """

    __slots__ = ("name", "parent", "_pending", "_closed", "_completed",
                 "_continuations")

    def __init__(self, name: str = "finish",
                 parent: Optional["FinishScope"] = None) -> None:
        self.name = name
        self.parent = parent
        self._pending = 0
        self._closed = False
        self._completed = False
        self._continuations: List[Callable[[], None]] = []
        if parent is not None:
            # A child scope counts as one unit of work in its parent so the
            # parent cannot complete while the child is live.
            parent.register()

    # -- state -----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of registered-but-unfinished tasks (plus live child scopes)."""
        return self._pending

    @property
    def completed(self) -> bool:
        """Whether the scope has sealed and fully drained."""
        return self._completed

    # -- protocol ----------------------------------------------------------
    def register(self) -> None:
        """Account one task (or child scope) spawned under this scope."""
        if self._completed:
            raise SimulationError(f"register on completed scope {self.name!r}")
        self._pending += 1

    def task_done(self) -> None:
        """Account one completion; may complete the scope."""
        if self._pending <= 0:
            raise SimulationError(f"task_done underflow in scope {self.name!r}")
        self._pending -= 1
        self._maybe_complete()

    def close(self) -> None:
        """Seal the scope: no further registrations are expected.

        Idempotent.  If everything already drained, completes immediately.
        """
        self._closed = True
        self._maybe_complete()

    def on_complete(self, continuation: Callable[[], None]) -> None:
        """Run ``continuation`` when the scope completes (immediately if done)."""
        if self._completed:
            continuation()
        else:
            self._continuations.append(continuation)

    # -- internals ------------------------------------------------------------
    def _maybe_complete(self) -> None:
        if self._completed or not self._closed or self._pending:
            return
        self._completed = True
        conts, self._continuations = self._continuations, []
        for cont in conts:
            cont()
        if self.parent is not None:
            self.parent.task_done()

    # -- context-manager sugar -------------------------------------------------
    def __enter__(self) -> "FinishScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close on normal exit; on error the scope is left open so the
        # failure can propagate without firing continuations.
        if exc_type is None:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover
        state = "completed" if self._completed else (
            "closed" if self._closed else "open")
        return f"<FinishScope {self.name!r} {state} pending={self._pending}>"
