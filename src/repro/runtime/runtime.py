"""The simulated APGAS runtime: places, workers, spawning, termination.

:class:`SimRuntime` wires the substrate together (event kernel, cluster
model, deques, workers, a scheduler policy) and exposes the two operations
the rest of the library builds on:

- :meth:`SimRuntime.spawn` — submit an activity (``async (p) S``);
- :meth:`SimRuntime.run` — execute a program (a callable that spawns root
  activities) to completion and return the collected :class:`RunStats`.

Termination follows X10's ``finish``: the root finish scope drains when
every transitively spawned activity has completed, which opens the done
gate, ends every worker loop, and stops the simulation clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.memory import MemoryManager
from repro.cluster.network import MSG_TASK_SHIP, Network
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError, SchedulerError, SimulationError
from repro.runtime.finish import FinishScope
from repro.runtime.place import Place
from repro.runtime.stats import RunStats
from repro.runtime.status import StatusBoard
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.sim.engine import Environment
from repro.sim.resources import Gate
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.base import Scheduler


class SimRuntime:
    """One simulated execution of a task-parallel program on a cluster."""

    def __init__(self, spec: ClusterSpec, scheduler: "Scheduler",
                 costs: CostModel = DEFAULT_COST_MODEL, seed: int = 0) -> None:
        costs.validate()
        self.spec = spec
        self.costs = costs
        self.env = Environment()
        self.rngs = RngStreams(seed)
        self.network = Network(spec, costs, env=self.env)
        self.memory = MemoryManager(self.network, costs)
        #: Idle-backoff parameters workers consult each round.  They
        #: default to the cost model's values; scheduler knobs
        #: (``idle_backoff_base`` / ``idle_backoff_cap``) override them
        #: at bind time.  Set before the places so the workers created
        #: inside them can read the base.
        self.idle_backoff_base = costs.idle_backoff
        self.idle_backoff_cap = costs.max_idle_backoff
        self.places = [Place(self.env, p, spec) for p in spec.place_ids()]
        for place in self.places:
            place.workers = [Worker(self, place, w)
                             for w in range(spec.workers_per_place)]
        self.board = StatusBoard(self.env)
        self.scheduler = scheduler
        scheduler.bind(self)
        self.stats = RunStats(n_places=spec.n_places,
                              workers_per_place=spec.workers_per_place)
        self.done_gate = Gate(self.env, name="termination")
        self.root_finish = FinishScope("root")
        self.root_finish.on_complete(self.done_gate.open)
        #: Fault injector hook; ``None`` (the default) keeps every fault
        #: branch in the runtime, network and schedulers switched off.
        self.faults = None
        #: Observability event bus (:class:`repro.obs.EventBus`); ``None``
        #: (the default) keeps every instrumentation point switched off so
        #: unobserved runs pay nothing — the zero-overhead contract.
        self.obs = None
        self._started = False

    # -- spawning ----------------------------------------------------------
    def spawn(self, task: Task, from_place: Optional[int] = None,
              finish: Optional[FinishScope] = None,
              from_worker: Optional[Worker] = None) -> Task:
        """Submit an activity for execution at its home place.

        ``from_place`` is where the spawner runs; a cross-place ``async``
        ships the closure over the network (counted).  The task joins
        ``finish`` (or, by default, its pre-assigned scope / the root
        scope) for termination detection.
        """
        if not (0 <= task.home_place < self.spec.n_places):
            raise SchedulerError(
                f"task {task.task_id} addressed to place {task.home_place}, "
                f"cluster has {self.spec.n_places}")
        if task.state is not TaskState.CREATED:
            raise SchedulerError(f"task {task.task_id} spawned twice")
        if task.finish is None:
            task.finish = finish if finish is not None else self.root_finish
        task.finish.register()
        task.enqueue_time = self.env.now
        self.stats.tasks_spawned += 1
        if self.obs is not None:
            parent = None
            if from_worker is not None and from_worker.current_task is not None:
                parent = from_worker.current_task.task_id
            self.obs.emit("task_spawn", task=task.task_id, label=task.label,
                          parent=parent, home=task.home_place,
                          flexible=task.is_flexible)
        if self.faults is not None:
            # Ledger bookkeeping; may re-home a task whose place is dead.
            self.faults.on_spawn(task)
        if from_place is not None and from_place != task.home_place:
            # The async itself crosses the network (X10 `async (p) S`).
            self.network.send(from_place, task.home_place,
                              task.closure_bytes, MSG_TASK_SHIP)
        self.scheduler.map_task(task, from_worker)
        home = self.places[task.home_place]
        home.note_assignment()
        home.notify_work()
        return task

    def task_finished(self, task: Task, worker: Worker) -> None:
        """Bookkeeping when an activity completes (called by the worker)."""
        if self.obs is not None:
            self.obs.emit("task_end", task=task.task_id, label=task.label,
                          home=task.home_place, place=task.exec_place,
                          worker=task.exec_worker, start=task.start_time,
                          work=task.work, flexible=task.is_flexible,
                          stolen=task.stolen_remotely)
        st = self.stats
        st.tasks_executed += 1
        if task.exec_place != task.home_place:
            st.tasks_executed_remote += 1
        st.work_sum_cycles += task.work
        st.work_count += 1
        if task.label:
            st.tasks_by_label[task.label.split("/")[0]] += 1
        if self.faults is not None:
            self.faults.on_finished(task)
        assert task.finish is not None
        task.finish.task_done()

    # -- execution ------------------------------------------------------------
    def run(self, program: Callable[["SimRuntime"], None],
            max_cycles: float = 1e14) -> RunStats:
        """Run ``program`` to completion and return the run's statistics.

        ``program`` is called once at simulated time 0 and must spawn at
        least one root activity (directly via :meth:`spawn` or through the
        APGAS layer).  Raises :class:`SimulationError` if the computation
        does not terminate within ``max_cycles``.
        """
        if self._started:
            raise SimulationError("SimRuntime instances are single-use")
        self._started = True
        self._worker_failures: list[BaseException] = []

        def on_worker_exit(ev) -> None:
            # A worker generator must never finish while the computation
            # is live; a failure here is a bug in a task body or the
            # runtime and must surface, not hang the simulation.
            if not ev._ok:
                self._worker_failures.append(ev._value)
                self.done_gate.open()

        for place in self.places:
            for worker in place.workers:
                proc = self.env.process(worker.run())
                worker.proc = proc
                proc.add_callback(on_worker_exit)
        program(self)
        if self.stats.tasks_spawned == 0:
            raise ConfigError("program spawned no tasks")
        self.root_finish.close()
        done = self.done_gate.wait()
        guard = self.env.timeout(max_cycles)
        finished = self.env.run(until=self.env.any_of([done, guard]))
        if self._worker_failures:
            failure = self._worker_failures[0]
            from repro.errors import FaultError
            if isinstance(failure, FaultError):
                # A fault-policy decision (e.g. fail-fast on an orphaned
                # sensitive task) is the run's outcome, not a kernel bug.
                raise failure
            raise SimulationError(
                "worker process died during the run") from failure
        if finished is guard or not self.done_gate.is_open:
            raise SimulationError(
                f"computation did not terminate within {max_cycles:g} cycles "
                f"({self.root_finish.pending} tasks still pending)")
        self._collect()
        return self.stats

    # -- metrics ------------------------------------------------------------
    def _collect(self) -> None:
        st = self.stats
        st.makespan_cycles = self.env.now
        for place in self.places:
            for worker in place.workers:
                st.busy_cycles[worker.wid] = (
                    worker.task_cycles + worker.overhead_cycles)
                st.cache_hits += worker.cache.stats.hits
                st.cache_misses += worker.cache.stats.misses
        st.remote_references = self.memory.remote_references
        st.block_migrations = self.memory.migrations
        net = self.network.stats
        st.messages = net.messages
        st.bytes_transmitted = net.bytes
        st.messages_by_kind = net.by_kind.copy()
        st.messages_by_pair = net.by_pair.copy()
        if self.faults is not None:
            st.faults = self.faults.stats
        if self.obs is not None:
            # Summarize into the snapshot, then flush file-backed sinks
            # (JSONL, Chrome trace) so exports land without extra calls.
            st.obs = self.obs.snapshot()
            self.obs.close()

    # -- conveniences ------------------------------------------------------------
    @property
    def n_places(self) -> int:
        """Number of places in this runtime's cluster."""
        return self.spec.n_places

    def place(self, place_id: int) -> Place:
        """Place lookup with bounds checking."""
        if not (0 <= place_id < self.spec.n_places):
            raise ConfigError(f"no such place: {place_id}")
        return self.places[place_id]
