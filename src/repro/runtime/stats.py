"""Run metrics: everything the paper's tables and figures observe.

One :class:`RunStats` is filled per simulation run.  Derived quantities
(miss rates, utilization variance, steals-to-task ratio) are computed on
demand so the raw counters stay additive.
"""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.stats import FaultStats


@dataclass
class StealCounters:
    """Steal-path counters, local and distributed."""

    local_attempts: int = 0
    local_hits: int = 0
    shared_local_attempts: int = 0
    shared_local_hits: int = 0
    mailbox_hits: int = 0
    remote_attempts: int = 0
    remote_hits: int = 0
    remote_tasks_received: int = 0
    failed_rounds: int = 0

    @property
    def total_steals(self) -> int:
        """All successful steal operations (paper Fig. 3 numerator)."""
        return (self.local_hits + self.shared_local_hits + self.mailbox_hits
                + self.remote_hits)

    @property
    def total_attempts(self) -> int:
        """All steal attempts, successful or not."""
        return (self.local_attempts + self.shared_local_attempts
                + self.remote_attempts)


@dataclass
class RunStats:
    """All observables from one simulated run."""

    n_places: int = 0
    workers_per_place: int = 0
    makespan_cycles: float = 0.0
    tasks_spawned: int = 0
    tasks_executed: int = 0
    tasks_executed_remote: int = 0
    steals: StealCounters = field(default_factory=StealCounters)
    #: (place, worker) -> busy cycles.
    busy_cycles: Dict[Tuple[int, int], float] = field(
        default_factory=lambda: defaultdict(float))
    #: Aggregated L1 counters across all workers.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Fine-grained remote references and bulk block migrations.
    remote_references: int = 0
    block_migrations: int = 0
    #: Cross-node messages / bytes (copied from the network model).
    messages: int = 0
    bytes_transmitted: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    #: (src, dst) -> packets (per-link traffic, from the network model).
    messages_by_pair: Counter = field(default_factory=Counter)
    #: Fault-injection observables; ``None`` unless an injector with a
    #: non-empty plan was attached (fault-free snapshots are unchanged).
    faults: Optional["FaultStats"] = None
    #: Observability summary (event counts by kind, metrics histograms /
    #: sampled series); ``None`` unless an event bus with at least one
    #: sink was attached — unobserved snapshots are byte-identical.
    obs: Optional[Dict[str, object]] = None
    #: Sum and count of task work, for mean-granularity reporting.
    work_sum_cycles: float = 0.0
    work_count: int = 0
    #: Per-label task counts (diagnostics).
    tasks_by_label: Counter = field(default_factory=Counter)

    # -- derived figures --------------------------------------------------
    @property
    def total_workers(self) -> int:
        """Workers in the cluster for this run."""
        return self.n_places * self.workers_per_place

    @property
    def steals_to_task_ratio(self) -> float:
        """Fig. 3's y-axis: successful steals / tasks executed."""
        if not self.tasks_executed:
            return 0.0
        return self.steals.total_steals / self.tasks_executed

    @property
    def l1_miss_rate(self) -> float:
        """Table II's metric: misses / accesses (0 if no accesses)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    @property
    def mean_task_granularity_cycles(self) -> float:
        """Average pure-compute cycles per executed task (Table I)."""
        return self.work_sum_cycles / self.work_count if self.work_count else 0.0

    def node_utilization(self) -> List[float]:
        """Per-place mean worker utilization in [0, 1] (Fig. 7's series)."""
        if self.makespan_cycles <= 0:
            return [0.0] * self.n_places
        per_place = [0.0] * self.n_places
        for (p, _w), busy in self.busy_cycles.items():
            per_place[p] += busy
        denom = self.workers_per_place * self.makespan_cycles
        return [min(1.0, b / denom) for b in per_place]

    def utilization_mean(self) -> float:
        """Cluster-wide mean node utilization."""
        util = self.node_utilization()
        return sum(util) / len(util) if util else 0.0

    def utilization_spread(self) -> float:
        """Max - min node utilization (the paper's 'disparity', Fig. 7)."""
        util = self.node_utilization()
        return (max(util) - min(util)) if util else 0.0

    def utilization_stdev(self) -> float:
        """Population standard deviation of node utilizations."""
        util = self.node_utilization()
        return statistics.pstdev(util) if len(util) > 1 else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Complete, deterministically-ordered plain-dict view of the run.

        Everything is JSON-serializable, and two identical runs produce
        byte-identical ``json.dumps(snapshot, sort_keys=True)`` output —
        the property the determinism and zero-overhead regression tests
        assert.  The ``"faults"`` key appears only when fault injection
        was active; the ``"obs"`` key only when an event bus with sinks
        was attached.
        """
        snap: Dict[str, object] = {
            "places": self.n_places,
            "workers_per_place": self.workers_per_place,
            "makespan_cycles": self.makespan_cycles,
            "tasks": {
                "spawned": self.tasks_spawned,
                "executed": self.tasks_executed,
                "executed_remote": self.tasks_executed_remote,
                "by_label": {k: self.tasks_by_label[k]
                             for k in sorted(self.tasks_by_label)},
            },
            "steals": {
                "local_attempts": self.steals.local_attempts,
                "local_hits": self.steals.local_hits,
                "shared_local_attempts": self.steals.shared_local_attempts,
                "shared_local_hits": self.steals.shared_local_hits,
                "mailbox_hits": self.steals.mailbox_hits,
                "remote_attempts": self.steals.remote_attempts,
                "remote_hits": self.steals.remote_hits,
                "remote_tasks_received": self.steals.remote_tasks_received,
                "failed_rounds": self.steals.failed_rounds,
            },
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "memory": {
                "remote_references": self.remote_references,
                "block_migrations": self.block_migrations,
            },
            "network": {
                "messages": self.messages,
                "bytes": self.bytes_transmitted,
                "by_kind": {k: self.messages_by_kind[k]
                            for k in sorted(self.messages_by_kind)},
                "by_pair": [[src, dst, self.messages_by_pair[(src, dst)]]
                            for src, dst in sorted(self.messages_by_pair)],
            },
            "busy_cycles": [[p, w, self.busy_cycles[(p, w)]]
                            for p, w in sorted(self.busy_cycles)],
            "work": {"sum_cycles": self.work_sum_cycles,
                     "count": self.work_count},
        }
        if self.faults is not None:
            snap["faults"] = self.faults.snapshot()
        if self.obs is not None:
            snap["obs"] = self.obs
        return snap

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for table rendering."""
        return {
            "places": self.n_places,
            "workers": self.total_workers,
            "makespan_cycles": self.makespan_cycles,
            "tasks_executed": self.tasks_executed,
            "tasks_remote": self.tasks_executed_remote,
            "steals": self.steals.total_steals,
            "steal_ratio": self.steals_to_task_ratio,
            "l1_miss_rate": self.l1_miss_rate,
            "messages": self.messages,
            "utilization_mean": self.utilization_mean(),
            "utilization_spread": self.utilization_spread(),
        }
