"""The task (activity) model.

An X10 *activity* becomes a :class:`Task`: a Python callable plus the
metadata the scheduler and cost model need —

- ``home_place`` — the ``p`` of ``async (p) S``;
- ``locality`` — :data:`SENSITIVE` (default, must run at ``home_place``)
  or :data:`FLEXIBLE` (``@AnyPlaceTask``, may be stolen by any place);
- ``work`` — pure-compute cycles of the body;
- ``reads``/``writes`` — the data blocks the body touches (priced by the
  memory model);
- ``encapsulates`` — §II condition (d): when stolen across nodes the blocks
  migrate in bulk once and all subsequent touches are thief-local;
- ``copy_back`` — blocks whose contents must be shipped back to the home
  place after remote execution (the Turing-ring inner-task pathology,
  §IV-B).

The body runs *real Python code* when the task starts executing and may
spawn children through its :class:`TaskContext`; the simulated duration is
``work`` plus the priced memory/communication effects.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.cluster.memory import DataBlock
from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.finish import FinishScope
    from repro.runtime.runtime import SimRuntime


class Locality(enum.Enum):
    """Programmer-declared locality class of a task (§II)."""

    SENSITIVE = "sensitive"
    FLEXIBLE = "flexible"


SENSITIVE = Locality.SENSITIVE
FLEXIBLE = Locality.FLEXIBLE


class TaskState(enum.Enum):
    """Lifecycle of a task inside the runtime."""

    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


_task_ids = itertools.count()


def _reset_task_ids() -> None:
    """Restart the global id counter (test isolation only)."""
    global _task_ids
    _task_ids = itertools.count()


class Task:
    """One asynchronous activity."""

    __slots__ = (
        "task_id", "label", "body", "home_place", "locality", "work",
        "reads", "writes", "encapsulates", "copy_back", "closure_bytes",
        "state", "finish", "exec_place", "exec_worker", "stolen_locally",
        "stolen_remotely", "depth", "enqueue_time", "start_time", "end_time",
        "committed",
    )

    def __init__(
        self,
        body: Optional[Callable[["TaskContext"], None]],
        home_place: int,
        *,
        locality: Locality = SENSITIVE,
        work: float = 0.0,
        reads: Sequence[DataBlock] = (),
        writes: Sequence[DataBlock] = (),
        encapsulates: bool = False,
        copy_back: Sequence[DataBlock] = (),
        closure_bytes: int = 256,
        label: str = "",
        depth: int = 0,
    ) -> None:
        if work < 0:
            raise SchedulerError(f"negative task work: {work}")
        self.task_id = next(_task_ids)
        self.label = label
        self.body = body
        self.home_place = home_place
        self.locality = locality
        self.work = float(work)
        self.reads: Tuple[DataBlock, ...] = tuple(reads)
        self.writes: Tuple[DataBlock, ...] = tuple(writes)
        self.encapsulates = bool(encapsulates)
        self.copy_back: Tuple[DataBlock, ...] = tuple(copy_back)
        self.closure_bytes = int(closure_bytes)
        self.state = TaskState.CREATED
        self.finish: Optional["FinishScope"] = None
        self.exec_place: Optional[int] = None
        self.exec_worker: Optional[int] = None
        self.stolen_locally = False
        self.stolen_remotely = False
        #: Whether the task's real effects (body, child spawns) have become
        #: visible.  Only meaningful under crash-safe execution: a crash
        #: before the commit point loses the task cleanly (re-executable
        #: exactly once); a crash after it counts the task as completed.
        self.committed = False
        self.depth = depth
        self.enqueue_time: float = 0.0
        self.start_time: float = 0.0
        self.end_time: float = 0.0

    # -- convenience -----------------------------------------------------
    @property
    def is_flexible(self) -> bool:
        """Whether the task carries the ``@AnyPlaceTask`` annotation."""
        return self.locality is FLEXIBLE

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of the blocks the task touches (dedup by id)."""
        seen = {}
        for b in self.reads + self.writes:
            seen[b.block_id] = b.nbytes
        return sum(seen.values())

    def blocks(self) -> List[DataBlock]:
        """All touched blocks in declaration order, repeats preserved."""
        return list(self.reads) + list(self.writes)

    def unique_blocks(self) -> List[DataBlock]:
        """Touched blocks, de-duplicated by id (first occurrence wins)."""
        seen: dict[int, DataBlock] = {}
        for b in self.reads + self.writes:
            seen.setdefault(b.block_id, b)
        return list(seen.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Task {self.task_id} {self.label or 'anon'} "
                f"@p{self.home_place} {self.locality.value} "
                f"work={self.work:.0f}>")


class TaskContext:
    """What a task body sees while it runs.

    ``ctx.place`` is the place the body is *actually* executing at (which
    differs from ``task.home_place`` after a remote steal).  ``ctx.spawn``
    creates child activities; children default to the executing place, which
    is how a stolen Delaunay triangle "makes work available for other
    co-located workers in the thief node" (§IV-B).
    """

    __slots__ = ("runtime", "task", "place", "worker_id", "_children")

    def __init__(self, runtime: "SimRuntime", task: Task, place: int,
                 worker_id: int) -> None:
        self.runtime = runtime
        self.task = task
        self.place = place
        self.worker_id = worker_id
        self._children: List[Task] = []

    @property
    def now(self) -> float:
        """Current simulated time in cycles."""
        return self.runtime.env.now

    @property
    def n_places(self) -> int:
        """Number of places in the cluster."""
        return self.runtime.spec.n_places

    def rng(self, *names: object):
        """Deterministic RNG substream scoped to this task's label path."""
        return self.runtime.rngs.stream("task", self.task.label, *names)

    def spawn(
        self,
        body: Optional[Callable[["TaskContext"], None]],
        place: Optional[int] = None,
        *,
        locality: Optional[Locality] = None,
        flexible: Optional[bool] = None,
        work: float = 0.0,
        reads: Sequence[DataBlock] = (),
        writes: Sequence[DataBlock] = (),
        encapsulates: bool = False,
        copy_back: Sequence[DataBlock] = (),
        closure_bytes: int = 256,
        label: str = "",
        finish: Optional["FinishScope"] = None,
    ) -> Task:
        """``async (p) S`` from inside a running activity.

        ``finish`` overrides the scope the child joins (default: the
        parent's scope).  Locality can be given either as ``locality=``
        (a :class:`Locality`) or ``flexible=`` (the ``@AnyPlaceTask``
        boolean, mirroring :meth:`repro.apgas.api.Apgas.async_at`);
        default sensitive.
        """
        if locality is not None and flexible is not None:
            raise SchedulerError("pass either locality= or flexible=")
        if locality is None:
            from repro.apgas.annotations import resolve_locality
            locality = resolve_locality(body, flexible)
        child = Task(
            body, self.place if place is None else place,
            locality=locality, work=work, reads=reads, writes=writes,
            encapsulates=encapsulates, copy_back=copy_back,
            closure_bytes=closure_bytes, label=label,
            depth=self.task.depth + 1)
        if finish is not None:
            child.finish = finish
        self._children.append(child)
        return child

    def drain_children(self) -> List[Task]:
        """Take and clear the children spawned so far (runtime internal)."""
        children, self._children = self._children, []
        return children
