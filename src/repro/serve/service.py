"""The serving-tier router: place supervision, dispatch, and failover.

:class:`ServeService` owns the fleet of place processes.  It spawns one
OS process per place (loopback sockets as the interconnect), feeds
requests to places per the configured balancer, and keeps the
**request ledger** — id → (payload, believed location, terminal
outcome) — that makes crash failover exactly-once:

- every location change is reported to the router (dispatch sets it,
  a steal's victim sends ``stolen`` before handing the task over);
- when a place dies (socket EOF after a crash/SIGKILL), every
  non-terminal request last seen there is re-dispatched to a survivor
  (``force`` admission, bypassing queue bounds) — flexible requests
  always, sticky requests per :class:`SensitivePolicy` (``fail`` →
  :class:`PlaceFailedError` outcome, ``relax`` → degrade to flexible);
- re-dispatch is *at-least-once* (a task stolen away from the dead
  place an instant before the crash may also finish at its thief), so
  the router dedupes completions: the first ``response`` per id wins,
  later ones increment ``duplicate_responses``.  Clients observe
  exactly-once completion.

Faults: :meth:`kill_place` SIGKILLs a live place process — the PR-1
``FaultPlan`` grammar drives it via :func:`crash_schedule` (crash times
in wall seconds, or fractions of the trace duration).
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import signal
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, SensitivePolicy
from repro.serve.balancer import BalancerSpec, Dispatcher, get_balancer
from repro.serve.protocol import (
    Framer,
    ProtocolError,
    ServeError,
    open_framer,
)

#: Seconds a place process gets to report its port before startup fails.
STARTUP_TIMEOUT = 30.0

#: Terminal request outcomes as recorded in the ledger.
OUTCOME_OK = "ok"
OUTCOME_SHED = "shed"
OUTCOME_FAILED = "failed"


@dataclass
class RequestRecord:
    """Ledger entry for one submitted request."""

    task: dict
    t_submit: float
    where: Optional[int] = None
    accepted: bool = False
    outcome: Optional[str] = None
    place: Optional[int] = None   # where it actually executed
    warm: Optional[bool] = None
    relaxed: bool = False
    t_done: Optional[float] = None
    future: "asyncio.Future" = field(
        default_factory=lambda: asyncio.get_running_loop().create_future())

    @property
    def terminal(self) -> bool:
        return self.outcome is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit


def crash_schedule(plan: FaultPlan,
                   duration_s: float) -> List[Tuple[float, int]]:
    """Resolve a fault plan into ``(at_seconds, place)`` kill points.

    The serving tier supports the plan's crash and policy tokens; the
    simulator-only tokens (loss/spike/straggle) have no socket-level
    analogue here and are rejected rather than silently ignored.
    """
    if plan.loss or plan.spikes or plan.stragglers:
        raise ConfigError(
            "the live serving tier supports only crash:/policy:/seed: "
            "fault tokens (loss/spike/straggle are simulator-only)")
    resolved = plan.resolved(duration_s) if plan.needs_horizon else plan
    return sorted((c.at, c.place) for c in resolved.crashes)


class ServeService:
    """A multi-process serving instance driven from one asyncio loop."""

    def __init__(self, n_places: int = 4, workers_per_place: int = 2,
                 balancer: str = "selective",
                 policy: SensitivePolicy = SensitivePolicy.FAIL_FAST,
                 seed: int = 0, shared_cap: int = 256,
                 private_cap: int = 64, cold_factor: float = 2.0,
                 idle_wait: float = 0.02,
                 mp_context: str = "spawn") -> None:
        if n_places < 1 or workers_per_place < 1:
            raise ConfigError("need at least one place and worker")
        self.n_places = n_places
        self.workers_per_place = workers_per_place
        self.spec: BalancerSpec = get_balancer(balancer)
        self.policy = policy
        self.seed = seed
        self.shared_cap = shared_cap
        self.private_cap = private_cap
        self.cold_factor = cold_factor
        self.idle_wait = idle_wait
        self._mp_context = mp_context
        self.dispatcher = Dispatcher(self.spec, n_places, seed)
        self.counters: Counter = Counter()
        self.records: Dict[int, RequestRecord] = {}
        self.place_counters: Dict[int, dict] = {}
        self.alive: set = set()
        self._procs: List[multiprocessing.Process] = []
        self._ports: List[int] = []
        self._framers: Dict[int, Framer] = {}
        self._readers: List[asyncio.Task] = []
        self._stats_waiters: Dict[int, asyncio.Future] = {}
        self._stopping = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def _launch_processes(self) -> None:
        """Spawn the place processes and collect their listening ports."""
        ctx = multiprocessing.get_context(self._mp_context)
        pipes = []
        for p in range(self.n_places):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            cfg = {"place": p, "n_places": self.n_places,
                   "workers": self.workers_per_place,
                   "steal": self.spec.steal,
                   "shared_cap": self.shared_cap,
                   "private_cap": self.private_cap,
                   "cold_factor": self.cold_factor,
                   "idle_wait": self.idle_wait,
                   "seed": self.seed}
            from repro.serve.place import run_place
            proc = ctx.Process(target=run_place, args=(cfg, child_conn),
                               daemon=True, name=f"serve-place-{p}")
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            pipes.append(parent_conn)
        for p, conn in enumerate(pipes):
            if not conn.poll(STARTUP_TIMEOUT):
                raise ServeError(f"place {p} failed to start "
                                 f"(no port after {STARTUP_TIMEOUT}s)")
            self._ports.append(conn.recv())
            conn.close()

    async def start(self) -> None:
        """Spawn places, connect, and exchange peer discovery."""
        if self._started:
            raise ServeError("service already started")
        self._started = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._launch_processes)
        ports = {str(p): port for p, port in enumerate(self._ports)}
        for p, port in enumerate(self._ports):
            framer = await open_framer("127.0.0.1", port)
            await framer.send({"kind": "hello", "role": "router"})
            await framer.send({"kind": "peers", "ports": ports})
            self._framers[p] = framer
            self.alive.add(p)
        for p in range(self.n_places):
            self._readers.append(
                asyncio.ensure_future(self._reader(p)))

    async def stop(self) -> None:
        """Collect final place counters and shut everything down."""
        self._stopping = True
        for p in sorted(self.alive):
            framer = self._framers.get(p)
            if framer is None:
                continue
            waiter = asyncio.get_running_loop().create_future()
            self._stats_waiters[p] = waiter
            try:
                await framer.send({"kind": "stats"})
                self.place_counters[p] = await asyncio.wait_for(waiter, 5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            finally:
                self._stats_waiters.pop(p, None)
        for p in sorted(self.alive):
            with contextlib.suppress(ConnectionError, OSError):
                await self._framers[p].send({"kind": "stop"})
        for task in self._readers:
            task.cancel()
        await asyncio.gather(*self._readers, return_exceptions=True)
        for framer in self._framers.values():
            await framer.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_processes)

    def _join_processes(self) -> None:
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)

    # -- submission & dispatch ---------------------------------------------
    async def submit(self, task: dict) -> RequestRecord:
        """Enter one request into the ledger and dispatch it."""
        if not self._started:
            raise ServeError("service not started")
        rid = task["id"]
        if rid in self.records:
            raise ServeError(f"duplicate request id {rid}")
        rec = RequestRecord(task=dict(task), t_submit=time.perf_counter())
        self.records[rid] = rec
        self.counters["offered"] += 1
        await self._dispatch(rec, force=False)
        return rec

    async def _dispatch(self, rec: RequestRecord, force: bool) -> None:
        task = rec.task
        if not task["flexible"] and task["home"] not in self.alive:
            self._sensitive_orphan(rec)
            if rec.terminal:
                return
        target = self.dispatcher.place_for(task, sorted(self.alive))
        if target is None:
            self._complete(rec, OUTCOME_FAILED)
            self.counters["failed_no_survivors"] += 1
            return
        rec.where = target
        try:
            await self._framers[target].send(
                {"kind": "enqueue", "task": task, "force": force})
        except (ConnectionError, OSError):
            # The place died under us.  ``rec.where`` already points at
            # it, so the death sweep re-dispatches this request along
            # with every other orphan — exactly once, not once per
            # in-flight sender.
            await self._mark_dead(target)

    def _sensitive_orphan(self, rec: RequestRecord) -> None:
        """Apply the sensitive policy to a home-less sticky request."""
        if self.policy is SensitivePolicy.RELAX:
            rec.task["flexible"] = True
            rec.task["relaxed"] = True
            rec.relaxed = True
            self.counters["relaxed_sensitive"] += 1
        else:
            self._complete(rec, OUTCOME_FAILED)
            self.counters["failed_sensitive"] += 1

    def _complete(self, rec: RequestRecord, outcome: str,
                  place: Optional[int] = None,
                  warm: Optional[bool] = None) -> None:
        rec.outcome = outcome
        rec.place = place
        rec.warm = warm
        rec.t_done = time.perf_counter()
        self.counters[f"done_{outcome}"] += 1
        if not rec.future.done():
            rec.future.set_result(rec)

    # -- place streams -----------------------------------------------------
    async def _reader(self, p: int) -> None:
        framer = self._framers[p]
        try:
            while True:
                msg = await framer.recv()
                if msg is None:
                    break
                self._on_message(p, msg)
        except (ProtocolError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            if not self._stopping:
                await self._mark_dead(p)

    def _on_message(self, p: int, msg: dict) -> None:
        kind = msg["kind"]
        if kind == "response":
            rec = self.records.get(msg["id"])
            if rec is None:
                return
            if rec.terminal:
                self.counters["duplicate_responses"] += 1
                return
            if msg.get("misplaced"):
                self.counters["misplaced"] += 1
                self._complete(rec, OUTCOME_FAILED, place=msg["place"])
                return
            self._complete(rec, OUTCOME_OK, place=msg["place"],
                           warm=msg.get("warm"))
        elif kind == "ack":
            rec = self.records.get(msg["id"])
            if rec is None or rec.terminal:
                return
            if msg["accepted"]:
                if not rec.accepted:
                    rec.accepted = True
                    self.counters["accepted"] += 1
            else:
                self.counters["shed"] += 1
                self._complete(rec, OUTCOME_SHED)
        elif kind == "stolen":
            rec = self.records.get(msg["id"])
            if rec is not None and not rec.terminal:
                rec.where = msg["to"]
                self.counters["migrations"] += 1
        elif kind == "stats":
            waiter = self._stats_waiters.get(p)
            if waiter is not None and not waiter.done():
                waiter.set_result(msg["counters"])

    # -- failure handling --------------------------------------------------
    async def _mark_dead(self, p: int) -> None:
        if p not in self.alive:
            return
        self.alive.discard(p)
        self.counters["place_deaths"] += 1
        orphans = [rec for rec in self.records.values()
                   if not rec.terminal and rec.where == p]
        for rec in orphans:
            if not rec.task["flexible"]:
                self._sensitive_orphan(rec)
                if rec.terminal:
                    continue
            self.counters["redispatched"] += 1
            await self._dispatch(rec, force=True)

    def kill_place(self, p: int) -> None:
        """SIGKILL a live place process (fault injection)."""
        if not (0 <= p < self.n_places):
            raise ConfigError(f"no such place: {p}")
        proc = self._procs[p]
        if proc.pid is None or not proc.is_alive():
            return
        self.counters["kills"] += 1
        os.kill(proc.pid, signal.SIGKILL)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Router + per-place counters (deterministically ordered)."""
        return {
            "router": {k: self.counters[k] for k in sorted(self.counters)},
            "places": {str(p): {k: c[k] for k in sorted(c)}
                       for p, c in sorted(self.place_counters.items())},
        }

    async def __aenter__(self) -> "ServeService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
