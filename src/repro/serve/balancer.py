"""Load-balancing policies for the serving tier.

A balancer decides two things, and only for locality-*flexible*
requests (sticky requests always run at their home place — that is the
serving tier's hard invariant, independent of policy):

1. **dispatch** — which place's shared deque an incoming flexible
   request is appended to;
2. **stealing** — whether idle places may pull work out of remote
   shared deques after exhausting their local deques, i.e. whether
   Algorithm 1's final steal tier is enabled.

``selective`` is the paper's Algorithm 1 as a load balancer: requests
run where their state lives (dispatch to home, warm-cache service
times) and only the spillover migrates, pulled by idle places in
local-first order.  ``round-robin`` is the classic stateless
front-end: even spray at dispatch time, no rebalancing afterwards.
``random`` is the RandomWS-style baseline: uniformly random dispatch
(ignoring the request's affinity) plus random-victim stealing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigError

#: Dispatch modes a :class:`BalancerSpec` may name.
_DISPATCH_MODES = ("home", "round-robin", "random")


@dataclass(frozen=True)
class BalancerSpec:
    """A registered load-balancing policy (pure data; see BALANCERS)."""

    name: str
    #: Where flexible requests are enqueued: ``home`` (their affinity
    #: place), ``round-robin``, or ``random``.
    dispatch: str
    #: Whether idle places run Algorithm 1's remote-steal tier.
    steal: bool
    doc: str


BALANCERS: Dict[str, BalancerSpec] = {
    "selective": BalancerSpec(
        "selective", dispatch="home", steal=True,
        doc="Algorithm 1: dispatch to the request's home place "
            "(warm cache); idle places steal flexible spillover from "
            "remote shared deques, local work first."),
    "round-robin": BalancerSpec(
        "round-robin", dispatch="round-robin", steal=False,
        doc="Classic front-end: spray flexible requests evenly at "
            "dispatch time; no work movement afterwards."),
    "random": BalancerSpec(
        "random", dispatch="random", steal=True,
        doc="RandomWS-style: uniformly random dispatch ignoring "
            "affinity, plus random-victim stealing."),
}


def get_balancer(name: str) -> BalancerSpec:
    """Resolve a balancer name (case-insensitive) or raise ConfigError."""
    for known, spec in BALANCERS.items():
        if known.lower() == name.lower():
            return spec
    raise ConfigError(f"unknown balancer {name!r}; known: "
                      f"{sorted(BALANCERS)}")


class Dispatcher:
    """Router-side placement state for one service instance.

    ``place_for`` only ever returns a currently-alive place; the home
    policy falls back to a seeded-random survivor when the preferred
    place is dead (crash failover re-dispatch goes through the same
    path with ``force`` admission at the place).
    """

    def __init__(self, spec: BalancerSpec, n_places: int,
                 seed: int = 0) -> None:
        if spec.dispatch not in _DISPATCH_MODES:
            raise ConfigError(f"bad dispatch mode {spec.dispatch!r}")
        self.spec = spec
        self.n_places = n_places
        self._rng = random.Random(seed * 7919 + 17)
        self._rr_next = 0

    def place_for(self, task: dict, alive: Sequence[int]) -> Optional[int]:
        """Choose the target place for one request; None if none alive."""
        if not alive:
            return None
        home = task["home"]
        if not task["flexible"]:
            # Sticky requests are policy-independent: home or nothing.
            return home if home in alive else None
        if self.spec.dispatch == "home":
            if home in alive:
                return home
            return self._rng.choice(list(alive))
        if self.spec.dispatch == "round-robin":
            # Cycle over place ids, skipping the dead, so the pattern
            # stays even as membership changes.
            for _ in range(self.n_places):
                target = self._rr_next % self.n_places
                self._rr_next += 1
                if target in alive:
                    return target
            return self._rng.choice(list(alive))
        return self._rng.choice(list(alive))
