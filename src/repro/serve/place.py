"""One *place* of the serving tier: an OS process running asyncio.

Each place is its own process (sidestepping the GIL — CPU burn in one
place never stalls another) listening on a loopback socket.  Inside, the
paper's dual-deque structure runs over ``workers`` asyncio worker
coroutines:

- one **private deque per worker** holding sticky-session requests
  (locality-sensitive: they arrived homed here and never leave);
- one **shared deque per place** holding flexible ``@any_place_task``
  requests, the only deque remote thieves may touch.

A worker acquires work in Algorithm 1's local-first order: own private
deque (LIFO), co-located workers' private deques (FIFO), the local
shared deque (FIFO), and finally — when the balancer enables stealing —
a remote place's shared deque (oldest request first, over a socket).

Queues are bounded: an ``enqueue`` that would overflow its deque is
refused (``ack accepted=false``) and counted as shed, so saturation
degrades into load-shedding instead of unbounded latency.  Failover
re-dispatches carry ``force=true`` and bypass the bound — an accepted
request is never shed after the fact.

Cache affinity is priced into service time: a request executing at its
home place costs ``service_ms``; anywhere else it costs
``service_ms × cold_factor`` (the warm-cache/cold-cache asymmetry that
makes selective locality-aware balancing measurable).
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import random
import time
from typing import Dict, List, Optional

from repro.serve.protocol import Framer, ProtocolError

#: How long an idle worker waits for the work event before retrying its
#: full take/steal round (seconds).  A safety net only: enqueues set the
#: event, so normal wakeups are immediate.
DEFAULT_IDLE_WAIT = 0.02

#: Timeout for one remote steal probe (send + reply).
STEAL_TIMEOUT = 1.0


class PlaceServer:
    """The in-process state of one serving place."""

    def __init__(self, cfg: dict) -> None:
        self.place: int = cfg["place"]
        self.n_places: int = cfg["n_places"]
        self.workers: int = cfg["workers"]
        self.steal_enabled: bool = cfg["steal"]
        self.shared_cap: int = cfg["shared_cap"]
        self.private_cap: int = cfg["private_cap"]
        self.cold_factor: float = cfg["cold_factor"]
        self.idle_wait: float = cfg.get("idle_wait", DEFAULT_IDLE_WAIT)
        self.shared: collections.deque = collections.deque()
        self.private: List[collections.deque] = [
            collections.deque() for _ in range(self.workers)]
        self.counters: collections.Counter = collections.Counter()
        self.peers: Dict[int, int] = {}  # place -> port
        self._peer_framers: Dict[int, Framer] = {}
        self._peer_locks: Dict[int, asyncio.Lock] = {}
        self._router: Optional[Framer] = None
        self._work = asyncio.Event()
        self._stop = asyncio.Event()
        self._conn_tasks: set = set()
        self._rng = random.Random(cfg.get("seed", 0) * 100_003
                                  + self.place)

    # -- connection handling -----------------------------------------------
    async def on_connection(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        framer = Framer(reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                msg = await framer.recv()
                if msg is None:
                    break
                kind = msg["kind"]
                if kind == "enqueue":
                    await self._handle_enqueue(msg, framer)
                elif kind == "steal":
                    await self._handle_steal(msg, framer)
                elif kind == "hello":
                    if msg.get("role") == "router":
                        self._router = framer
                elif kind == "peers":
                    self.peers = {int(p): int(port) for p, port
                                  in msg["ports"].items()
                                  if int(p) != self.place}
                elif kind == "stats":
                    await framer.send({"kind": "stats",
                                       "place": self.place,
                                       "counters": dict(self.counters)})
                elif kind == "stop":
                    self._stop.set()
                    break
        except (ProtocolError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Shutdown path: the loop is being torn down.  Ending the
            # handler cleanly keeps asyncio's stream machinery from
            # logging a spurious traceback from the place process.
            pass
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await framer.close()

    async def _handle_enqueue(self, msg: dict, framer: Framer) -> None:
        task = msg["task"]
        force = bool(msg.get("force"))
        accepted = True
        if task["flexible"]:
            if not force and len(self.shared) >= self.shared_cap:
                accepted = False
            else:
                self.shared.append(task)
        elif task["home"] != self.place:
            # A sticky request routed off-home is a router bug; refuse
            # loudly rather than execute it in the wrong cache domain.
            self.counters["misrouted"] += 1
            accepted = False
        else:
            target = min(self.private, key=len)
            if not force and len(target) >= self.private_cap:
                accepted = False
            else:
                target.append(task)
        self.counters["accepted" if accepted else "shed"] += 1
        if accepted:
            self._work.set()
        await framer.send({"kind": "ack", "id": task["id"],
                           "accepted": accepted})

    async def _handle_steal(self, msg: dict, framer: Framer) -> None:
        task = self.shared.popleft() if self.shared else None
        if task is not None:
            self.counters["steals_out"] += 1
            # Tell the router where the request went *before* handing it
            # over: while this place is alive the router's location map
            # stays a superset of the truth, which is what crash
            # failover's at-least-once re-dispatch relies on.
            if self._router is not None:
                with contextlib.suppress(ConnectionError, OSError):
                    await self._router.send(
                        {"kind": "stolen", "id": task["id"],
                         "from": self.place, "to": msg["thief"]})
        await framer.send({"kind": "steal_reply", "task": task})

    # -- Algorithm 1: local-first acquisition ------------------------------
    def _take_local(self, w: int) -> Optional[dict]:
        mine = self.private[w]
        if mine:
            self.counters["own_pops"] += 1
            return mine.pop()  # LIFO for the owner
        for v in range(self.workers):
            if v != w and self.private[v]:
                self.counters["local_steals"] += 1
                return self.private[v].popleft()
        if self.shared:
            self.counters["shared_takes"] += 1
            return self.shared.popleft()
        return None

    async def _peer_framer(self, victim: int) -> Optional[Framer]:
        framer = self._peer_framers.get(victim)
        if framer is not None:
            return framer
        port = self.peers.get(victim)
        if port is None:
            return None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port), STEAL_TIMEOUT)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return None
        framer = Framer(reader, writer)
        await framer.send({"kind": "hello", "role": "thief",
                           "place": self.place})
        self._peer_framers[victim] = framer
        return framer

    async def _drop_peer(self, victim: int) -> None:
        framer = self._peer_framers.pop(victim, None)
        if framer is not None:
            await framer.close()

    async def _steal_remote(self, w: int) -> Optional[dict]:
        """One probe round over the victims in seeded-random order."""
        victims = [p for p in self.peers if p != self.place]
        self._rng.shuffle(victims)
        for victim in victims:
            lock = self._peer_locks.setdefault(victim, asyncio.Lock())
            async with lock:
                framer = await self._peer_framer(victim)
                if framer is None:
                    continue
                self.counters["steal_probes"] += 1
                try:
                    await framer.send({"kind": "steal",
                                       "thief": self.place})
                    reply = await asyncio.wait_for(framer.recv(),
                                                   STEAL_TIMEOUT)
                except (ProtocolError, ConnectionError, OSError,
                        asyncio.TimeoutError):
                    await self._drop_peer(victim)
                    continue
            if reply is None:
                await self._drop_peer(victim)
                continue
            if reply.get("task") is not None:
                self.counters["steal_hits"] += 1
                return reply["task"]
        return None

    # -- execution ---------------------------------------------------------
    async def _execute(self, w: int, task: dict) -> None:
        warm = task["home"] == self.place
        if not task["flexible"] and not warm:
            # Defense in depth: the deque discipline makes this
            # unreachable, but if it ever happens the router (and the
            # CI smoke gate) must see it, not a silently-wrong answer.
            self.counters["misplaced"] += 1
            await self._respond({"kind": "response", "id": task["id"],
                                 "place": self.place, "warm": False,
                                 "misplaced": True})
            return
        cost = task["service_ms"] / 1000.0
        if not warm:
            cost *= self.cold_factor
        cpu = task.get("cpu_ms", 0.0) / 1000.0
        if cpu > 0:
            # Real GIL-holding work: only multi-process placement keeps
            # places independent under this.
            deadline = time.perf_counter() + (cpu if warm
                                              else cpu * self.cold_factor)
            while time.perf_counter() < deadline:
                pass
        if cost > 0:
            await asyncio.sleep(cost)
        self.counters["executed"] += 1
        self.counters["executed_warm" if warm else "executed_cold"] += 1
        await self._respond({"kind": "response", "id": task["id"],
                             "place": self.place, "warm": warm,
                             "relaxed": bool(task.get("relaxed"))})

    async def _respond(self, msg: dict) -> None:
        if self._router is None:
            return
        with contextlib.suppress(ConnectionError, OSError):
            await self._router.send(msg)

    async def _worker(self, w: int) -> None:
        while not self._stop.is_set():
            self._work.clear()
            task = self._take_local(w)
            if task is None and self.steal_enabled:
                task = await self._steal_remote(w)
            if task is None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._work.wait(),
                                           self.idle_wait)
                continue
            await self._execute(w, task)

    # -- lifecycle ---------------------------------------------------------
    async def main(self, port_conn) -> None:
        server = await asyncio.start_server(self.on_connection,
                                            "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        port_conn.send(port)
        port_conn.close()
        worker_tasks = [asyncio.ensure_future(self._worker(w))
                        for w in range(self.workers)]
        try:
            await self._stop.wait()
        finally:
            for t in worker_tasks:
                t.cancel()
            await asyncio.gather(*worker_tasks, return_exceptions=True)
            for framer in list(self._peer_framers.values()):
                await framer.close()
            server.close()
            await server.wait_closed()
            for t in list(self._conn_tasks):
                t.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)


def run_place(cfg: dict, port_conn) -> None:
    """Process entry point (``multiprocessing.Process`` target)."""
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(PlaceServer(cfg).main(port_conn))
