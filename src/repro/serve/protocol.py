"""Wire protocol for the live serving tier.

Every connection in ``repro.serve`` — router → place, thief place →
victim place, load generator → frontend — speaks the same framing: a
4-byte big-endian length prefix followed by one UTF-8 JSON object with a
``kind`` field.  JSON keeps the protocol debuggable (``tcpdump`` shows
readable frames) and places no pickle trust boundary between processes;
the payloads are small dicts, so framing cost is negligible next to
request service times.

Frame kinds (see DESIGN.md §16 for the full exchange diagrams)::

    hello        first frame on a connection; names the peer's role
    enqueue      router → place: run this request (``force`` bypasses
                 the bounded-queue admission check on failover)
    ack          place → router: accepted or shed, per request
    steal        thief → victim: give me your oldest shared task
    steal_reply  victim → thief: a task, or ``task: null`` for a miss
    stolen       victim → router: request moved to the thief (location
                 tracking for crash failover)
    response     executing place → router: request finished
    request      loadgen → frontend: submit one request
    done         frontend → loadgen: terminal outcome for one request
    stats        counter snapshot request/reply
    stop         orderly shutdown

:class:`Framer` wraps an asyncio stream pair with a send lock so
concurrent coroutines (e.g. an ack and a response) cannot interleave
partial frames on one socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct
from typing import Optional

from repro.errors import ReproError


class ServeError(ReproError):
    """The live serving tier was misused or reached a broken state."""


class ProtocolError(ServeError):
    """A malformed, truncated, or oversized frame arrived on a socket."""


#: Length prefix: 4-byte unsigned big-endian payload size.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's JSON payload.  Requests are tiny dicts; a
#: frame this large means a corrupted length prefix, not a real message.
MAX_FRAME_BYTES = 1 << 20


def encode(msg: dict) -> bytes:
    """Serialize one message to its on-wire bytes (header + JSON)."""
    body = json.dumps(msg, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(body)} bytes")
    return HEADER.pack(len(body)) + body


async def read_msg(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    (size,) = HEADER.unpack(header)
    if size > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {size} exceeds "
                            f"{MAX_FRAME_BYTES} (corrupt stream?)")
    try:
        body = await reader.readexactly(size)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    try:
        msg = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from None
    if not isinstance(msg, dict) or "kind" not in msg:
        raise ProtocolError("frame payload is not a message object")
    return msg


class Framer:
    """One framed, full-duplex message stream over an asyncio socket."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()

    async def send(self, msg: dict) -> None:
        """Write one frame atomically (serialized per connection)."""
        data = encode(msg)
        async with self._send_lock:
            self._writer.write(data)
            await self._writer.drain()

    async def recv(self) -> Optional[dict]:
        """Read the next frame; ``None`` on clean EOF."""
        return await read_msg(self._reader)

    async def close(self) -> None:
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()


async def open_framer(host: str, port: int) -> Framer:
    """Connect and wrap the stream pair in a :class:`Framer`."""
    reader, writer = await asyncio.open_connection(host, port)
    return Framer(reader, writer)
