"""Open-loop load generation and the serve benchmark driver.

Two ways to drive traffic at a service:

- **embedded** (:func:`run_benchmark`) — the loadgen owns the
  :class:`ServeService` in-process (places are still separate OS
  processes), replays a :class:`TrafficSpec` schedule against one or
  more balancers back to back, and can SIGKILL places mid-trace from a
  ``FaultPlan``.  This is what ``repro loadgen`` runs by default and
  what produces ``BENCH_serve.json``.
- **remote** (:func:`drive_remote`) — connect to a standalone
  ``repro serve`` frontend over TCP and replay the schedule against it
  (no fault injection: the remote service owns its processes).

Replay is open-loop: each arrival is submitted at its scheduled
wall-clock offset whether or not earlier requests have completed, so
overload shows up as queue growth and shedding rather than being
absorbed by the generator.  A request still unresolved
``completion_timeout`` seconds after the last arrival is counted as
``lost`` — the outcome that must never happen for accepted requests
and that the CI smoke gate fails on.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import FaultPlan, SensitivePolicy
from repro.serve.protocol import Framer, open_framer
from repro.serve.recorder import LatencyRecorder, build_report
from repro.serve.service import RequestRecord, ServeService, crash_schedule
from repro.serve.traffic import Arrival, TrafficSpec, make_trace

#: Seconds after the last arrival before unresolved requests are
#: declared lost.  Bounded queues bound completion time, so anything
#: still pending after this is a real loss, not slowness.
COMPLETION_TIMEOUT = 30.0

OUTCOME_LOST = "lost"


def _harvest(records: Sequence[RequestRecord],
             recorder: LatencyRecorder) -> None:
    for rec in records:
        recorder.record(rec.task["cls"], rec.outcome or OUTCOME_LOST,
                        latency_s=rec.latency_s, relaxed=rec.relaxed,
                        warm=rec.warm)


async def drive_embedded(service: ServeService,
                         arrivals: Sequence[Arrival],
                         kills: Sequence[tuple] = (),
                         completion_timeout: float = COMPLETION_TIMEOUT,
                         ) -> List[RequestRecord]:
    """Replay ``arrivals`` open-loop against a started service."""
    loop = asyncio.get_running_loop()
    t0 = loop.time()

    async def _kill(at: float, place: int) -> None:
        delay = t0 + at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        service.kill_place(place)

    kill_tasks = [asyncio.ensure_future(_kill(at, place))
                  for at, place in kills]
    records: List[RequestRecord] = []
    try:
        for arrival in arrivals:
            delay = t0 + arrival.t - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            records.append(await service.submit(arrival.payload()))
        futures = [r.future for r in records if not r.future.done()]
        if futures:
            await asyncio.wait(futures, timeout=completion_timeout)
    finally:
        for task in kill_tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*kill_tasks, return_exceptions=True)
    return records


def run_cell(traffic: TrafficSpec, balancer: str, *,
             workers_per_place: int = 2,
             policy: SensitivePolicy = SensitivePolicy.FAIL_FAST,
             faults: Optional[FaultPlan] = None,
             shared_cap: int = 256, private_cap: int = 64,
             cold_factor: float = 2.0, seed: int = 0,
             completion_timeout: float = COMPLETION_TIMEOUT,
             mp_context: str = "spawn") -> dict:
    """Run one (traffic × balancer) cell on a fresh embedded service."""
    arrivals = make_trace(traffic)
    kills = crash_schedule(faults, traffic.duration_s) if faults else ()
    if faults:
        policy = faults.sensitive_policy

    async def _run() -> tuple:
        service = ServeService(
            n_places=traffic.n_places,
            workers_per_place=workers_per_place, balancer=balancer,
            policy=policy, seed=seed, shared_cap=shared_cap,
            private_cap=private_cap, cold_factor=cold_factor,
            mp_context=mp_context)
        async with service:
            records = await drive_embedded(
                service, arrivals, kills,
                completion_timeout=completion_timeout)
        return service, records

    wall_t0 = time.perf_counter()
    service, records = asyncio.run(_run())
    wall = time.perf_counter() - wall_t0
    recorder = LatencyRecorder()
    _harvest(records, recorder)
    name = (f"{traffic.pattern}|{balancer}|{traffic.n_places}x"
            f"{workers_per_place}")
    config = {
        "traffic": {k: getattr(traffic, k)
                    for k in TrafficSpec.__dataclass_fields__},
        "balancer": balancer,
        "workers_per_place": workers_per_place,
        "policy": policy.value,
        "shared_cap": shared_cap, "private_cap": private_cap,
        "cold_factor": cold_factor, "seed": seed,
        "faults": bool(kills),
    }
    return recorder.cell(name, config, traffic.duration_s, wall,
                         service_counters=service.snapshot())


def run_benchmark(traffic: TrafficSpec,
                  balancers: Sequence[str] = ("selective", "round-robin"),
                  **cell_kwargs) -> dict:
    """Head-to-head benchmark: one cell per balancer, same trace."""
    cells = [run_cell(traffic, balancer, **cell_kwargs)
             for balancer in balancers]
    return build_report(cells)


# -- frontend (repro serve) ------------------------------------------------
async def run_frontend(service: ServeService, host: str, port: int):
    """Expose a started service to remote load generators.

    Returns the listening ``asyncio`` server; the caller decides how
    long to serve.  Protocol per client: ``request`` frames in,
    ``done`` frames out (order of completion, matched by id), plus
    ``stats`` request/reply.
    """
    background: set = set()

    async def _finish(framer: Framer, rec: RequestRecord) -> None:
        await rec.future
        try:
            await framer.send({"kind": "done", "id": rec.task["id"],
                               "outcome": rec.outcome,
                               "place": rec.place, "warm": rec.warm,
                               "relaxed": rec.relaxed})
        except (ConnectionError, OSError):
            pass

    async def _on_client(reader, writer) -> None:
        framer = Framer(reader, writer)
        try:
            while True:
                msg = await framer.recv()
                if msg is None:
                    break
                if msg["kind"] == "request":
                    rec = await service.submit(msg["task"])
                    task = asyncio.ensure_future(_finish(framer, rec))
                    background.add(task)
                    task.add_done_callback(background.discard)
                elif msg["kind"] == "hello":
                    await framer.send({
                        "kind": "hello", "role": "frontend",
                        "n_places": service.n_places,
                        "workers_per_place": service.workers_per_place})
                elif msg["kind"] == "stats":
                    await framer.send({"kind": "stats",
                                       "snapshot": service.snapshot()})
        except (ConnectionError, OSError):
            pass
        finally:
            await framer.close()

    return await asyncio.start_server(_on_client, host, port)


async def drive_remote(host: str, port: int,
                       traffic: TrafficSpec,
                       completion_timeout: float = COMPLETION_TIMEOUT,
                       ) -> tuple:
    """Replay a ``traffic`` schedule against a remote frontend.

    The frontend's hello reply states its real place count; homes are
    drawn against that, not against ``traffic.n_places`` — a sticky
    request homed at a place the server doesn't have would fail on
    arrival, which is a generator bug, not a service outcome.

    Returns ``(recorder, remote_snapshot, traffic)`` — latencies are
    measured at this end (submit → done frame), the counter snapshot
    comes from the remote service, and ``traffic`` is the spec actually
    replayed (place count rewritten to the server's).
    """
    from dataclasses import replace

    from repro.serve.protocol import ProtocolError

    recorder = LatencyRecorder()
    framer = await open_framer(host, port)
    await framer.send({"kind": "hello", "role": "loadgen"})
    try:
        reply = await framer.recv()
    except (ProtocolError, ConnectionError, OSError):
        reply = None
    if reply is None or reply.get("kind") != "hello":
        await framer.close()
        raise ProtocolError(
            f"{host}:{port} did not answer the hello handshake — "
            "is it a repro serve frontend?")
    remote_places = int(reply["n_places"])
    if remote_places != traffic.n_places:
        traffic = replace(traffic, n_places=remote_places,
                          hot_place=min(traffic.hot_place,
                                        remote_places - 1))
    arrivals = make_trace(traffic)
    pending: Dict[int, tuple] = {}
    done = asyncio.Event()
    snapshot: Dict[str, dict] = {}

    async def _reader() -> None:
        while True:
            msg = await framer.recv()
            if msg is None:
                break
            if msg["kind"] == "done":
                entry = pending.pop(msg["id"], None)
                if entry is not None:
                    arrival, t_submit = entry
                    recorder.record(
                        arrival.cls, msg["outcome"],
                        latency_s=time.perf_counter() - t_submit,
                        relaxed=bool(msg.get("relaxed")),
                        warm=msg.get("warm"))
                if not pending:
                    done.set()
            elif msg["kind"] == "stats":
                snapshot.update(msg["snapshot"])
                done.set()

    reader = asyncio.ensure_future(_reader())
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    try:
        for arrival in arrivals:
            delay = t0 + arrival.t - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            pending[arrival.rid] = (arrival, time.perf_counter())
            await framer.send({"kind": "request",
                               "task": arrival.payload()})
        if pending:
            done.clear()
            try:
                await asyncio.wait_for(done.wait(), completion_timeout)
            except asyncio.TimeoutError:
                pass
        for arrival, _ in pending.values():
            recorder.record(arrival.cls, OUTCOME_LOST)
        done.clear()
        await framer.send({"kind": "stats"})
        try:
            await asyncio.wait_for(done.wait(), 5.0)
        except asyncio.TimeoutError:
            pass
    finally:
        reader.cancel()
        await asyncio.gather(reader, return_exceptions=True)
        await framer.close()
    return recorder, snapshot, traffic
