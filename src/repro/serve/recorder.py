"""Latency recording and the serve benchmark report.

:class:`LatencyRecorder` aggregates one load-generation run: per-class
(and overall) latency distributions, outcome counts, and goodput.  Two
views of every distribution are kept:

- **exact percentiles** from the retained samples — the headline
  p50/p90/p99 numbers balancers are compared on (octave-resolution
  buckets cannot separate two balancers less than 2× apart);
- a :class:`repro.obs.Histogram` per class — the same log₂-bucketed,
  exactly-mergeable structure the fleet telemetry uses, so serve runs
  roll up with ``rollup_histograms`` like any other repro run.

``build_report`` assembles cells into the ``repro.harness.bench`` JSON
shape (``schema``/``benchmark``/``cells``/``total_wall_seconds`` plus
the machine-speed calibration score), which is what makes a committed
``BENCH_serve.json`` comparable across PRs; ``report_svg`` renders the
per-balancer latency figure through :mod:`repro.analysis.svg`.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.serve.traffic import CLS_FLEX, CLS_STICKY

SCHEMA_VERSION = 1

#: Aggregation classes: the two request classes plus the overall view.
CLASSES = (CLS_STICKY, CLS_FLEX)
ALL = "all"

#: The percentiles every latency block reports.
PERCENTILES = (0.50, 0.90, 0.99)


def exact_percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted samples (0 when empty)."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class LatencyRecorder:
    """Aggregates outcomes and latencies for one run."""

    def __init__(self) -> None:
        self.samples: Dict[str, List[float]] = {ALL: []}
        self.histograms: Dict[str, Histogram] = {ALL: Histogram()}
        for cls in CLASSES:
            self.samples[cls] = []
            self.histograms[cls] = Histogram()
        self.counters: Counter = Counter()

    def record(self, cls: str, outcome: str,
               latency_s: Optional[float] = None,
               relaxed: bool = False, warm: Optional[bool] = None) -> None:
        """Record one terminal request outcome."""
        self.counters["offered"] += 1
        self.counters[f"outcome_{outcome}"] += 1
        self.counters[f"{cls}_{outcome}"] += 1
        if relaxed:
            self.counters["relaxed"] += 1
        if warm is True:
            self.counters["warm"] += 1
        elif warm is False:
            self.counters["cold"] += 1
        if outcome == "ok" and latency_s is not None:
            ms = latency_s * 1000.0
            for key in (ALL, cls):
                if key in self.samples:
                    self.samples[key].append(ms)
                    self.histograms[key].record(ms)

    # -- views -------------------------------------------------------------
    def latency_block(self, cls: str) -> Dict[str, object]:
        """Exact percentile summary for one class (ms)."""
        xs = sorted(self.samples.get(cls, ()))
        block: Dict[str, object] = {
            "count": len(xs),
            "mean": round(sum(xs) / len(xs), 3) if xs else 0.0,
            "max": round(xs[-1], 3) if xs else 0.0,
        }
        for q in PERCENTILES:
            block[f"p{int(q * 100)}"] = round(exact_percentile(xs, q), 3)
        return block

    def goodput_rps(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        return round(self.counters["outcome_ok"] / duration_s, 2)

    def requests_block(self) -> Dict[str, int]:
        c = self.counters
        return {
            "offered": c["offered"],
            "ok": c["outcome_ok"],
            "shed": c["outcome_shed"],
            "failed": c["outcome_failed"],
            "relaxed": c["relaxed"],
            "warm": c["warm"],
            "cold": c["cold"],
        }

    def cell(self, name: str, config: dict, duration_s: float,
             wall_seconds: float,
             service_counters: Optional[dict] = None) -> dict:
        """One report cell in the bench-report shape."""
        return {
            "cell": name,
            "config": dict(config),
            "requests": self.requests_block(),
            "latency_ms": {key: self.latency_block(key)
                           for key in (ALL, *CLASSES)},
            "goodput_rps": self.goodput_rps(duration_s),
            "histograms": {key: self.histograms[key].snapshot()
                           for key in (ALL, *CLASSES)},
            "counters": service_counters or {},
            "wall_seconds": round(wall_seconds, 6),
        }


def build_report(cells: List[dict]) -> dict:
    """Assemble cells into the ``repro.harness.bench``-format report."""
    from repro.harness.bench import calibrate

    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "serve",
        "calibration_ops_per_sec": round(calibrate(rounds=1), 1),
        "cells": cells,
        "total_wall_seconds": round(
            sum(c["wall_seconds"] for c in cells), 6),
    }


def report_svg(report: dict, percentile_keys: Tuple[str, ...] =
               ("p50", "p90", "p99")) -> str:
    """Latency figure: per-balancer percentile bars, sticky vs flex."""
    from repro.analysis.svg import grouped_bar_chart

    groups: List[str] = []
    for cls in (ALL, *CLASSES):
        groups.extend(f"{cls} {p}" for p in percentile_keys)
    series: Dict[str, List[float]] = {}
    for cell in report["cells"]:
        vals: List[float] = []
        for cls in (ALL, *CLASSES):
            block = cell["latency_ms"][cls]
            vals.extend(float(block[p]) for p in percentile_keys)
        series[cell["cell"]] = vals
    return grouped_bar_chart(groups, series,
                             title="request latency by balancer",
                             y_label="latency (ms)")


def render(report: dict) -> str:
    """Human-readable table of a serve report."""
    from repro.harness.tables import render_table

    rows = []
    for cell in report["cells"]:
        req = cell["requests"]
        lat = cell["latency_ms"][ALL]
        rows.append([
            cell["cell"], req["ok"], req["shed"], req["failed"],
            f"{lat['p50']:.1f}", f"{lat['p90']:.1f}", f"{lat['p99']:.1f}",
            f"{cell['goodput_rps']:.0f}",
        ])
    return render_table(
        ["cell", "ok", "shed", "failed", "p50 (ms)", "p90 (ms)",
         "p99 (ms)", "goodput (r/s)"],
        rows, title="serve benchmark")


def compare(baseline: dict, candidate: dict,
            max_regression_pct: float = 50.0) -> Tuple[bool, List[str]]:
    """Gate a candidate serve report against a committed baseline.

    Latency here is real wall time dominated by configured service
    sleeps, so cross-machine comparison is meaningful but noisy — the
    default threshold is deliberately loose.  Conservation (no request
    unaccounted for) is checked strictly.
    """
    lines: List[str] = []
    ok = True
    base_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    for cell in candidate.get("cells", []):
        req = cell["requests"]
        accounted = req["ok"] + req["shed"] + req["failed"]
        if accounted != req["offered"]:
            ok = False
            lines.append(f"  {cell['cell']}: {req['offered']} offered but "
                         f"only {accounted} accounted for")
            continue
        base = base_cells.get(cell["cell"])
        if base is None:
            lines.append(f"  {cell['cell']}: not in baseline (skipped)")
            continue
        b99 = float(base["latency_ms"][ALL]["p99"])
        c99 = float(cell["latency_ms"][ALL]["p99"])
        pct = 100.0 * (c99 - b99) / b99 if b99 else 0.0
        lines.append(f"  {cell['cell']}: p99 {b99:.1f}ms -> {c99:.1f}ms "
                     f"({pct:+.1f}%)")
        if b99 and pct > max_regression_pct:
            ok = False
            lines.append(f"  {cell['cell']}: FAIL p99 regression over "
                         f"+{max_regression_pct:g}%")
    if not lines:
        lines.append("no comparable cells")
    return ok, lines


def to_json(report: dict) -> str:
    """Canonical serialization (sorted keys, 1-space indent)."""
    return json.dumps(report, sort_keys=True, indent=1) + "\n"
