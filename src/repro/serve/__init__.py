"""repro.serve — the live multi-process serving tier.

Each *place* of the paper's model becomes an OS process running an
asyncio event loop; places talk over loopback sockets.  Algorithm 1's
local-first steal order is the load balancer (``selective``), with
``round-robin`` and ``random`` registered as alternatives.  See
DESIGN.md §16.
"""

from repro.serve.balancer import BALANCERS, BalancerSpec, get_balancer
from repro.serve.loadgen import (
    drive_embedded,
    drive_remote,
    run_benchmark,
    run_cell,
    run_frontend,
)
from repro.serve.protocol import Framer, ProtocolError, ServeError, open_framer
from repro.serve.recorder import LatencyRecorder, build_report, report_svg
from repro.serve.service import RequestRecord, ServeService, crash_schedule
from repro.serve.traffic import (
    CLS_FLEX,
    CLS_STICKY,
    PATTERNS,
    Arrival,
    TrafficSpec,
    make_trace,
)

__all__ = [
    "Arrival",
    "BALANCERS",
    "BalancerSpec",
    "CLS_FLEX",
    "CLS_STICKY",
    "Framer",
    "LatencyRecorder",
    "PATTERNS",
    "ProtocolError",
    "RequestRecord",
    "ServeError",
    "ServeService",
    "TrafficSpec",
    "build_report",
    "crash_schedule",
    "drive_embedded",
    "drive_remote",
    "get_balancer",
    "make_trace",
    "open_framer",
    "report_svg",
    "run_benchmark",
    "run_cell",
    "run_frontend",
]
