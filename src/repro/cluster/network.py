"""Interconnect model: message accounting and transfer latency.

Every cross-node interaction in the runtime goes through this object so that
Table III ("number of messages transmitted across nodes") falls out of a
single counter.  Messages are classified by kind so the benchmarks can also
break down *why* a scheduler communicates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.costmodel import CostModel
from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigError

#: Message kinds used by the runtime.
MSG_STEAL_REQUEST = "steal_request"
MSG_STEAL_REPLY = "steal_reply"
MSG_TASK_SHIP = "task_ship"          # closure of a stolen task
MSG_DATA_BLOCK = "data_block"        # bulk transfer of an encapsulated block
MSG_REMOTE_REF = "remote_ref"        # fine-grained remote read/write pair
MSG_RESULT_COPYBACK = "result_copyback"
MSG_TERMINATION = "termination"

MESSAGE_KINDS = (
    MSG_STEAL_REQUEST, MSG_STEAL_REPLY, MSG_TASK_SHIP, MSG_DATA_BLOCK,
    MSG_REMOTE_REF, MSG_RESULT_COPYBACK, MSG_TERMINATION,
)


@dataclass
class NetworkStats:
    """Aggregated interconnect counters for one simulation run."""

    messages: int = 0
    bytes: int = 0
    by_kind: Counter = field(default_factory=Counter)
    by_pair: Counter = field(default_factory=Counter)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for reports."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_kind": dict(self.by_kind),
            "by_pair": self.by_pair_rows(),
        }

    def by_pair_rows(self) -> List[List[int]]:
        """Per-link traffic as a sorted ``[src, dst, packets]`` table."""
        return [[src, dst, self.by_pair[(src, dst)]]
                for src, dst in sorted(self.by_pair)]


class Network:
    """Message-counting interconnect between places.

    The network does not own simulated processes; it *prices* transfers
    (returning a cycle count the caller yields as a timeout) and counts
    them.  That keeps the kernel simple while remaining faithful to the
    observables the paper reports: message counts and data volume.

    Contention model: each node's NIC serializes its traffic (10 Gbit/s
    full duplex — separate send and receive sides).  A transfer begins
    when both the source's send side and the destination's receive side
    are free; the returned latency includes that queueing delay.  This is
    what makes a data-heavy scheduler (DistWS-NS hauling locality-
    sensitive working sets around) pay honestly: its transfers saturate
    the NICs and start queueing, exactly the paper's "significantly larger
    amount of data across the nodes" penalty.
    """

    def __init__(self, spec: ClusterSpec, costs: CostModel,
                 env=None) -> None:
        self.spec = spec
        self.costs = costs
        self.env = env
        self.stats = NetworkStats()
        #: Fault injector hook; ``None`` in fault-free runs (the default),
        #: in which case every fault branch below is skipped entirely.
        self.faults = None
        #: Observability event bus; ``None`` (the default) skips message
        #: event emission entirely (set by ``EventBus.attach``).
        self.obs = None
        self._send_free: Dict[int, float] = {}
        self._recv_free: Dict[int, float] = {}

    def send(self, src: int, dst: int, nbytes: int,
             kind: str = MSG_TASK_SHIP) -> float:
        """Account one transfer and return its latency in cycles.

        Transfers are fragmented into MTU-sized packets, each counted as a
        message: Table III's counts therefore track data *volume*, as they
        do on the paper's MVAPICH2 platform.  Intra-place traffic is free
        and uncounted (Table III counts messages *across nodes* only).

        Under an attached fault injector, delivery is *reliable*: a
        dropped message costs an ack timeout plus a full retransmission
        (counted as fresh traffic), looping until one copy gets through.
        Messages to a dead place travel and vanish (fail-stop receivers
        send no NACKs); higher layers handle that case explicitly.
        """
        faults = self.faults
        if faults is None:
            return self._send_once(src, dst, nbytes, kind)
        total = self._send_once(src, dst, nbytes, kind)
        if src == dst or faults.is_dead(dst):
            return total
        while faults.drops(src, dst, kind):
            packets = max(1, -(-nbytes // self.costs.packet_bytes))
            faults.stats.note_drop(kind, packets)
            faults.stats.retransmits += 1
            total += self.costs.retransmit_timeout
            total += self._send_once(src, dst, nbytes, kind)
        return total

    def send_unreliable(self, src: int, dst: int, nbytes: int,
                        kind: str = MSG_TASK_SHIP) -> Tuple[float, bool]:
        """One transfer attempt with no transport-level recovery.

        Returns ``(latency, delivered)``.  Resilient protocol code (the
        schedulers' remote-steal path) uses this to observe losses and
        dead destinations itself — with its own timeout, retry, backoff
        and blacklist — instead of the transparent retransmission
        :meth:`send` applies.
        """
        latency = self._send_once(src, dst, nbytes, kind)
        faults = self.faults
        delivered = True
        if faults is not None and src != dst:
            if faults.is_dead(dst):
                delivered = False
            elif faults.drops(src, dst, kind):
                packets = max(1, -(-nbytes // self.costs.packet_bytes))
                faults.stats.note_drop(kind, packets)
                delivered = False
        return latency, delivered

    def _send_once(self, src: int, dst: int, nbytes: int,
                   kind: str) -> float:
        """Price and count exactly one transmission attempt."""
        if kind not in MESSAGE_KINDS:
            raise ConfigError(f"unknown message kind {kind!r}")
        if nbytes < 0:
            raise ConfigError(f"negative message size: {nbytes}")
        if src == dst:
            return 0.0
        hops = self.spec.hop_distance(src, dst)
        packets = max(1, -(-nbytes // self.costs.packet_bytes))
        self.stats.messages += packets
        self.stats.bytes += nbytes
        self.stats.by_kind[kind] += packets
        self.stats.by_pair[(src, dst)] += packets
        if self.env is None:
            return hops * self.costs.transfer_cycles(nbytes)
        # LogGP-style store-and-forward: bytes occupy the sender's TX side,
        # propagate (latency pipelines freely), then occupy the receiver's
        # RX side.  The two sides are booked independently, so one busy
        # receiver delays only its own arrivals — while a data-heavy
        # scheduler still queues honestly at ~1.25 GB/s per NIC side.
        occupancy = nbytes * self.costs.net_cycles_per_byte
        latency = hops * self.costs.net_latency
        if self.faults is not None:
            # Latency-spike windows stretch propagation, not bandwidth.
            latency *= self.faults.latency_factor(self.env.now)
        now = self.env.now
        tx_start = max(now, self._send_free.get(src, 0.0))
        tx_end = tx_start + occupancy
        self._send_free[src] = tx_end
        rx_start = max(tx_end + latency, self._recv_free.get(dst, 0.0))
        rx_end = rx_start + occupancy
        self._recv_free[dst] = rx_end
        total = rx_end - now
        if self.obs is not None:
            self.obs.emit("msg_send", src=src, dst=dst, kind=kind,
                          bytes=nbytes, packets=packets, latency=total)
        return total

    def round_trip(self, src: int, dst: int, request_bytes: int,
                   reply_bytes: int, kind_prefix: str = "steal") -> float:
        """Price a request/reply exchange (two messages)."""
        if kind_prefix == "steal":
            out = self.send(src, dst, request_bytes, MSG_STEAL_REQUEST)
            back = self.send(dst, src, reply_bytes, MSG_STEAL_REPLY)
        else:
            out = self.send(src, dst, request_bytes, MSG_REMOTE_REF)
            back = self.send(dst, src, reply_bytes, MSG_REMOTE_REF)
        return out + back

    def reset(self) -> None:
        """Clear counters and NIC state (between benchmark repetitions)."""
        self.stats = NetworkStats()
        self._send_free.clear()
        self._recv_free.clear()
