"""The cycle-level cost model for the simulated cluster.

All simulated durations in the library are expressed in *cycles* of one
worker's core.  The defaults below are calibrated against the paper's
platform (2 GHz Opteron nodes on 10 Gbit/s InfiniBand with MVAPICH2):

- ``cycles_per_ms = 2e6`` (2 GHz).
- A remote steal costs a request/response round trip plus deque locking on
  the victim — tens of microseconds, i.e. tens of thousands of cycles.
- An L1 miss costs a few tens of cycles; a remote (cross-node) data access
  costs microseconds.

The absolute values do not need to match the authors' hardware — the
reproduction targets the *shape* of the results — but the ordering
(local deque op << L1 miss << local steal << remote access << remote steal)
is what produces the paper's trade-off between locality and balance, so it
is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Simulation cost parameters, all in cycles unless noted."""

    #: Conversion factor used only for reporting (2 GHz core).
    cycles_per_ms: float = 2_000_000.0

    # -- deque and task bookkeeping ---------------------------------------
    #: Owner push/pop on a private (unsynchronized) deque.
    private_deque_op: float = 20.0
    #: Hold time of the shared deque lock for one push/pop.
    shared_deque_op: float = 200.0
    #: Creating and enqueueing a task (allocation, frame capture).
    spawn_overhead: float = 150.0
    #: Extra mapping cost DistWS pays per task to consult place status
    #: (Algorithm 1 lines 4-8). X10WS does not pay this.
    locality_mapping_overhead: float = 60.0
    #: Creating a closure from a stolen activity, serializing its captured
    #: state and annotating it for remote execution (Algorithm 1 lines
    #: 25-27).  Serialization dominates real X10 steal cost (~10 us).
    closure_create: float = 20_000.0

    # -- stealing ----------------------------------------------------------
    #: CPU cost of one failed poll of a co-located victim's deque.
    local_steal_attempt: float = 120.0
    #: CPU cost of a successful steal from a co-located worker.
    local_steal_success: float = 250.0
    #: Idle back-off between successive failed search rounds (doubles per
    #: consecutive failure up to :attr:`max_idle_backoff`).
    idle_backoff: float = 400.0
    #: Cap on the idle back-off (0.25 ms at 2 GHz).  Large enough that a
    #: starving cluster does not flood the interconnect with failed steal
    #: requests; work arriving at the local place wakes a parked worker
    #: immediately regardless of the back-off.
    max_idle_backoff: float = 500_000.0

    # -- interconnect --------------------------------------------------------
    #: One-way small-message latency between nodes (~2.5 us at 2 GHz).
    net_latency: float = 5_000.0
    #: Per-byte transfer cost (10 Gbit/s ~= 1.25 GB/s ~= 1.6 cycles/byte).
    net_cycles_per_byte: float = 1.6
    #: Fixed protocol overhead of a steal request processed at the victim
    #: (lock the shared deque remotely, pop, prepare the reply — ~5 us of
    #: software path on the victim side).
    remote_steal_service: float = 10_000.0

    # -- fault tolerance (only consulted when a fault injector is attached) --
    #: Thief-side timer on a remote steal request: if no reply arrives
    #: within this window the request is presumed lost (or the victim
    #: dead) and the thief retries or blacklists the victim.  Several
    #: times a healthy round trip (2 x net_latency + remote_steal_service).
    steal_timeout: float = 80_000.0
    #: Transport-level ack timeout before a dropped non-steal message is
    #: retransmitted (reliable delivery for task shipping / data traffic).
    retransmit_timeout: float = 50_000.0
    #: Base backoff between steal retries to the same victim (doubles per
    #: consecutive timeout).
    steal_retry_backoff: float = 20_000.0
    #: Initial span a victim spends on the decaying blacklist after its
    #: retries are exhausted (doubles per consecutive strike; expires on
    #: its own and resets after a successful steal).
    victim_blacklist_cycles: float = 400_000.0

    # -- memory hierarchy ------------------------------------------------------
    #: Penalty per cache *line* missed in L1 (hits in local memory).
    l1_miss_penalty: float = 40.0
    #: Penalty for touching a block whose only copy lives on another node
    #: (one fine-grained remote reference; also sends a message pair).
    remote_access_penalty: float = 12_000.0
    #: Cache line size used to weigh blocks.
    cache_line_bytes: int = 64
    #: L1 data cache capacity in lines (64 KiB / 64 B).
    l1_capacity_lines: int = 1024
    #: Interconnect MTU: transfers are fragmented into packets of this
    #: size, and Table III's message counts include every packet.
    packet_bytes: int = 4096

    # -- derived helpers -------------------------------------------------------
    def ms(self, cycles: float) -> float:
        """Convert cycles to milliseconds for reporting."""
        return cycles / self.cycles_per_ms

    def cycles(self, ms: float) -> float:
        """Convert milliseconds to cycles."""
        return ms * self.cycles_per_ms

    def transfer_cycles(self, nbytes: int) -> float:
        """Latency of moving ``nbytes`` across the interconnect."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size: {nbytes}")
        return self.net_latency + nbytes * self.net_cycles_per_byte

    def validate(self) -> None:
        """Check the ordering invariants the reproduction depends on."""
        if not (self.private_deque_op < self.shared_deque_op):
            raise ConfigError("private deque ops must be cheaper than shared")
        if not (self.l1_miss_penalty < self.remote_access_penalty):
            raise ConfigError("L1 miss must be cheaper than a remote access")
        if not (self.local_steal_success < self.net_latency):
            raise ConfigError("local steal must be cheaper than a network hop")
        for name in ("cycles_per_ms", "net_cycles_per_byte", "steal_timeout",
                     "retransmit_timeout", "steal_retry_backoff",
                     "victim_blacklist_cycles"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.l1_capacity_lines <= 0:
            raise ConfigError("l1_capacity_lines must be positive")
        if self.cache_line_bytes <= 0:
            raise ConfigError("cache_line_bytes must be positive")
        if self.packet_bytes <= 0:
            raise ConfigError("packet_bytes must be positive")

    def block_lines(self, nbytes: int) -> int:
        """Cache-line weight of an ``nbytes`` block (at least one line)."""
        return max(1, -(-int(nbytes) // self.cache_line_bytes))


#: Cost model used by all paper-reproduction experiments.
DEFAULT_COST_MODEL = CostModel()
