"""Simulated cluster substrate: topology, interconnect, caches, memory.

This package models the paper's experimental platform (16 nodes x 8 workers
on InfiniBand) at the level of detail the evaluation observes: cycle costs,
message counts, L1 miss rates, and data placement.
"""

from repro.cluster.cache import CacheStats, LruCache
from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.memory import DataBlock, MemoryManager, block_distribution
from repro.cluster.network import (
    MSG_DATA_BLOCK,
    MSG_REMOTE_REF,
    MSG_RESULT_COPYBACK,
    MSG_STEAL_REPLY,
    MSG_STEAL_REQUEST,
    MSG_TASK_SHIP,
    MSG_TERMINATION,
    Network,
    NetworkStats,
)
from repro.cluster.topology import ClusterSpec, paper_cluster, worker_sweep

__all__ = [
    "CacheStats",
    "ClusterSpec",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DataBlock",
    "LruCache",
    "MemoryManager",
    "MSG_DATA_BLOCK",
    "MSG_REMOTE_REF",
    "MSG_RESULT_COPYBACK",
    "MSG_STEAL_REPLY",
    "MSG_STEAL_REQUEST",
    "MSG_TASK_SHIP",
    "MSG_TERMINATION",
    "Network",
    "NetworkStats",
    "block_distribution",
    "paper_cluster",
    "worker_sweep",
]
