"""Cluster topology: places (nodes), workers, and inter-node distance.

The paper's platform is 16 nodes x 8 workers, fully connected over
InfiniBand.  The model also supports a ring topology because the paper notes
(§I, footnote 2) that victim-node selection matters more on non-fully
connected clusters; the ablation benchmarks exercise that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ConfigError

#: Supported interconnect shapes.
TOPOLOGIES = ("full", "ring")


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated cluster.

    Parameters mirror the paper's experimental setup (§VII): ``n_places``
    nodes each running ``workers_per_place`` worker threads
    (``X10_NTHREADS=8``), with ``max_threads`` as the dynamic-thread upper
    bound that defines *under-utilized* in Algorithm 1.
    """

    n_places: int = 16
    workers_per_place: int = 8
    #: Upper bound on threads per place (static + dynamic). A place below
    #: this bound counts as under-utilized for Algorithm 1 line 5.
    max_threads: int = 12
    topology: str = "full"

    def __post_init__(self) -> None:
        if self.n_places < 1:
            raise ConfigError(f"n_places must be >= 1, got {self.n_places}")
        if self.workers_per_place < 1:
            raise ConfigError(
                f"workers_per_place must be >= 1, got {self.workers_per_place}")
        if self.max_threads < self.workers_per_place:
            raise ConfigError(
                "max_threads must be >= workers_per_place "
                f"({self.max_threads} < {self.workers_per_place})")
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}")

    @property
    def total_workers(self) -> int:
        """Total worker threads in the cluster."""
        return self.n_places * self.workers_per_place

    def place_ids(self) -> range:
        """Iterable of place ids ``0..n_places-1``."""
        return range(self.n_places)

    def worker_ids(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(place_id, local_worker_index)`` pairs."""
        for p in self.place_ids():
            for w in range(self.workers_per_place):
                yield (p, w)

    def hop_distance(self, src: int, dst: int) -> int:
        """Number of network hops between two places."""
        self._check_place(src)
        self._check_place(dst)
        if src == dst:
            return 0
        if self.topology == "full":
            return 1
        # ring: shortest way around
        d = abs(src - dst)
        return min(d, self.n_places - d)

    def neighbours_by_distance(self, src: int) -> List[int]:
        """Other places ordered nearest-first (ties broken by id).

        This is the victim *order* a topology-aware stealer would use; the
        paper argues task selection matters more than this order on a fully
        connected cluster, where the order is arbitrary.

        The order is memoised per ``(spec, src)`` — the spec is frozen,
        so it can never change — because nearest-order stealers ask for
        it on every distributed steal round; re-sorting all places there
        put an ``O(P log P)`` step on the hot path.  A fresh list is
        returned each call so callers may mutate their copy.
        """
        self._check_place(src)
        return list(_neighbour_order(self, src))

    def _check_place(self, p: int) -> None:
        if not (0 <= p < self.n_places):
            raise ConfigError(f"place {p} out of range 0..{self.n_places - 1}")


@lru_cache(maxsize=None)
def _neighbour_order(spec: ClusterSpec, src: int) -> Tuple[int, ...]:
    """The sorted neighbour tuple, computed once per ``(spec, src)``."""
    others = sorted((p for p in spec.place_ids() if p != src),
                    key=lambda p: (spec.hop_distance(src, p), p))
    return tuple(others)


def paper_cluster(n_places: int = 16, workers_per_place: int = 8) -> ClusterSpec:
    """The paper's 16x8 = 128-worker blade-server configuration."""
    return ClusterSpec(n_places=n_places, workers_per_place=workers_per_place,
                       max_threads=workers_per_place + 4, topology="full")


def worker_sweep(total_workers: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
                 workers_per_place: int = 8) -> List[ClusterSpec]:
    """Cluster configurations matching Fig. 5's x-axis.

    The paper fixes ``X10_NTHREADS=8`` and varies the number of places, so
    worker counts <= 8 use a single place with fewer workers, and larger
    counts use ``total // 8`` places of 8 workers each.
    """
    specs: List[ClusterSpec] = []
    for total in total_workers:
        if total <= 0:
            raise ConfigError(f"worker count must be positive, got {total}")
        if total <= workers_per_place:
            specs.append(ClusterSpec(
                n_places=1, workers_per_place=total,
                max_threads=total + 4, topology="full"))
        else:
            if total % workers_per_place:
                raise ConfigError(
                    f"worker count {total} not a multiple of {workers_per_place}")
            specs.append(ClusterSpec(
                n_places=total // workers_per_place,
                workers_per_place=workers_per_place,
                max_threads=workers_per_place + 4, topology="full"))
    return specs
