"""Per-worker L1 data cache model (weighted LRU over block ids).

Table II of the paper reports L1 D-cache miss *rates* per scheduler.  The
mechanism behind those numbers is working-set displacement: a randomly
stolen task drags a cold working set into the thief's cache, evicting the
resident set ("in the worst case, may require a transfer of the whole
content of the victim's cache", §VIII.3).

The model is an LRU set of data blocks where each block *weighs* its size
in cache lines, and hit/miss statistics count lines, so that migrating a
large block both displaces proportionally more resident data and costs
proportionally more misses — the paper's cache-pollution effect at the
granularity the runtime tracks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss counters (in cache lines) for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total lines looked up."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses, 0.0 when no accesses happened."""
        return self.misses / self.accesses if self.accesses else 0.0


class LruCache:
    """A fixed-capacity (in lines) LRU set of weighted data blocks."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()  # id -> weight
        self._weight = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        """Number of distinct blocks resident (not lines)."""
        return len(self._entries)

    @property
    def used_lines(self) -> int:
        """Total lines currently occupied."""
        return self._weight

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    def access(self, block_id: int, weight: int = 1) -> bool:
        """Touch a block of ``weight`` lines; ``True`` on hit.

        A miss inserts the block, evicting least-recently-used blocks until
        it fits.  A block larger than the whole cache is clamped to the
        capacity (it flushes everything and occupies the cache).
        """
        weight = self._clamp(weight)
        if block_id in self._entries:
            self._entries.move_to_end(block_id)
            self.stats.hits += weight
            return True
        self.stats.misses += weight
        self._insert(block_id, weight)
        return False

    def warm(self, block_id: int, weight: int = 1) -> None:
        """Insert a block without counting an access (bulk copy-in)."""
        weight = self._clamp(weight)
        if block_id in self._entries:
            self._entries.move_to_end(block_id)
            return
        self._insert(block_id, weight)

    def invalidate(self, block_id: int) -> None:
        """Drop a block if present (replica discarded / remote write)."""
        w = self._entries.pop(block_id, None)
        if w is not None:
            self._weight -= w

    def clear(self) -> None:
        """Empty the cache, keeping statistics."""
        self._entries.clear()
        self._weight = 0

    def resident_blocks(self) -> list[int]:
        """Blocks currently cached, LRU-first."""
        return list(self._entries.keys())

    # -- internals ------------------------------------------------------------
    def _clamp(self, weight: int) -> int:
        if weight < 1:
            raise ConfigError(f"block weight must be >= 1, got {weight}")
        return min(weight, self.capacity)

    def _insert(self, block_id: int, weight: int) -> None:
        while self._weight + weight > self.capacity and self._entries:
            _, w = self._entries.popitem(last=False)
            self._weight -= w
        self._entries[block_id] = weight
        self._weight += weight
