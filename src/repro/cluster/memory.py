"""Distributed memory model: data blocks, placement, and access pricing.

The PGAS memory of the simulated cluster is a set of *data blocks*.  Each
block has a home place and zero or more replicas created by bulk migration
(what happens when a stolen task "encapsulates the data necessary for its
computation", §II condition d).  A task declares which blocks it reads and
writes; the runtime prices each touch through :class:`MemoryManager`:

- copy at the touching place  -> L1 lookup (hit: free, miss: miss penalty);
- no local copy               -> a fine-grained remote reference: a message
  pair to the nearest replica plus the remote-access penalty (§I overhead c).

This is the entire mechanism behind Tables II and III: selective stealing
moves blocks once in bulk; non-selective stealing leaves task data remote
and pays per-touch references, inflating both message counts and (via cache
churn) miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.cache import LruCache
from repro.cluster.costmodel import CostModel
from repro.cluster.network import (
    MSG_DATA_BLOCK,
    MSG_REMOTE_REF,
    MSG_RESULT_COPYBACK,
    Network,
)
from repro.errors import PlacementError


@dataclass(frozen=True)
class DataBlock:
    """An immutable handle to one unit of placed data."""

    block_id: int
    home_place: int
    nbytes: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise PlacementError(f"negative block size: {self.nbytes}")


class MemoryManager:
    """Tracks block placement/replicas and prices every access."""

    def __init__(self, network: Network, costs: CostModel) -> None:
        self.network = network
        self.costs = costs
        self._next_id = 0
        self._blocks: Dict[int, DataBlock] = {}
        self._replicas: Dict[int, Set[int]] = {}
        #: Count of fine-grained remote references (paper overhead (c)).
        self.remote_references = 0
        #: Count of bulk block migrations.
        self.migrations = 0

    # -- allocation ----------------------------------------------------------
    def allocate(self, home_place: int, nbytes: int, label: str = "") -> DataBlock:
        """Create a block homed at ``home_place``."""
        self.network.spec._check_place(home_place)
        block = DataBlock(self._next_id, home_place, int(nbytes), label)
        self._next_id += 1
        self._blocks[block.block_id] = block
        self._replicas[block.block_id] = {home_place}
        return block

    def block(self, block_id: int) -> DataBlock:
        """Look up a block by id."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise PlacementError(f"unknown block id {block_id}") from None

    def replicas(self, block: DataBlock) -> Set[int]:
        """Places currently holding a copy of ``block``."""
        return set(self._replicas[block.block_id])

    def has_copy(self, block: DataBlock, place: int) -> bool:
        """Whether ``place`` holds a copy of ``block``."""
        return place in self._replicas[block.block_id]

    # -- access pricing -------------------------------------------------------
    def access(self, place: int, cache: Optional[LruCache],
               block: DataBlock, write: bool = False) -> float:
        """Price one read (or write) of ``block`` by a worker at ``place``.

        With a local replica this is an L1 lookup.  Without one it is a
        *remote reference* — the X10 ``at (p)`` data access a stolen,
        non-encapsulating task is left with (§IX): the data streams over on
        demand (request + data reply, fragmented and counted), written data
        streams back, and the transient lands in the cache just long enough
        to displace resident lines (counted as misses: the paper's
        cache-pollution effect) without staying resident.
        """
        lines = self.costs.block_lines(block.nbytes)
        if place in self._replicas[block.block_id]:
            if cache is None:
                return 0.0
            hit = cache.access(block.block_id, lines)
            return 0.0 if hit else lines * self.costs.l1_miss_penalty
        self.remote_references += 1
        target = self._nearest_replica(block, place)
        latency = self.network.send(place, target, 64, MSG_REMOTE_REF)
        latency += self.network.send(target, place, block.nbytes,
                                     MSG_REMOTE_REF)
        if write:
            latency += self.network.send(place, target, block.nbytes,
                                         MSG_RESULT_COPYBACK)
        if cache is not None:
            transient = -(block.block_id + 1)
            cache.access(transient, lines)
            cache.invalidate(transient)
        return latency + self.costs.remote_access_penalty

    def touch(self, place: int, cache: Optional[LruCache],
              block: DataBlock) -> float:
        """Read access (see :meth:`access`)."""
        return self.access(place, cache, block, write=False)

    def migrate(self, block: DataBlock, dst_place: int,
                warm_cache: Optional[LruCache] = None) -> float:
        """Bulk-copy ``block`` to ``dst_place``, creating a replica there.

        Used when a locality-flexible task that encapsulates its data is
        stolen: the copy is paid once, after which all touches at the thief
        are local (§IV-A property ii/iii).
        """
        if dst_place in self._replicas[block.block_id]:
            return 0.0
        src = self._nearest_replica(block, dst_place)
        latency = self.network.send(src, dst_place, block.nbytes, MSG_DATA_BLOCK)
        self._replicas[block.block_id].add(dst_place)
        self.migrations += 1
        if warm_cache is not None:
            # The copy lands in the thief's cache, displacing proportionally
            # many resident lines — the paper's cache-pollution effect.
            warm_cache.warm(block.block_id, self.costs.block_lines(block.nbytes))
        return latency

    def drop_replica(self, block: DataBlock, place: int) -> None:
        """Discard ``place``'s replica (never the home copy).

        Used after a *non-encapsulating* task executed remotely: the data
        it dragged over was a one-shot copy, not a persistent replica.
        """
        if place != block.home_place:
            self._replicas[block.block_id].discard(place)

    def copy_back(self, block: DataBlock, src_place: int) -> float:
        """Ship ``block``'s contents from ``src_place`` back to its home.

        Models the Turing-ring inner-task pathology (§IV-B): stealing a
        population-update task forces the updated population to be copied
        back to the victim.
        """
        if src_place == block.home_place:
            return 0.0
        return self.network.send(
            src_place, block.home_place, block.nbytes, MSG_RESULT_COPYBACK)

    def invalidate_replicas(self, block: DataBlock) -> None:
        """Drop all replicas except the home copy (block was mutated at home)."""
        self._replicas[block.block_id] = {block.home_place}

    # -- internals ------------------------------------------------------------
    def _nearest_replica(self, block: DataBlock, place: int) -> int:
        spec = self.network.spec
        holders = self._replicas[block.block_id]
        return min(holders, key=lambda p: (spec.hop_distance(place, p), p))


def block_distribution(n_items: int, n_places: int) -> List[range]:
    """Split ``range(n_items)`` into ``n_places`` contiguous chunks.

    The X10 ``Dist.makeBlock`` distribution: earlier places get the larger
    remainder chunks, every item is covered exactly once.
    """
    if n_places <= 0:
        raise PlacementError(f"n_places must be positive, got {n_places}")
    if n_items < 0:
        raise PlacementError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_places)
    chunks: List[range] = []
    start = 0
    for p in range(n_places):
        size = base + (1 if p < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks
