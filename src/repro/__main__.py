"""Command-line interface: ``python -m repro``.

Subcommands:

- ``run`` — one (application, scheduler, cluster) simulation with a
  metrics summary;
- ``trace`` — record a run's execution trace; print critical path +
  timeline;
- ``profile`` — run with the observability bus attached: metric
  histograms, optional Chrome trace / JSONL event stream / snapshot;
- ``diff-stats`` — compare two saved snapshots, optionally failing on
  regression;
- ``reproduce`` — regenerate paper artifacts (tables/figures) by name;
- ``enqueue`` — seed a durable experiment store with a grid of cells;
- ``workers`` — drain a store: claim cells under time-bounded leases,
  heartbeat while simulating, commit results transactionally (any
  number of processes on the store's host; crash-resumable);
- ``query`` — inspect a store's rows and longitudinal results
  (``--rollup`` merges shipped telemetry into fleet-wide histograms;
  ``--quarantined`` prints poisoned cells with their tracebacks);
- ``top`` — live dashboard over a store being drained (read-only);
- ``report`` — static HTML/SVG sweep report + merged Chrome trace;
- ``theory`` — sweep the steal latency λ and validate measured
  makespans against the ``W/p + c·λ·log₂W`` work-stealing bound
  (SVG figure + JSON verdict);
- ``serve`` — run the live multi-process serving tier (one OS process
  per place, Algorithm 1 as the load balancer) behind a TCP frontend;
- ``loadgen`` — replay a seeded open-loop traffic trace against the
  serving tier (embedded head-to-head benchmark across balancers, or
  ``--connect`` to a running ``repro serve``) with a JSON + SVG
  latency report;
- ``list`` — what's available.
"""

from __future__ import annotations

import argparse
import sys

from repro import SCHEDULERS, ClusterSpec, SimRuntime, make_scheduler
from repro.apps import APP_REGISTRY, make_app
from repro.harness import EXPERIMENTS
from repro.harness.tables import render_table


def _cmd_list(_args) -> int:
    from repro.tune import SCHEDULER_KNOBS

    print("applications:", ", ".join(sorted(APP_REGISTRY)))
    print("schedulers:  ", ", ".join(sorted(SCHEDULERS)))
    print("artifacts:   ", ", ".join(EXPERIMENTS))
    print("\nknobs (set with --sched-arg key=value, search with "
          "`repro tune`):")
    for sched in sorted(SCHEDULER_KNOBS):
        rows = [[k.name, k.kind, k.default_label(), k.doc]
                for k in SCHEDULER_KNOBS[sched]]
        print()
        print(render_table(["knob", "type", "default", "description"],
                           rows, title=sched))
    return 0


def _canon_scheduler(name: str) -> str:
    """Resolve a scheduler name case-insensitively (CLI convenience)."""
    for known in SCHEDULERS:
        if known.lower() == name.lower():
            return known
    from repro.errors import ConfigError
    raise ConfigError(
        f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}")


def _resolve_fault_plan(args, spec):
    """Parse ``--faults`` and resolve fractional times against a horizon.

    Fractional fault times (``crash:p2@0.4``) are relative to the
    fault-free makespan of the same (app, scheduler, cluster, seeds)
    configuration, so a calibration run is performed first when needed.
    The calibration goes through the harness, so with ``--cache-dir`` a
    repeated chaos experiment reuses the cached fault-free run instead
    of re-simulating it.
    """
    from repro.faults import FaultPlan
    from repro.harness import run_once
    plan = FaultPlan.parse(args.faults)
    if plan.needs_horizon:
        cal = run_once(args.app, args.scheduler, spec,
                       app_seed=args.seed, sched_seed=args.sched_seed,
                       scale=args.scale, validate=False)
        print(f"[calibration: fault-free makespan "
              f"{cal.stats.makespan_cycles:.0f} cycles]")
        plan = plan.resolved(cal.stats.makespan_cycles)
    return plan


def _fault_rows(faults) -> list:
    """Flatten a FaultStats snapshot into table rows."""
    rows = []
    for key, value in faults.snapshot().items():
        if isinstance(value, dict):
            for k in sorted(value):
                rows.append([f"{key}[{k}]", value[k]])
        elif isinstance(value, list):
            rows.append([key, ", ".join(str(v) for v in value) or "-"])
        else:
            rows.append([key, value])
    return rows


def _cmd_run(args) -> int:
    from repro.harness import execution
    from repro.tune import make_controller, parse_sched_args

    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    sched_kwargs = parse_sched_args(args.scheduler,
                                    args.sched_arg) or {}
    if args.controller:
        sched_kwargs["controller"] = make_controller(args.controller)
    with execution(cache_dir=args.cache_dir):
        plan = _resolve_fault_plan(args, spec) if args.faults else None
    app = make_app(args.app, scale=args.scale, seed=args.seed)
    sched = make_scheduler(args.scheduler, **sched_kwargs)
    rt = SimRuntime(spec, sched, seed=args.sched_seed)
    if plan is not None:
        from repro.faults import FaultInjector
        FaultInjector(plan).attach(rt)
    stats = app.run(rt, validate=not args.no_validate)
    rows = [[k, v] for k, v in stats.summary().items()]
    print(render_table(["metric", "value"], rows,
                       title=f"{args.app} under {args.scheduler} on "
                             f"{spec.n_places}x{spec.workers_per_place}"))
    if stats.faults is not None:
        print()
        print(render_table(["fault metric", "value"],
                           _fault_rows(stats.faults),
                           title="fault injection"))
    if args.controller:
        import json
        print()
        snap = sched.controller.snapshot()
        print(render_table(
            ["controller state", "value"],
            [[k, json.dumps(snap[k])] for k in sorted(snap)],
            title=f"online controller ({args.controller})"))
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.harness import bench

    # The full run also covers the quick cells so a committed report can
    # gate CI's --quick smoke run against the same baseline file.
    cells = bench.QUICK_GRID if args.quick \
        else bench.DEFAULT_GRID + bench.QUICK_GRID
    if args.profile:
        # Profile-only mode: instrumented walls are meaningless, so no
        # timing report is produced and no baseline gate applies.
        for cell in cells:
            print(bench.profile_cell(cell, top_n=args.profile_top))
        return 0
    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else 3)
    report = bench.run_grid(cells, repeats=repeats)
    print(bench.render(report))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(bench.to_json(report))
        print(f"\n[report written to {args.out}]")
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        ok, lines = bench.compare(baseline, report,
                                  max_regression_pct=args.max_regression)
        print("\nbaseline comparison:")
        print("\n".join(lines))
        if not ok:
            return 1
    return 0


def _cmd_tune(args) -> int:
    from repro.errors import ConfigError
    from repro.harness import execution
    from repro.tune import (
        GridSearch,
        RandomSearch,
        SuccessiveHalving,
        TuneCell,
        tune,
    )

    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    apps = args.app or ["uts"]
    schedulers = [_canon_scheduler(s)
                  for s in (args.scheduler or ["DistWS"])]
    seeds = tuple(range(1, args.seeds + 1))
    cells = [TuneCell(app=app, scheduler=sched, spec=spec,
                      scale=args.scale, app_seed=args.seed,
                      sched_seeds=seeds)
             for app in apps for sched in schedulers]
    if args.engine == "grid":
        engine = GridSearch(budget=args.budget)
    elif args.engine == "random":
        if args.budget is None:
            raise ConfigError("the random engine needs --budget")
        engine = RandomSearch(budget=args.budget, seed=args.search_seed)
    else:
        if args.budget is None:
            raise ConfigError("the asha engine needs --budget")
        engine = SuccessiveHalving(budget=args.budget,
                                   seed=args.search_seed, eta=args.eta)
    with execution(parallel=args.parallel, cache_dir=args.cache_dir,
                   store_path=args.store) as ctx:
        report = tune(cells, engine, knob_names=args.knob or None)
        print(report.rendered(top=args.top))
        if args.cache_dir:
            print(f"\n[{ctx.simulations} simulations, "
                  f"{ctx.cache.hits} cache hits, "
                  f"{ctx.cache.stores} stored in {args.cache_dir}]")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"[report written to {args.json}]")
    return 0


def _cmd_theory(args) -> int:
    import os

    from repro.analysis.theory import (
        LAMBDA_GRID_FULL,
        LAMBDA_GRID_QUICK,
        run_theory_sweep,
    )
    from repro.harness import execution

    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    apps = args.app or ["uts"]
    schedulers = [_canon_scheduler(s)
                  for s in (args.scheduler or ["RandomWS", "DistWS"])]
    if args.lambdas:
        lambdas = tuple(args.lambdas)
    else:
        lambdas = LAMBDA_GRID_QUICK if args.quick else LAMBDA_GRID_FULL
    seeds = tuple(range(1, args.seeds + 1))
    with execution(parallel=args.parallel, cache_dir=args.cache_dir,
                   store_path=args.store) as ctx:
        report = run_theory_sweep(
            apps=apps, schedulers=schedulers, spec=spec,
            lambdas=lambdas, sched_seeds=seeds, scale=args.scale,
            app_seed=args.seed)
        print(report.rendered())
        if args.cache_dir:
            print(f"\n[{ctx.simulations} simulations, "
                  f"{ctx.cache.hits} cache hits, "
                  f"{ctx.cache.stores} stored in {args.cache_dir}]")
    os.makedirs(args.out, exist_ok=True)
    verdict_path = os.path.join(args.out, "theory_verdict.json")
    with open(verdict_path, "w") as fh:
        fh.write(report.to_json())
        fh.write("\n")
    written = [verdict_path]
    for app in report.apps:
        fig_path = os.path.join(args.out, f"theory_{app}.svg")
        with open(fig_path, "w") as fh:
            fh.write(report.figure(app))
        written.append(fig_path)
    print("\n[written: " + ", ".join(written) + "]")
    if not report.verdict()["lower_bound_holds"]:
        print("error: a measured makespan beat the W/p lower bound "
              "(simulator physics bug)", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro.analysis import (
        TraceRecorder,
        critical_path,
        place_timeline,
        steal_flow,
        trace_to_json,
    )
    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    rt = SimRuntime(spec, make_scheduler(args.scheduler),
                    seed=args.sched_seed)
    recorder = TraceRecorder(rt)
    app = make_app(args.app, scale=args.scale, seed=args.seed)
    stats = app.run(rt)
    trace = recorder.finalize()
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(trace_to_json(trace, indent=1))
        print(f"trace written to {args.json}")
    print(critical_path(trace).describe())
    print()
    print(place_timeline(trace, width=64,
                         title=f"{args.app} under {args.scheduler}"))
    print()
    print(steal_flow(trace))
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.obs import ChromeTraceSink, EventBus, JsonlSink, MetricsRegistry

    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    rt = SimRuntime(spec, make_scheduler(args.scheduler),
                    seed=args.sched_seed)
    bus = EventBus(sample_interval=args.sample_interval)
    metrics = bus.subscribe(MetricsRegistry())
    if args.chrome_trace:
        bus.subscribe(ChromeTraceSink(args.chrome_trace))
    if args.events:
        bus.subscribe(JsonlSink(path=args.events))
    bus.attach(rt)
    app = make_app(args.app, scale=args.scale, seed=args.seed)
    stats = app.run(rt)
    rows = [[k, v] for k, v in stats.summary().items()]
    print(render_table(["metric", "value"], rows,
                       title=f"{args.app} under {args.scheduler} on "
                             f"{spec.n_places}x{spec.workers_per_place}"))
    print()
    print(render_table(["histogram", "count", "mean", "p50", "p90", "max"],
                       metrics.summary_rows(), title="metric histograms"))
    counts = stats.snapshot()["obs"]["events"]
    print()
    print(render_table(["event", "count"],
                       [[k, counts[k]] for k in sorted(counts)],
                       title="event counts"))
    if args.chrome_trace:
        print(f"\n[chrome trace written to {args.chrome_trace} — open in "
              "https://ui.perfetto.dev]")
    if args.events:
        print(f"[event stream written to {args.events}]")
    if args.snapshot:
        with open(args.snapshot, "w") as fh:
            fh.write(json.dumps(stats.snapshot(), sort_keys=True, indent=1))
        print(f"[snapshot written to {args.snapshot}]")
    return 0


def _cmd_diff_stats(args) -> int:
    import json

    from repro.obs import diff_snapshots, max_regression_pct

    with open(args.baseline) as fh:
        base = json.load(fh)
    with open(args.candidate) as fh:
        cand = json.load(fh)
    rows = diff_snapshots(base, cand)
    if not rows:
        print("no differences")
        return 0
    table = [[r.key, r.base, r.cand,
              "-" if r.delta is None else f"{r.delta:+g}",
              "-" if r.pct is None else f"{r.pct:+.2f}%"]
             for r in rows]
    print(render_table(["key", "baseline", "candidate", "delta", "pct"],
                       table,
                       title=f"{args.baseline} vs {args.candidate}"))
    if args.fail_over is not None:
        worst = max_regression_pct(rows)
        if worst > args.fail_over:
            print(f"\nFAIL: worst regression {worst:+.2f}% exceeds "
                  f"--fail-over {args.fail_over:g}%", file=sys.stderr)
            return 1
        print(f"\nOK: worst regression {worst:+.2f}% within "
              f"{args.fail_over:g}%")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.harness import execution

    names = args.artifacts or list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown artifact {name!r}; known: "
                  f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
            return 2
    with execution(parallel=args.parallel, cache_dir=args.cache_dir,
                   store_path=args.store) as ctx:
        code = _reproduce_artifacts(args, names)
        if args.cache_dir:
            print(f"\n[{ctx.simulations} simulations, "
                  f"{ctx.cache.hits} cache hits, "
                  f"{ctx.cache.stores} stored in {args.cache_dir}]")
        if args.store:
            counts = ctx.store.counts()
            print(f"\n[store {args.store}: {ctx.simulations} cells "
                  f"simulated here, {counts['done']} done total]")
    return code


def _enqueue_grid(args):
    """Expand the enqueue/workers grid options into RunSpecs."""
    from repro.harness.parallel import CellRequest
    from repro.tune import parse_sched_args_any

    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers_per_place,
                       max_threads=args.workers_per_place + 4)
    sched_kwargs = parse_sched_args_any(args.sched_arg)
    apps = args.app or ["uts", "quicksort", "dmg"]
    schedulers = [_canon_scheduler(s)
                  for s in (args.scheduler or ["DistWS", "X10WS",
                                               "RandomWS"])]
    seeds = tuple(range(1, args.seeds + 1))
    specs = []
    for app in apps:
        for sched in schedulers:
            request = CellRequest.build(
                app, sched, spec, sched_seeds=seeds,
                app_seed=args.app_seed, scale=args.scale,
                sched_kwargs=sched_kwargs)
            specs.extend(request.to_specs())
    return specs


def _store_counts_rows(counts) -> list:
    return [[status, counts[status]] for status in
            ("pending", "leased", "done", "failed")]


def _cmd_enqueue(args) -> int:
    from repro.harness.db import ExperimentStore

    specs = _enqueue_grid(args)
    with ExperimentStore(args.store) as store:
        added = store.add_specs(specs)
        counts = store.counts()
    print(f"enqueued {added} new cell(s) ({len(specs) - added} already "
          f"present) into {args.store}")
    print(render_table(["status", "cells"], _store_counts_rows(counts),
                       title="store state"))
    print("\ndrain with: repro workers --store "
          f"{args.store} --workers N  (any process on this host)")
    return 0


def _cmd_workers(args) -> int:
    import multiprocessing

    from repro.harness.db import (
        ExperimentStore,
        drain,
        graceful_signals,
        run_worker,
    )
    from repro.obs.fleet import FleetTelemetry

    bus = None
    if args.events:
        from repro.obs import EventBus, JsonlSink
        bus = EventBus()
        bus.subscribe(JsonlSink(path=args.events))
        bus.attach_clock()
    fleet = FleetTelemetry(enabled=not args.no_telemetry,
                           sample_interval=args.sample_interval,
                           trace_dir=args.trace_dir)
    store = ExperimentStore(args.store, max_attempts=args.max_attempts,
                            bus=bus)
    helpers = []
    mp = multiprocessing.get_context()
    for _ in range(args.workers - 1):
        proc = mp.Process(
            target=run_worker, args=(args.store,),
            kwargs={"heartbeat_seconds": args.heartbeat,
                    "lease_seconds": args.lease,
                    "poll_seconds": args.poll,
                    "max_attempts": args.max_attempts,
                    "fleet": fleet})
        proc.start()
        helpers.append(proc)
    completed = 0
    code = 0
    try:
        try:
            with graceful_signals():
                completed = drain(store,
                                  heartbeat_seconds=args.heartbeat,
                                  lease_seconds=args.lease,
                                  poll_seconds=args.poll,
                                  fleet=fleet)
        except KeyboardInterrupt:
            print("\ninterrupted: lease released; stopping workers "
                  "(re-run `repro workers` to resume the sweep)",
                  file=sys.stderr)
            for proc in helpers:
                proc.terminate()  # SIGTERM: children release leases too
            code = 130
        except BaseException:
            # Any coordinator error (schema mismatch, StoreError, ...):
            # don't let the finally's join hide it behind helpers that
            # would otherwise drain the whole store first.
            for proc in helpers:
                proc.terminate()
            raise
    finally:
        for proc in helpers:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join()
        counts = store.counts()
        failed = store.rows(status="failed") if counts["failed"] else []
        if bus is not None:
            bus.close()
        store.close()
    print(render_table(["status", "cells"], _store_counts_rows(counts),
                       title=f"store {args.store} "
                            f"({completed} completed by this process)"))
    if failed:
        print("\nquarantined cells (exhausted max_attempts):")
        for row in failed:
            last = (row.error or "").strip().splitlines()
            print(f"  {row.key[:12]} {row.payload.get('app')} x "
                  f"{row.payload.get('scheduler')}: "
                  f"{last[-1] if last else '?'}")
        code = code or 1
    if args.events:
        print(f"[store events written to {args.events}]")
    return code


def _print_quarantined(rows) -> None:
    """Print quarantined (permanently failed) rows with tracebacks."""
    if not rows:
        print("no quarantined cells")
        return
    for row in rows:
        p = row.payload
        print(f"=== {row.key} — {p.get('app')} x {p.get('scheduler')} "
              f"(seed {p.get('sched_seed')}, {row.attempts} attempt(s), "
              f"last owner {row.lease_owner or '?'})")
        print((row.error or "<no traceback captured>").rstrip())
        print()


def _print_rollup(store, keys) -> None:
    """Merge the matching cells' telemetry into fleet-wide histograms."""
    from repro.obs.fleet import rollup_histograms, rollup_rows

    tel = store.telemetry_rows(keys=keys)
    rollup = rollup_histograms(r.data for r in tel)
    rows = rollup_rows(rollup)
    print(render_table(
        ["histogram", "count", "mean", "min", "p50", "p90", "p99",
         "max"], rows,
        title=f"rollup over {len(tel)} telemetry row(s)"))
    if not tel:
        print("\n(no telemetry shipped for the matching cells — drain "
              "with `repro workers` and telemetry enabled)")


def _cmd_query(args) -> int:
    import json

    from repro.harness.db import ExperimentStore

    with ExperimentStore(args.store) as store:
        if args.quarantined:
            rows = store.rows(status="failed")
            _print_quarantined(rows)
            return 0
        rows = store.rows(status=args.status)
        if args.app:
            rows = [r for r in rows if r.payload.get("app") == args.app]
        if args.scheduler:
            want = _canon_scheduler(args.scheduler)
            rows = [r for r in rows
                    if r.payload.get("scheduler") == want]
        if args.rollup:
            _print_rollup(store, [r.key for r in rows])
            return 0
        table = []
        payload_rows = []
        for row in rows[:args.limit]:
            p = row.payload
            makespan_ms = speedup = None
            if row.status == "done":
                result = store.get_result(row.key)
                if result is not None:
                    makespan_ms = round(result.makespan_ms, 3)
                    speedup = round(result.speedup, 2)
            table.append([
                row.key[:12], p.get("app"), p.get("scheduler"),
                p.get("scale"), p.get("sched_seed"), row.status,
                row.attempts,
                "-" if makespan_ms is None else makespan_ms,
                "-" if speedup is None else speedup])
            payload_rows.append({
                "key": row.key, "payload": p, "status": row.status,
                "attempts": row.attempts, "error": row.error,
                "makespan_ms": makespan_ms, "speedup": speedup})
        counts = store.counts()
    shown = len(table)
    print(render_table(
        ["key", "app", "scheduler", "scale", "seed", "status",
         "attempts", "makespan (ms)", "speedup"], table,
        title=f"{args.store}: {shown}/{len(rows)} row(s) shown"))
    print(render_table(["status", "cells"], _store_counts_rows(counts),
                       title="totals"))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload_rows, fh, sort_keys=True, indent=1)
        print(f"[written {args.json}]")
    return 0


def _cmd_top(args) -> int:
    import time

    from repro.obs.fleet import FleetView, render_top

    frames = 0
    with FleetView(args.store) as view:
        while True:
            frame = render_top(view.snapshot(
                failures_limit=args.failures,
                recent_window=args.window))
            if frames and args.clear:
                # ANSI clear + home keeps the dashboard in place.
                print("\x1b[2J\x1b[H", end="")
            print(frame)
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(args.interval)


def _cmd_report(args) -> int:
    from repro.analysis.fleet_report import write_report
    from repro.harness.db import ExperimentStore

    with ExperimentStore(args.store) as store:
        written = write_report(store, args.out, bench_path=args.bench,
                               title=f"sweep report — {args.store}")
    for path in written:
        print(f"[written {path}]")
    print(f"open {args.out}/report.html in a browser; the merged trace "
          "(if any) loads in https://ui.perfetto.dev")
    return 0


def _reproduce_artifacts(args, names) -> int:
    from repro.tune import parse_sched_args_any

    sched_kwargs = parse_sched_args_any(getattr(args, "sched_arg", None))
    for name in names:
        print(f"\n# {name}\n")
        out = EXPERIMENTS[name](scale=args.scale,
                                sched_kwargs=sched_kwargs)
        print(out.rendered)
        if args.json_dir:
            import os
            from repro.analysis import experiment_to_json
            os.makedirs(args.json_dir, exist_ok=True)
            path = os.path.join(args.json_dir, f"{name}.json")
            with open(path, "w") as fh:
                fh.write(experiment_to_json(out))
            print(f"[written {path}]")
        if args.svg_dir and out.extra.get("series"):
            import os
            os.makedirs(args.svg_dir, exist_ok=True)
            for path, svg in _render_svgs(name, out):
                full = os.path.join(args.svg_dir, path)
                with open(full, "w") as fh:
                    fh.write(svg)
                print(f"[written {full}]")
    return 0


def _serve_traffic(args):
    """Build a TrafficSpec from the loadgen CLI flags."""
    from repro.serve import TrafficSpec

    return TrafficSpec(
        pattern=args.pattern, rate=args.rate, duration_s=args.duration,
        n_places=args.places, seed=args.seed,
        sticky_fraction=args.sticky_fraction,
        service_ms=args.service_ms, service_jitter=args.service_jitter,
        cpu_ms=args.cpu_ms, skew=args.skew, hot_place=args.hot_place)


def _serve_fault_schedule(args, duration_s: float):
    """Parse ``--faults`` into (kill points, sensitive policy)."""
    from repro.faults import FaultPlan
    from repro.serve import crash_schedule

    policy_name = getattr(args, "policy", "fail")
    if not args.faults:
        from repro.faults.plan import SensitivePolicy
        return None, [], SensitivePolicy(policy_name)
    plan = FaultPlan.parse(args.faults)
    return plan, crash_schedule(plan, duration_s), plan.sensitive_policy


def _write_serve_report(args, report) -> None:
    from repro.serve.recorder import render, report_svg, to_json

    print(render(report))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(to_json(report))
        print(f"\n[report written to {args.out}]")
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(report_svg(report))
        print(f"[latency figure written to {args.svg}]")


def _cmd_serve(args) -> int:
    import asyncio

    from repro.errors import ConfigError
    from repro.serve import ServeService, run_frontend

    if args.faults:
        from repro.faults import FaultPlan
        if FaultPlan.parse(args.faults).needs_horizon:
            raise ConfigError(
                "repro serve has no trace horizon: give crash times in "
                "absolute seconds > 1 (e.g. crash:p1@5)")
    _, kills, policy = _serve_fault_schedule(args, 1.0)

    async def _serve() -> None:
        service = ServeService(
            n_places=args.places, workers_per_place=args.workers,
            balancer=args.balancer, policy=policy, seed=args.seed,
            shared_cap=args.shared_cap, private_cap=args.private_cap,
            cold_factor=args.cold_factor)
        async with service:
            server = await run_frontend(service, args.host, args.port)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            for at, place in kills:
                loop.call_later(at, service.kill_place, place)
            print(f"serving {args.places} place(s) x {args.workers} "
                  f"worker(s) [{args.balancer}] on {args.host}:{port} — "
                  "Ctrl-C to stop")
            try:
                await asyncio.Event().wait()
            finally:
                server.close()
                await server.wait_closed()

    asyncio.run(_serve())
    return 0


def _cmd_loadgen(args) -> int:
    import time

    from repro.serve.recorder import build_report

    traffic = _serve_traffic(args)
    if args.connect:
        import asyncio

        from repro.errors import ConfigError
        from repro.serve import drive_remote

        host, _, port_text = args.connect.rpartition(":")
        if not port_text.isdigit():
            raise ConfigError(
                f"--connect expects HOST:PORT, got {args.connect!r}")
        wall_t0 = time.perf_counter()
        recorder, snapshot, traffic = asyncio.run(
            drive_remote(host or "127.0.0.1", int(port_text), traffic))
        wall = time.perf_counter() - wall_t0
        cell = recorder.cell(
            f"{traffic.pattern}|remote|{args.connect}",
            {"traffic": {k: getattr(traffic, k) for k in
                         type(traffic).__dataclass_fields__},
             "connect": args.connect},
            traffic.duration_s, wall, service_counters=snapshot)
        report = build_report([cell])
    else:
        from repro.serve import run_benchmark

        faults, _, policy = _serve_fault_schedule(args, traffic.duration_s)
        balancers = args.balancer or ["selective", "round-robin"]
        report = run_benchmark(
            traffic, balancers, workers_per_place=args.workers,
            policy=policy, faults=faults, shared_cap=args.shared_cap,
            private_cap=args.private_cap, cold_factor=args.cold_factor,
            seed=args.seed)
    _write_serve_report(args, report)
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}")
    return value


def _render_svgs(name: str, out):
    """Yield (filename, svg) pairs for an artifact with a series extra."""
    from repro.analysis import grouped_bar_chart, line_chart
    series = out.extra["series"]
    first = next(iter(series.values()))
    if isinstance(first, dict):
        # fig5 shape: {app: {scheduler: [values-per-worker-count]}}.
        workers = [row[2] for row in out.rows
                   if row[0] == next(iter(series))
                   and row[1] == "X10WS"]
        for app, per_sched in series.items():
            yield (f"{name}_{app}.svg",
                   line_chart(workers, per_sched,
                              title=f"{app}: speedup vs workers",
                              x_label="workers", y_label="speedup"))
    else:
        # fig6 shape: {scheduler: [values-per-app]}.
        groups = [row[0] for row in out.rows]
        yield (f"{name}.svg",
               grouped_bar_chart(groups, series,
                                 title=f"{name} (128 workers)",
                                 y_label="speedup"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICPP'13 DistWS reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list apps, schedulers, artifacts")

    runp = sub.add_parser("run", help="run one simulation")
    runp.add_argument("--app", default="turing",
                      choices=sorted(APP_REGISTRY))
    runp.add_argument("--scheduler", default="DistWS",
                      choices=sorted(SCHEDULERS))
    runp.add_argument("--places", type=int, default=16)
    runp.add_argument("--workers", type=int, default=8)
    runp.add_argument("--seed", type=int, default=12345,
                      help="application input seed")
    runp.add_argument("--sched-seed", type=int, default=1)
    runp.add_argument("--scale", default="bench",
                      choices=("bench", "test"))
    runp.add_argument("--no-validate", action="store_true")
    runp.add_argument("--faults", metavar="SPEC",
                      help="fault-injection spec, e.g. "
                           "'crash:p2@0.4,loss:steal=0.05,policy:relax' "
                           "(see repro.faults.plan for the grammar)")
    runp.add_argument("--cache-dir", metavar="DIR",
                      help="result cache for the --faults calibration "
                           "pre-run (repeat chaos runs skip it)")
    runp.add_argument("--sched-arg", action="append", metavar="KEY=VALUE",
                      help="set a scheduler knob (repeatable; see "
                           "`repro list` for knobs and defaults)")
    runp.add_argument("--controller", metavar="NAME",
                      help="attach an online feedback controller "
                           "(aimd-chunk or idle-threshold)")

    tracep = sub.add_parser("trace",
                            help="trace a run; print critical path + "
                                 "timeline")
    tracep.add_argument("--app", default="dmg",
                        choices=sorted(APP_REGISTRY))
    tracep.add_argument("--scheduler", default="DistWS",
                        choices=sorted(SCHEDULERS))
    tracep.add_argument("--places", type=int, default=8)
    tracep.add_argument("--workers", type=int, default=4)
    tracep.add_argument("--seed", type=int, default=12345)
    tracep.add_argument("--sched-seed", type=int, default=1)
    tracep.add_argument("--scale", default="test",
                        choices=("bench", "test"))
    tracep.add_argument("--json", help="also write the trace as JSON")

    profp = sub.add_parser("profile",
                           help="run with the observability bus attached")
    profp.add_argument("--app", default="dmg",
                       choices=sorted(APP_REGISTRY))
    profp.add_argument("--scheduler", default="DistWS",
                       choices=sorted(SCHEDULERS))
    profp.add_argument("--places", type=int, default=8)
    profp.add_argument("--workers", type=int, default=4)
    profp.add_argument("--seed", type=int, default=12345)
    profp.add_argument("--sched-seed", type=int, default=1)
    profp.add_argument("--scale", default="test",
                       choices=("bench", "test"))
    profp.add_argument("--sample-interval", type=float, default=100_000,
                       help="queue-depth sampling period in cycles")
    profp.add_argument("--chrome-trace", metavar="PATH",
                       help="write a Chrome trace-event file "
                            "(Perfetto / chrome://tracing)")
    profp.add_argument("--events", metavar="PATH",
                       help="stream every event as JSONL to PATH")
    profp.add_argument("--snapshot", metavar="PATH",
                       help="write the full RunStats snapshot as JSON")

    diffp = sub.add_parser("diff-stats",
                           help="compare two saved run snapshots")
    diffp.add_argument("baseline", help="baseline snapshot JSON")
    diffp.add_argument("candidate", help="candidate snapshot JSON")
    diffp.add_argument("--fail-over", type=float, metavar="PCT",
                       help="exit 1 if any numeric leaf changed by more "
                            "than PCT percent")

    repp = sub.add_parser("reproduce",
                          help="regenerate paper tables/figures")
    repp.add_argument("artifacts", nargs="*",
                      help=f"any of: {', '.join(EXPERIMENTS)}")
    repp.add_argument("--scale", default="bench",
                      choices=("bench", "test"))
    repp.add_argument("--json-dir",
                      help="also write each artifact as JSON here")
    repp.add_argument("--svg-dir",
                      help="also render figures (fig5/fig6) as SVG here")
    repp.add_argument("--parallel", type=_positive_int, default=1,
                      metavar="N",
                      help="shard the experiment grid over N processes "
                           "(results identical to serial)")
    repp.add_argument("--cache-dir", metavar="DIR",
                      help="content-addressed result cache; repeated "
                           "runs reuse finished cells")
    repp.add_argument("--sched-arg", action="append", metavar="KEY=VALUE",
                      help="set a scheduler knob across the whole grid "
                           "(repeatable; schedulers lacking a knob "
                           "ignore it)")
    repp.add_argument("--store", metavar="PATH",
                      help="route the grid through a durable experiment "
                           "store (SQLite job queue): crash-resumable, "
                           "drainable by `repro workers` on this host")

    enq = sub.add_parser("enqueue",
                         help="seed a durable experiment store with a "
                              "grid of cells (run nothing)")
    enq.add_argument("--store", required=True, metavar="PATH",
                     help="SQLite store file (created if missing)")
    enq.add_argument("--app", action="append",
                     choices=sorted(APP_REGISTRY), metavar="APP",
                     help="application(s) (repeatable; default "
                          "uts,quicksort,dmg)")
    enq.add_argument("--scheduler", action="append", metavar="SCHED",
                     help="scheduler(s) (repeatable, case-insensitive; "
                          "default DistWS,X10WS,RandomWS)")
    enq.add_argument("--places", type=int, default=8)
    enq.add_argument("--workers", type=int, default=4,
                     dest="workers_per_place",
                     help="workers per place in the simulated cluster")
    enq.add_argument("--seeds", type=_positive_int, default=3,
                     help="scheduler seeds per cell")
    enq.add_argument("--app-seed", type=int, default=12345)
    enq.add_argument("--scale", default="test",
                     choices=("bench", "test"))
    enq.add_argument("--sched-arg", action="append",
                     metavar="KEY=VALUE",
                     help="set a scheduler knob across the grid "
                          "(repeatable)")

    wrk = sub.add_parser("workers",
                         help="drain an experiment store: claim cells "
                              "under leases, heartbeat, commit "
                              "(crash-resumable)")
    wrk.add_argument("--store", required=True, metavar="PATH")
    wrk.add_argument("--workers", type=_positive_int, default=1,
                     metavar="N",
                     help="worker processes to run on this machine")
    wrk.add_argument("--heartbeat", type=float, default=2.0,
                     metavar="SECONDS",
                     help="lease heartbeat period while simulating")
    wrk.add_argument("--lease", type=float, default=None,
                     metavar="SECONDS",
                     help="lease duration (default 5x heartbeat); a "
                          "lease that expires unheartbeaten is reaped")
    wrk.add_argument("--poll", type=float, default=0.2,
                     metavar="SECONDS",
                     help="idle poll period when nothing is pending")
    wrk.add_argument("--max-attempts", type=_positive_int, default=3,
                     help="leases a cell may burn before quarantine")
    wrk.add_argument("--events", metavar="PATH",
                     help="stream store lifecycle events (lease / "
                          "heartbeat_miss / reclaim / quarantine) as "
                          "JSONL")
    wrk.add_argument("--no-telemetry", action="store_true",
                     help="skip per-cell telemetry shipping (bare "
                          "pre-fleet drain)")
    wrk.add_argument("--trace-dir", metavar="DIR",
                     help="write one Chrome trace shard per cell here "
                          "(merge with `repro report`)")
    wrk.add_argument("--sample-interval", type=float, default=None,
                     metavar="CYCLES",
                     help="also sample queue depths every CYCLES "
                          "simulated cycles into the telemetry")

    qry = sub.add_parser("query",
                         help="inspect an experiment store's rows and "
                              "longitudinal results")
    qry.add_argument("--store", required=True, metavar="PATH")
    qry.add_argument("--status",
                     choices=("pending", "leased", "done", "failed"))
    qry.add_argument("--app", choices=sorted(APP_REGISTRY))
    qry.add_argument("--scheduler")
    qry.add_argument("--limit", type=_positive_int, default=50,
                     help="rows shown (totals always cover everything)")
    qry.add_argument("--json", metavar="PATH",
                     help="also dump the matching rows as JSON")
    qry.add_argument("--rollup", action="store_true",
                     help="merge the matching cells' shipped telemetry "
                          "into fleet-wide metric histograms")
    qry.add_argument("--quarantined", action="store_true",
                     help="print quarantined cells with their captured "
                          "tracebacks")

    topp = sub.add_parser("top",
                          help="live dashboard over a store being "
                               "drained (read-only; safe beside "
                               "workers)")
    topp.add_argument("store", help="SQLite store file to watch")
    topp.add_argument("--interval", type=float, default=2.0,
                      metavar="SECONDS", help="refresh period")
    topp.add_argument("--iterations", type=int, default=0, metavar="N",
                      help="frames to draw (0 = until interrupted)")
    topp.add_argument("--failures", type=_positive_int, default=5,
                      help="recent failures shown")
    topp.add_argument("--window", type=float, default=60.0,
                      metavar="SECONDS",
                      help="trailing window for the fleet rate / ETA")
    topp.add_argument("--no-clear", dest="clear", action="store_false",
                      help="append frames instead of redrawing in place")

    repo = sub.add_parser("report",
                          help="static HTML/SVG sweep report + merged "
                               "Chrome trace from a store's telemetry")
    repo.add_argument("store", help="SQLite store file to report on")
    repo.add_argument("--out", default="sweep_report", metavar="DIR",
                      help="output directory (default sweep_report/)")
    repo.add_argument("--bench", default="BENCH_kernel.json",
                      metavar="PATH",
                      help="kernel bench baseline for the perf-"
                           "trajectory section (skipped if missing)")

    tunep = sub.add_parser("tune",
                           help="search scheduler knobs (offline tuning)")
    tunep.add_argument("--app", action="append",
                       choices=sorted(APP_REGISTRY), metavar="APP",
                       help="application(s) to tune on (repeatable; "
                            "default uts)")
    tunep.add_argument("--scheduler", action="append", metavar="SCHED",
                       help="scheduler(s) to tune (repeatable, "
                            "case-insensitive; default DistWS)")
    tunep.add_argument("--engine", default="random",
                       choices=("grid", "random", "asha"))
    tunep.add_argument("--budget", type=_positive_int, default=None,
                       metavar="N",
                       help="trial budget (configs for grid/random, "
                            "total evaluations for asha)")
    tunep.add_argument("--search-seed", type=int, default=0,
                       help="seed for the random/asha samplers")
    tunep.add_argument("--eta", type=_positive_int, default=2,
                       help="asha promotion ratio (top 1/eta survive)")
    tunep.add_argument("--knob", action="append", metavar="NAME",
                       help="restrict the search to these knobs "
                            "(repeatable; default: all)")
    tunep.add_argument("--places", type=int, default=4)
    tunep.add_argument("--workers", type=int, default=2)
    tunep.add_argument("--seed", type=int, default=12345,
                       help="application input seed")
    tunep.add_argument("--seeds", type=_positive_int, default=2,
                       metavar="N",
                       help="scheduler seeds per trial (median taken)")
    tunep.add_argument("--scale", default="test",
                       choices=("bench", "test"))
    tunep.add_argument("--top", type=_positive_int, default=12,
                       help="ranked rows shown per cell")
    tunep.add_argument("--parallel", type=_positive_int, default=1,
                       metavar="N",
                       help="shard trials over N processes")
    tunep.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed result cache; repeated "
                            "searches replay finished trials")
    tunep.add_argument("--store", metavar="PATH",
                       help="route trials through a durable experiment "
                            "store (shared with `repro workers`)")
    tunep.add_argument("--json", metavar="PATH",
                       help="write the full report as JSON")

    theoryp = sub.add_parser("theory",
                             help="validate makespans against the "
                                  "W/p + c*lambda*log2(W) latency bound")
    theoryp.add_argument("--app", action="append",
                         choices=sorted(APP_REGISTRY), metavar="APP",
                         help="application(s) to sweep (repeatable; "
                              "default uts)")
    theoryp.add_argument("--scheduler", action="append", metavar="SCHED",
                         help="scheduler(s) to fit (repeatable, "
                              "case-insensitive; default RandomWS + "
                              "DistWS)")
    theoryp.add_argument("--places", type=int, default=4)
    theoryp.add_argument("--workers", type=int, default=2)
    theoryp.add_argument("--seeds", type=_positive_int, default=5,
                         metavar="N",
                         help="scheduler seeds per lambda point "
                              "(mean taken; default 5)")
    theoryp.add_argument("--seed", type=int, default=12345,
                         help="application input seed")
    theoryp.add_argument("--scale", default="test",
                         choices=("bench", "test"))
    theoryp.add_argument("--quick", action="store_true",
                         help="small 4-point lambda grid (CI smoke)")
    theoryp.add_argument("--lambda", dest="lambdas", action="append",
                         type=float, metavar="CYCLES",
                         help="explicit net_latency grid point in "
                              "cycles (repeatable; overrides --quick; "
                              "must exceed the local-steal cost)")
    theoryp.add_argument("--out", metavar="DIR", default=".",
                         help="write theory_<app>.svg + "
                              "theory_verdict.json here (default: cwd)")
    theoryp.add_argument("--parallel", type=_positive_int, default=1,
                         metavar="N",
                         help="shard the lambda grid over N processes")
    theoryp.add_argument("--cache-dir", metavar="DIR",
                         help="content-addressed result cache; repeated "
                              "sweeps replay finished cells")
    theoryp.add_argument("--store", metavar="PATH",
                         help="route the sweep through a durable "
                              "experiment store (SQLite job queue)")

    def _serve_common(p, *, loadgen: bool) -> None:
        """Flags shared by ``serve`` and ``loadgen``."""
        from repro.serve import BALANCERS, PATTERNS
        if loadgen:
            p.add_argument("--balancer", action="append",
                           choices=sorted(BALANCERS), metavar="NAME",
                           help="balancer(s) to benchmark (repeatable; "
                                "default selective,round-robin)")
        else:
            p.add_argument("--balancer", default="selective",
                           choices=sorted(BALANCERS),
                           help="load balancer (default selective = "
                                "Algorithm 1 local-first stealing)")
        p.add_argument("--places", type=_positive_int, default=4,
                       help="place processes (default 4)")
        p.add_argument("--workers", type=_positive_int, default=2,
                       help="asyncio workers per place (default 2)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--shared-cap", type=_positive_int, default=256,
                       help="bounded shared-deque depth per place "
                            "(overflow is shed)")
        p.add_argument("--private-cap", type=_positive_int, default=64,
                       help="bounded private-deque depth per worker")
        p.add_argument("--cold-factor", type=float, default=2.0,
                       help="service-time multiplier off the home place "
                            "(cache-affinity cost; default 2.0)")
        p.add_argument("--faults", metavar="SPEC",
                       help="crash schedule, e.g. "
                            "'crash:p1@0.5,policy:relax' (crash/policy/"
                            "seed tokens only; fractions of the trace "
                            "duration in loadgen, absolute seconds in "
                            "serve)")
        if loadgen:
            p.add_argument("--policy", default="fail",
                           choices=("fail", "relax"),
                           help="sticky-session failover policy when no "
                                "--faults spec names one")
            p.add_argument("--pattern", default="poisson",
                           choices=PATTERNS)
            p.add_argument("--rate", type=float, default=200.0,
                           help="mean offered load, requests/sec")
            p.add_argument("--duration", type=float, default=5.0,
                           metavar="SECONDS")
            p.add_argument("--sticky-fraction", type=float, default=0.5,
                           help="fraction of requests that are sticky "
                                "sessions (locality-sensitive)")
            p.add_argument("--service-ms", type=float, default=10.0,
                           help="warm per-request service time")
            p.add_argument("--service-jitter", type=float, default=0.2)
            p.add_argument("--cpu-ms", type=float, default=0.0,
                           help="real GIL-holding CPU burn per request")
            p.add_argument("--skew", type=float, default=1.5,
                           help="Zipf exponent of the home-place "
                                "distribution (0 = uniform)")
            p.add_argument("--hot-place", type=int, default=0)

    servep = sub.add_parser("serve",
                            help="run the live serving tier (one process "
                                 "per place) behind a TCP frontend")
    _serve_common(servep, loadgen=False)
    servep.add_argument("--host", default="127.0.0.1")
    servep.add_argument("--port", type=int, default=0,
                        help="frontend port (default: OS-assigned, "
                             "printed at startup)")

    loadp = sub.add_parser("loadgen",
                           help="replay an open-loop traffic trace "
                                "against the serving tier; latency "
                                "report")
    _serve_common(loadp, loadgen=True)
    loadp.add_argument("--connect", metavar="HOST:PORT",
                       help="drive a running `repro serve` instead of "
                            "an embedded service")
    loadp.add_argument("--out", metavar="PATH",
                       help="write the JSON latency report here")
    loadp.add_argument("--svg", metavar="PATH",
                       help="write the latency percentile figure here")

    benchp = sub.add_parser("bench",
                            help="kernel performance benchmark "
                                 "(wall-clock / events-per-sec grid)")
    benchp.add_argument("--quick", action="store_true",
                        help="small sub-second grid (CI smoke)")
    benchp.add_argument("--repeats", type=_positive_int, default=None,
                        metavar="N",
                        help="timing repeats per cell "
                             "(default: 3 full, 2 quick)")
    benchp.add_argument("--out", metavar="PATH",
                        help="write the JSON report here")
    benchp.add_argument("--baseline", metavar="PATH",
                        help="compare against a saved report "
                             "(e.g. BENCH_kernel.json); exit 1 on "
                             "regression or simulated-metric drift")
    benchp.add_argument("--max-regression", type=float, default=20.0,
                        metavar="PCT",
                        help="allowed normalized wall-clock regression "
                             "in percent (default 20)")
    benchp.add_argument("--profile", action="store_true",
                        help="run each cell once under cProfile and dump "
                             "the hottest functions instead of timing "
                             "(--out/--baseline are ignored)")
    benchp.add_argument("--profile-top", type=_positive_int, default=25,
                        metavar="N",
                        help="functions shown per cell with --profile "
                             "(default 25)")

    args = parser.parse_args(argv)
    from repro.errors import ConfigError
    from repro.harness.db import graceful_signals
    try:
        with graceful_signals():
            if args.command == "list":
                return _cmd_list(args)
            if args.command == "bench":
                return _cmd_bench(args)
            if args.command == "run":
                return _cmd_run(args)
            if args.command == "trace":
                return _cmd_trace(args)
            if args.command == "profile":
                return _cmd_profile(args)
            if args.command == "diff-stats":
                return _cmd_diff_stats(args)
            if args.command == "tune":
                return _cmd_tune(args)
            if args.command == "enqueue":
                return _cmd_enqueue(args)
            if args.command == "workers":
                return _cmd_workers(args)
            if args.command == "query":
                return _cmd_query(args)
            if args.command == "top":
                return _cmd_top(args)
            if args.command == "report":
                return _cmd_report(args)
            if args.command == "theory":
                return _cmd_theory(args)
            if args.command == "serve":
                return _cmd_serve(args)
            if args.command == "loadgen":
                return _cmd_loadgen(args)
            return _cmd_reproduce(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Pools cancelled their queued futures and workers released
        # their leases on the way out; exit with the interrupt code.
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
