"""The discrete-event simulation environment.

:class:`Environment` owns the event heap and the simulated clock.  Time is a
float measured in *cycles* throughout the library (the cluster cost model
converts cycles to milliseconds for reporting).

Determinism: events scheduled for the same timestamp are processed in the
order they were scheduled (a monotonically increasing sequence number breaks
ties), so a given program produces bit-identical traces across runs.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class Environment:
    """Discrete-event execution environment with a deterministic clock."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_processes = 0

    # -- clock & scheduling -------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in cycles."""
        return self._now

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered ``event`` to be processed ``delay`` from now."""
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` cycles in the future."""
        return Timeout(self, delay, value)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event triggering on the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, generator: Generator[Event, Any, Any]) -> "Process":
        """Start a simulated process from ``generator``."""
        return Process(self, generator)

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the heap."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[Event | float] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event heap drains.
            A float — run until the clock reaches that time.
            An :class:`Event` — run until that event has been processed and
            return its value.

        Raises
        ------
        DeadlockError
            If ``until`` is an event, the heap drains, and the event never
            triggered: no remaining activity can ever wake the waiters.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("until lies in the past")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise DeadlockError(
                "event queue drained before the 'until' event triggered; "
                f"{self._active_processes} process(es) still alive")
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the heap is empty."""
        return self._queue[0][0] if self._queue else float("inf")


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulated process wrapping a generator of events.

    A Process is itself an :class:`Event` that triggers when the generator
    returns (payload: the return value) or raises (failure).  This allows
    processes to wait for each other by yielding a Process.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, env: Environment, generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        env._active_processes += 1
        # Kick off the process at the current simulated time.
        bootstrap = Event(env)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None and not target.processed:
            # Stop the pending resume; deliver the interrupt instead.
            try:
                target.callbacks.remove(self._resume)  # type: ignore[union-attr]
            except (ValueError, AttributeError):
                pass
            # If the event sits in a resource's waiter queue (e.g. a
            # SimLock acquire), the resource must not hand over to this
            # now-dead process — it would strand the lock forever.
            target._abandoned = True
        self._waiting_on = None
        wake = Event(self.env)
        wake.add_callback(lambda ev: self._throw(Interrupt(cause)))
        wake.succeed()

    # -- internals ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._advance(lambda: self.generator.send(event._value))
        else:
            self._advance(lambda: self.generator.throw(event._value))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._advance(lambda: self.generator.throw(exc))

    def _advance(self, step) -> None:
        try:
            target = step()
        except StopIteration as stop:
            self.env._active_processes -= 1
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_processes -= 1
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.env._active_processes -= 1
            err = SimulationError(
                f"process yielded {target!r}; processes must yield Events")
            self.fail(err)
            return
        if target.processed:
            self.env._active_processes -= 1
            self.fail(SimulationError("process yielded an already-processed event"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
