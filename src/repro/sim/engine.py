"""The discrete-event simulation environment (flat struct-of-arrays kernel).

:class:`Environment` owns the event heap and the simulated clock.  Time is a
float measured in *cycles* throughout the library (the cluster cost model
converts cycles to milliseconds for reporting).

Determinism: events scheduled for the same timestamp are processed in the
order they were scheduled (a monotonically increasing sequence number breaks
ties), so a given program produces bit-identical traces across runs.

Struct-of-arrays layout
-----------------------

PR 5 made the hot paths allocation-free but still dispatched through one
Python record object per heap entry.  This kernel flattens that state into
parallel columns indexed by small-integer *handles*:

- the heap holds bare ``(due, seq, handle)`` triples — no record object
  per entry; the globally unique sequence number breaks due ties, so heap
  order is by ``(due, seq)`` exactly and ``handle`` indexes the columns;
- ``_kind[handle]`` says how to dispatch: ``K_RESUME`` (a sleeping
  process), ``K_EVENT`` (a scheduled :class:`~repro.sim.events.Event`),
  ``K_HOP`` (a park wake hop) or ``K_PROBE`` (a park backoff deadline);
- ``_arm[handle]`` holds the seq of the handle's *armed* entry (or
  ``-1``): a popped seq that no longer matches was superseded — by an
  interrupt, a competing wake, or handle recycling — and is skipped
  without any object ever being touched;
- ``_obj[handle]`` points at the owning :class:`Process`,
  :class:`~repro.sim.events.Event` or :class:`ParkRecord`;
- park state and wake cause live in the ``_pstate`` / ``_pcause``
  columns indexed by the park's hop handle, not as attributes.

The columns are plain Python lists, not ``array``/numpy buffers: every
value a column holds is a cached small int or an object reference, so a
list getitem (one pointer load) beats a C-array getitem (which must box
its element on every read) on the per-event path — measured, not
guessed; see DESIGN.md §17.

Handles are recycled through a free-list (``_free``); exhaustion grows
every column geometrically (doubling), so steady state allocates nothing.
Because sequence numbers are globally unique, a recycled handle can never
fire its previous owner: any entry armed by the old owner carries a token
the new owner's arm value can never equal.

The run loop additionally *batches same-cycle dispatch*: all entries
sharing one due time are drained under a single clock store, and
:attr:`Environment.events_processed` counts every entry in the batch
individually so events/sec stays comparable across kernels.

The scheduler's probe-fail-park round is hoisted into
:meth:`repro.sched.base.Scheduler.fast_round` (a vectorized victim scan
over the flat columns); :meth:`Environment.sleep_at` is the kernel-side
half of that contract.

The PR-5 object kernel is kept verbatim in :mod:`repro.sim.engine_object`
and selected for a whole process with ``REPRO_KERNEL=object``; the 38-cell
golden differential and ``tools/kernel_diff.py`` prove both kernels produce
byte-identical simulated results.  See DESIGN.md §17.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

#: Park wake causes, compared by identity in the worker loop (the fast
#: equivalent of comparing which child event won the legacy ``AnyOf``).
CAUSE_DONE = "done"
CAUSE_WORK = "work"
CAUSE_TIMEOUT = "timeout"
CAUSE_BOARD = "board"

#: :class:`ParkRecord` states (values in the ``_pstate`` column).
PARK_IDLE = 0      # not parked; any heap entries are stale
PARK_PARKED = 1    # worker waiting; first _fire() wins
PARK_WAKING = 2    # wake hop 1 in the heap (the child-event pop stand-in)
PARK_RESUMING = 3  # wake hop 2 in the heap (the composite pop stand-in)

#: Heap-entry kinds (values in the ``_kind`` column).
K_FREE = 0    # recycled handle; a popped entry is stale by construction
K_RESUME = 1  # resume a sleeping process
K_EVENT = 2   # run a scheduled Event's callbacks
K_HOP = 3     # park wake hop (two-hop child/composite pop stand-in)
K_PROBE = 4   # park backoff-deadline probe
K_SCAN = 5    # kernel-resident round step (see KernelRound)

#: Cause column encoding: ``_pcause`` byte -> cause object (index 0 = None).
_CAUSES: Tuple[Any, ...] = (None, CAUSE_DONE, CAUSE_WORK, CAUSE_TIMEOUT,
                            CAUSE_BOARD)
_CAUSE_INDEX = {CAUSE_DONE: 1, CAUSE_WORK: 2, CAUSE_TIMEOUT: 3,
                CAUSE_BOARD: 4}

_INITIAL_CAPACITY = 64


class _Sleep:
    """Singleton yielded by :meth:`Environment.sleep`.

    The armed heap entry lives entirely in the columns; the generator just
    needs *something* to yield, and a shared sentinel means the sleep path
    allocates nothing at all.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<SLEEP>"


_SLEEP = _Sleep()

#: Returned (via ``_resolve``) by a :class:`KernelRound` whose covered
#: tiers all came up empty: the owning generator continues with the
#: policy-specific tail of the round in ordinary yielded-event style.
SCAN_MISS = object()


class KernelRound:
    """A kernel-resident continuation for a worker's hot scheduling round.

    The dominant event pattern in steal-heavy cells is a worker cycling
    ``sleep -> probe a deque -> sleep -> probe`` many times per acquired
    task.  Running that cycle through the generator machinery costs a
    full resume chain (``Process._step_send`` -> nested ``yield from``
    frames) per probe.  A ``KernelRound`` replaces the chain: the worker
    yields the round object once, and the dispatch loop calls
    :meth:`step` directly on each fired entry — the subclass re-arms the
    next step or resolves the round back into the generator.

    The contract with byte-identity: each armed entry consumes exactly
    one sequence number at exactly the time the legacy generator's
    ``sleep`` would have, and :meth:`step` performs exactly the side
    effects the generator's resume would have performed, in the same
    order within the same dispatch.  The round is therefore exact under
    *any* event interleaving — unlike the collapsed
    :meth:`~repro.sched.base.Scheduler.fast_round`, it needs no global
    heap-quiescence guard.

    Subclasses (e.g. the worker's steal scan) own the policy; this base
    owns the handle plumbing.  The handle lives as long as its worker.
    """

    __slots__ = ("env", "proc", "_h")

    def __init__(self, env: Environment, proc: "Process") -> None:
        self.env = env
        self.proc = proc
        h = self._h = env._alloc()
        env._kind[h] = K_SCAN
        env._obj[h] = self

    def _arm(self, delay: float) -> None:
        """Push this round's next step ``delay`` cycles from now."""
        env = self.env
        env._seq += 1
        env._arm[self._h] = env._seq
        heapq.heappush(env._queue, (env._now + delay, env._seq, self._h))

    def _resolve(self, value: Any) -> None:
        """Resume the owning generator with the round's outcome."""
        proc = self.proc
        proc._waiting_on = None
        proc._step_send(value)

    def cancel(self) -> None:
        """Detach (the worker was interrupted); armed entries go stale."""
        self.env._arm[self._h] = -1

    def step(self) -> None:  # pragma: no cover - subclass responsibility
        raise NotImplementedError


class Environment:
    """Discrete-event execution environment with a deterministic clock."""

    __slots__ = ("_now", "_queue", "_seq", "_active_processes", "_current",
                 "events_processed", "_cap", "_kind", "_pstate", "_pcause",
                 "_arm", "_obj", "_free")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int]] = []
        self._seq = 0
        self._active_processes = 0
        #: The process whose generator is currently executing (resumes are
        #: never nested — every resume comes from a heap pop), consulted by
        #: :meth:`sleep` to find the caller's handle.
        self._current: Optional["Process"] = None
        #: Heap entries processed so far, counting every entry of a
        #: same-cycle batch individually; benchmark fodder for events/sec.
        self.events_processed = 0
        cap = _INITIAL_CAPACITY
        self._cap = cap
        self._kind: List[int] = [K_FREE] * cap
        self._pstate: List[int] = [PARK_IDLE] * cap
        self._pcause: List[int] = [0] * cap
        self._arm: List[int] = [-1] * cap
        self._obj: List[Any] = [None] * cap
        #: Free handles, popped from the end (so allocation order — and
        #: therefore every heap entry — is deterministic).
        self._free: List[int] = list(range(cap - 1, -1, -1))

    # -- handle allocation ----------------------------------------------------
    def _grow(self) -> None:
        """Double every column (free-list exhaustion, geometric growth)."""
        cap = self._cap
        self._kind.extend([K_FREE] * cap)
        self._pstate.extend([PARK_IDLE] * cap)
        self._pcause.extend([0] * cap)
        self._arm.extend([-1] * cap)
        self._obj.extend([None] * cap)
        self._free.extend(range(2 * cap - 1, cap - 1, -1))
        self._cap = 2 * cap

    def _alloc(self) -> int:
        """Take a free handle (arm is ``-1``, kind is ``K_FREE``)."""
        free = self._free
        if not free:
            self._grow()
            free = self._free
        return free.pop()

    def _release(self, handle: int) -> None:
        """Return ``handle`` to the free-list; stale entries pop as no-ops."""
        self._kind[handle] = K_FREE
        self._obj[handle] = None
        self._arm[handle] = -1
        self._free.append(handle)

    def _retire(self, proc: "Process") -> None:
        """Release a finished process's handle.

        A *dirty* handle (an interrupt left a stale sleep entry in the
        heap) is cleared but never returned to the free-list: recycling it
        into a ``K_PROBE`` handle would misroute the stale pop, since probe
        entries are disambiguated by deadline bookkeeping rather than arm
        tokens.  The leak is bounded by the number of interrupted
        processes, which only fault plans produce at all.
        """
        h = proc._h
        self._kind[h] = K_FREE
        self._obj[h] = None
        self._arm[h] = -1
        if not proc._dirty:
            self._free.append(h)

    # -- clock & scheduling ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in cycles."""
        return self._now

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered ``event`` to be processed ``delay`` from now."""
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        free = self._free
        if not free:
            self._grow()
        h = free.pop()
        self._kind[h] = K_EVENT
        self._obj[h] = event
        self._seq += 1
        self._arm[h] = self._seq
        heapq.heappush(self._queue, (self._now + delay, self._seq, h))

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` cycles in the future."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> "_Sleep":
        """Allocation-free ``timeout`` for the calling process.

        Arms the process's handle and pushes a bare ``(due, seq, handle)``
        triple — no :class:`Timeout`, no callbacks list, no record object.
        Only valid inside a running process (``yield env.sleep(cost)``); the
        yield resumes with ``None`` exactly like ``yield env.timeout(cost)``.
        """
        if delay < 0:
            raise SimulationError(f"negative sleep delay: {delay!r}")
        proc = self._current
        if proc is None:
            raise SimulationError("sleep() called outside a process")
        h = proc._h
        self._seq += 1
        self._arm[h] = self._seq
        heapq.heappush(self._queue, (self._now + delay, self._seq, h))
        return _SLEEP

    def sleep_at(self, due: float) -> "_Sleep":
        """:meth:`sleep` to an *absolute* due time (kernel-internal).

        Used by :meth:`repro.sched.base.Scheduler.fast_round`, which
        pre-computes the exact float due of a collapsed probe round by
        accumulating the per-probe costs in event order — re-deriving a
        delay and adding it to ``now`` would perturb the low float bits.
        """
        proc = self._current
        if proc is None:
            raise SimulationError("sleep_at() called outside a process")
        h = proc._h
        self._seq += 1
        self._arm[h] = self._seq
        heapq.heappush(self._queue, (due, self._seq, h))
        return _SLEEP

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event triggering on the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, generator: Generator[Event, Any, Any]) -> "Process":
        """Start a simulated process from ``generator``."""
        # Via the stable alias: under REPRO_KERNEL=object the module
        # global ``Process`` is rebound to the object kernel's class, but
        # a flat Environment must always drive flat processes (the Flat*
        # aliases exist precisely for in-process differential tests).
        return FlatProcess(self, generator)

    # -- main loop ------------------------------------------------------------
    def _dispatch(self, seq: int, h: int, due: float) -> None:
        """Dispatch one popped entry (the cold, shared copy of the run loop)."""
        k = self._kind[h]
        if k == K_RESUME:
            if self._arm[h] == seq:
                self._arm[h] = -1
                proc = self._obj[h]
                proc._waiting_on = None
                proc._step_send(None)
        elif k == K_EVENT:
            if self._arm[h] == seq:
                event = self._obj[h]
                self._release(h)
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
        elif k == K_SCAN:
            if self._arm[h] == seq:
                self._obj[h].step()
        elif k == K_HOP:
            if self._arm[h] == seq:
                self._obj[h]._hop(due)
        elif k == K_PROBE:
            self._obj[h]._probe_pop(seq)
        # K_FREE: a stale entry for a recycled handle — skip.

    def step(self) -> None:
        """Process the single next entry in the heap."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        due, seq, h = heapq.heappop(self._queue)
        self._now = due
        self.events_processed += 1
        self._dispatch(seq, h, due)

    def run(self, until: Optional[Event | float] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event heap drains.
            A float — run until the clock reaches that time.
            An :class:`Event` — run until that event has been processed and
            return its value.

        Raises
        ------
        DeadlockError
            If ``until`` is an event, the heap drains, and the event never
            triggered: no remaining activity can ever wake the waiters.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("until lies in the past")

        # The hot loop below is _dispatch() inlined with the loop-invariant
        # column lookups hoisted (the columns are mutated in place by
        # _grow(), never rebound, so hoisting is safe).  Entries sharing one
        # due time drain as a batch under a single clock store: the batch is
        # discovered opportunistically after each dispatch by one peek at
        # the new heap head, so a singleton batch (the common case) pays a
        # single extra compare rather than a separate scan.
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        kind = self._kind
        pstate = self._pstate
        arm = self._arm
        obj = self._obj
        free = self._free
        processed = 0
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    # Checked before the clock advances to the next batch:
                    # an event processed at the tail of the previous batch
                    # must stop the run at that batch's time.
                    return stop_event.value
                entry = pop(queue)
                due, seq, h = entry
                if stop_time is not None and due > stop_time:
                    push(queue, entry)
                    self._now = stop_time
                    return None
                self._now = due
                while True:
                    k = kind[h]
                    processed += 1
                    if k == K_SCAN:
                        # Tested first: steal-heavy cells arm several scan
                        # steps per generator resume.
                        if arm[h] == seq:
                            obj[h].step()
                    elif k == K_RESUME:
                        if arm[h] == seq:
                            arm[h] = -1
                            proc = obj[h]
                            proc._waiting_on = None
                            proc._step_send(None)
                    elif k == K_EVENT:
                        if arm[h] == seq:
                            event = obj[h]
                            kind[h] = K_FREE
                            obj[h] = None
                            arm[h] = -1
                            free.append(h)
                            callbacks = event.callbacks
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                    elif k == K_HOP:
                        if arm[h] == seq:
                            st = pstate[h]
                            if st == PARK_WAKING:
                                # Hop 2: the legacy composite's own pop.
                                pstate[h] = PARK_RESUMING
                                self._seq += 1
                                arm[h] = self._seq
                                push(queue, (due, self._seq, h))
                            elif st == PARK_RESUMING:
                                pstate[h] = PARK_IDLE
                                arm[h] = -1
                                rec = obj[h]
                                cause = _CAUSES[self._pcause[h]]
                                owner = rec.scan_owner
                                if owner is not None:
                                    owner.on_wake(cause)
                                else:
                                    proc = rec.process
                                    proc._waiting_on = None
                                    proc._step_send(cause)
                    elif k == K_PROBE:
                        obj[h]._probe_pop(seq)
                    # K_FREE: stale entry for a recycled handle — skip.
                    if not queue or queue[0][0] != due:
                        break
                    if stop_event is not None and stop_event.callbacks is None:
                        return stop_event.value
                    _d, seq, h = pop(queue)
        finally:
            self.events_processed += processed

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise DeadlockError(
                "event queue drained before the 'until' event triggered; "
                f"{self._active_processes} process(es) still alive")
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the heap is empty."""
        return self._queue[0][0] if self._queue else float("inf")


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ParkRecord(object):
    """A worker's reusable, cancellable idle park (column-backed).

    Replaces the per-round ``AnyOf([gate.wait(), work_event, timeout,
    surplus_event])``: wake sources (:meth:`~repro.runtime.place.Place.
    notify_work`, the status board, the termination gate, the backoff
    deadline) call :meth:`_fire` with a cause, and the worker's generator
    receives that cause from ``yield park``.

    The record owns two handles: ``_h`` (kind ``K_HOP``) indexes the park
    state and wake cause in the environment's ``_pstate`` / ``_pcause``
    columns and carries the two-hop wake entries, ``_hp`` (kind
    ``K_PROBE``) carries the backoff-deadline probe.  Waking preserves the
    legacy two-hop heap structure — hop 1 stands in for the fired child
    event's pop, hop 2 for the composite's — so any event scheduled between
    those pops keeps its relative order.  Losers of a same-timestamp race
    are skipped by the state/arm guards precisely where the legacy kernel
    popped their no-op ``succeed``.
    """

    __slots__ = ("env", "process", "round", "scan_owner", "_h", "_hp",
                 "_deadline", "_deadline_seq", "_dues")

    def __init__(self, env: Environment, process: "Process") -> None:
        self.env = env
        self.process = process
        #: When a kernel-resident idle loop owns this park (tail-less
        #: schedulers under the flat kernel), wake causes are delivered to
        #: ``scan_owner.on_wake(cause)`` instead of resuming the worker's
        #: generator — the round restarts entirely inside the kernel.
        self.scan_owner = None
        #: Monotone park-round counter; waiter-list entries carry the round
        #: they were registered for, so entries from earlier rounds are
        #: recognizably stale without being unlinked.
        self.round = 0
        self._deadline = 0.0
        self._deadline_seq = -1
        #: Due times of this worker's outstanding probe heap entries
        #: (a tiny min-heap, usually length 1).
        self._dues: List[float] = []
        h = self._h = env._alloc()
        env._kind[h] = K_HOP
        env._obj[h] = self
        env._pstate[h] = PARK_IDLE
        env._pcause[h] = 0
        hp = self._hp = env._alloc()
        env._kind[hp] = K_PROBE
        env._obj[hp] = self

    @property
    def state(self) -> int:
        """Current park state (reads the ``_pstate`` column)."""
        return self.env._pstate[self._h]

    @property
    def cause(self) -> Any:
        """Wake cause of the current round (reads the ``_pcause`` column)."""
        return _CAUSES[self.env._pcause[self._h]]

    def begin(self, delay: float, gate_open: bool) -> "ParkRecord":
        """Arm the park for one idle round; yield ``self`` afterwards.

        Sequence numbers are consumed exactly as the legacy park did: an
        already-open gate fires first (the ``gate.wait()`` of a dead
        computation succeeded before the backoff timeout was created), then
        the backoff deadline claims its number whether or not a probe entry
        is pushed for it.
        """
        self.round += 1
        env = self.env
        h = self._h
        env._pstate[h] = PARK_PARKED
        env._pcause[h] = 0
        if gate_open:
            self._fire(CAUSE_DONE)
        env._seq += 1
        due = env._now + delay
        self._deadline = due
        self._deadline_seq = env._seq
        dues = self._dues
        if not dues or dues[0] > due:
            heapq.heappush(env._queue, (due, env._seq, self._hp))
            heapq.heappush(dues, due)
        return self

    def _fire(self, cause: Any) -> None:
        """A wake source signals the parked worker (first caller wins)."""
        env = self.env
        h = self._h
        if env._pstate[h] != PARK_PARKED:
            return  # not parked, or a same-timestamp sibling already won
        env._pstate[h] = PARK_WAKING
        env._pcause[h] = _CAUSE_INDEX[cause]
        env._seq += 1
        env._arm[h] = env._seq
        heapq.heappush(env._queue, (env._now, env._seq, h))

    def _fire_timeout(self) -> None:
        """The backoff deadline fires (may override a pending wake hop)."""
        env = self.env
        h = self._h
        env._pstate[h] = PARK_RESUMING
        env._pcause[h] = 3  # CAUSE_TIMEOUT
        env._seq += 1
        env._arm[h] = env._seq
        heapq.heappush(env._queue, (env._now, env._seq, h))

    def cancel(self) -> None:
        """Detach from the current round (the worker was interrupted)."""
        env = self.env
        h = self._h
        env._pstate[h] = PARK_IDLE
        env._pcause[h] = 0
        env._arm[h] = -1

    # -- kernel callbacks -----------------------------------------------------
    def _hop(self, due: float) -> None:
        """An armed wake-hop entry popped (cold path; run() inlines this)."""
        env = self.env
        h = self._h
        st = env._pstate[h]
        if st == PARK_WAKING:
            env._pstate[h] = PARK_RESUMING
            env._seq += 1
            env._arm[h] = env._seq
            heapq.heappush(env._queue, (due, env._seq, h))
        elif st == PARK_RESUMING:
            env._pstate[h] = PARK_IDLE
            env._arm[h] = -1
            cause = _CAUSES[env._pcause[h]]
            owner = self.scan_owner
            if owner is not None:
                owner.on_wake(cause)
            else:
                proc = self.process
                proc._waiting_on = None
                proc._step_send(cause)

    def _probe_pop(self, seq: int) -> None:
        """A probe entry popped: fire the deadline or re-arm a stale probe.

        One probe serves every park round of its worker: consecutive rounds
        whose deadline is already *covered* by an outstanding probe entry
        (``_dues``) push nothing, which is what keeps the heap O(workers)
        under idle churn.  A stale probe pop re-arms itself at the current
        deadline with the deadline's own pre-assigned sequence number, i.e.
        exactly the heap entry the legacy backoff ``Timeout`` would have
        occupied.
        """
        env = self.env
        heapq.heappop(self._dues)
        state = env._pstate[self._h]
        if seq == self._deadline_seq:
            if state == PARK_PARKED or state == PARK_WAKING:
                # The deadline may overtake a wake hop already in flight:
                # the legacy backoff Timeout (scheduled at park time, hence
                # an earlier seq) popped before the waker's child event and
                # won the AnyOf race.
                self._fire_timeout()
        elif state == PARK_PARKED or state == PARK_WAKING:
            deadline = self._deadline
            dues = self._dues
            if not dues or dues[0] > deadline:
                heapq.heappush(env._queue,
                               (deadline, self._deadline_seq, self._hp))
                heapq.heappush(dues, deadline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {PARK_IDLE: "idle", PARK_PARKED: "parked",
                 PARK_WAKING: "waking", PARK_RESUMING: "resuming"}
        return f"<ParkRecord {names[self.state]} round={self.round}>"


#: Kernel-armed wait targets a flat process may yield.  Captured before
#: the REPRO_KERNEL rebind at module bottom: flat Process internals must
#: type-check against the *flat* classes even when the public names are
#: rebound to the object kernel (the Flat* aliases stay fully usable for
#: in-process differential tests).
_KERNEL_WAITS = (ParkRecord, KernelRound)


class Process(Event):
    """A running simulated process wrapping a generator of events.

    A Process is itself an :class:`Event` that triggers when the generator
    returns (payload: the return value) or raises (failure).  This allows
    processes to wait for each other by yielding a Process.

    Each process owns one ``K_RESUME`` handle for its entire lifetime: the
    bootstrap entry, every :meth:`Environment.sleep`, and interrupt
    disarming all go through ``_arm[_h]``.  The handle is released when the
    generator finishes, so short-lived processes (e.g. MultiStealWS's
    concurrent take probes) recycle a small pool of handles instead of
    growing the columns.
    """

    __slots__ = ("generator", "_waiting_on", "_resume_cb", "_h", "_dirty")

    def __init__(self, env: Environment,
                 generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        self.generator = generator
        #: Set when an interrupt disarms a pending sleep entry: the stale
        #: entry still sits in the heap, so the handle must be *retired*
        #: (never recycled) at process exit — K_PROBE entries carry no arm
        #: token, so a recycled dirty handle could misroute the stale pop.
        self._dirty = False
        #: The bound resume method, allocated once instead of per event.
        self._resume_cb = self._resume
        h = self._h = env._alloc()
        env._kind[h] = K_RESUME
        env._obj[h] = self
        env._active_processes += 1
        # Kick off the process at the current simulated time.
        env._seq += 1
        env._arm[h] = env._seq
        heapq.heappush(env._queue, (env._now, env._seq, h))
        self._waiting_on: Any = _SLEEP

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            if target is _SLEEP:
                # The pending sleep entry pops as a no-op.
                self.env._arm[self._h] = -1
                self._dirty = True
            elif isinstance(target, _KERNEL_WAITS):
                target.cancel()
            elif not target.processed:
                # Stop the pending resume; deliver the interrupt instead.
                try:
                    target.callbacks.remove(self._resume_cb)
                except (ValueError, AttributeError):
                    pass
                # If the event sits in a resource's waiter queue (e.g. a
                # SimLock acquire), the resource must not hand over to this
                # now-dead process — it would strand the lock forever.
                target._abandoned = True
        self._waiting_on = None
        wake = Event(self.env)
        wake.add_callback(lambda ev: self._throw(Interrupt(cause)))
        wake.succeed()

    # -- internals ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._step_throw(exc)

    def _step_send(self, value: Any) -> None:
        """Advance the generator with ``value``; handle what it yields."""
        env = self.env
        env._current = self
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            env._current = None
            env._active_processes -= 1
            env._retire(self)
            self.succeed(stop.value)
            return
        except (KeyboardInterrupt, SystemExit):
            # A host-level interrupt (ctrl-C, SIGTERM) landing mid-step
            # aborts the whole run; it must never masquerade as a
            # simulated process death.
            env._current = None
            raise
        except BaseException as exc:
            env._current = None
            env._active_processes -= 1
            env._retire(self)
            self.fail(exc)
            return
        env._current = None
        self._handle(target)

    def _step_throw(self, exc: BaseException) -> None:
        """Advance the generator by throwing ``exc`` into it."""
        env = self.env
        env._current = self
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            env._current = None
            env._active_processes -= 1
            env._retire(self)
            self.succeed(stop.value)
            return
        except (KeyboardInterrupt, SystemExit):
            env._current = None
            raise
        except BaseException as raised:
            env._current = None
            env._active_processes -= 1
            env._retire(self)
            self.fail(raised)
            return
        env._current = None
        self._handle(target)

    def _handle(self, target: Any) -> None:
        """Wait on whatever the generator yielded."""
        if target is _SLEEP:
            self._waiting_on = target  # armed by env.sleep()/sleep_at()
            return
        if isinstance(target, Event):
            if target.callbacks is None:
                self.env._active_processes -= 1
                self.env._retire(self)
                self.fail(SimulationError(
                    "process yielded an already-processed event"))
                return
            self._waiting_on = target
            target.callbacks.append(self._resume_cb)
            return
        if isinstance(target, _KERNEL_WAITS):
            self._waiting_on = target  # armed by the record's begin()
            return
        self.env._active_processes -= 1
        self.env._retire(self)
        self.fail(SimulationError(
            f"process yielded {target!r}; processes must yield Events"))


#: Which kernel this module exposes: ``"flat"`` (this file) or ``"object"``
#: (the PR-5 kernel from :mod:`repro.sim.engine_object`).  The scheduler's
#: collapsed probe round keys off this flag.
KERNEL = "flat"

#: The flat classes stay importable under stable aliases even when the
#: public names below are rebound to the object kernel — in-process
#: differential tests drive both kernels side by side through these.
FlatEnvironment = Environment
FlatProcess = Process
FlatParkRecord = ParkRecord

_requested = os.environ.get("REPRO_KERNEL", "flat").strip().lower() or "flat"
if _requested in ("object", "legacy"):
    from repro.sim import engine_object as _object_kernel

    KERNEL = "object"
    Environment = _object_kernel.Environment  # type: ignore[misc]
    Process = _object_kernel.Process  # type: ignore[misc]
    ParkRecord = _object_kernel.ParkRecord  # type: ignore[misc]
    Interrupt = _object_kernel.Interrupt  # type: ignore[misc]
    CAUSE_DONE = _object_kernel.CAUSE_DONE
    CAUSE_WORK = _object_kernel.CAUSE_WORK
    CAUSE_TIMEOUT = _object_kernel.CAUSE_TIMEOUT
    CAUSE_BOARD = _object_kernel.CAUSE_BOARD
elif _requested != "flat":
    raise SimulationError(
        f"unknown REPRO_KERNEL={_requested!r}; expected 'flat' or 'object'")
