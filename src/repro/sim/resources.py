"""Simulated synchronization resources.

:class:`SimLock` models the mutex that guards a shared deque: acquisition is
FIFO, and contention shows up as simulated waiting time, which is exactly the
cost the paper attributes to shared-deque manipulation ("a local worker might
end up waiting for thousands of cycles", §V).

:class:`Gate` is a level-triggered condition used for termination signalling:
processes wait until the gate opens; waiting on an already-open gate resumes
immediately.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import CAUSE_DONE, Environment
from repro.sim.events import Event


class SimLock:
    """A FIFO mutex in simulated time.

    Usage inside a process::

        yield lock.acquire()
        try:
            ... critical section (yield timeouts for hold time) ...
        finally:
            lock.release()
    """

    __slots__ = ("env", "name", "_locked", "_waiters",
                 "contended_acquires", "total_acquires")

    def __init__(self, env: Environment, name: str = "lock") -> None:
        self.env = env
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()
        #: Total number of acquisitions that had to wait (contention events).
        self.contended_acquires = 0
        #: Total acquisitions.
        self.total_acquires = 0

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._locked

    @property
    def queue_length(self) -> int:
        """Number of *live* processes currently waiting for the lock.

        Waiters abandoned by an interrupted process (a crashed place's
        thief) no longer represent demand: :meth:`release` will skip them,
        so counting them would drift contention metrics upward after every
        crash.
        """
        return sum(1 for ev in self._waiters if not ev._abandoned)

    def acquire(self) -> Event:
        """Return an event that triggers once the caller holds the lock."""
        ev = Event(self.env)
        self.total_acquires += 1
        if not self._locked and not self._waiters:
            self._locked = True
            ev.succeed(self)
        else:
            self.contended_acquires += 1
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns ``True`` on success."""
        if self._locked or self._waiters:
            return False
        self._locked = True
        self.total_acquires += 1
        return True

    def release(self) -> None:
        """Release the lock, handing it to the oldest waiter if any.

        Waiters whose process was interrupted while queued (a crashed
        place's thief) are skipped: handing ownership to a dead process
        would hold the lock forever.
        """
        if not self._locked:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        while self._waiters:
            nxt = self._waiters.popleft()
            if nxt._abandoned:
                continue
            nxt.succeed(self)  # lock stays held, ownership transfers
            return
        self._locked = False


class Gate:
    """A level-triggered condition: closed until :meth:`open` is called."""

    __slots__ = ("env", "name", "_open", "_waiters")

    def __init__(self, env: Environment, name: str = "gate") -> None:
        self.env = env
        self.name = name
        self._open = False
        #: One-shot :class:`Event` waiters mixed with persistently
        #: registered worker park records (see :meth:`register_park`).
        self._waiters: List = []

    @property
    def is_open(self) -> bool:
        """Whether the gate has been opened."""
        return self._open

    def wait(self) -> Event:
        """Event that triggers when the gate opens (immediately if open)."""
        ev = Event(self.env)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def register_park(self, record) -> None:
        """Register a worker's park record, once for its whole lifetime.

        The gate fires at most once, so unlike the per-round waiter
        events of old (one leaked :class:`Event` per failed round per
        worker) a park record registers a single time; records that are
        not parked when the gate opens are skipped by the park's own
        state guard.
        """
        self._waiters.append(record)

    def open(self) -> None:
        """Open the gate, waking every waiter. Idempotent."""
        if self._open:
            return
        self._open = True
        waiters, self._waiters = self._waiters, []
        for entry in waiters:
            if isinstance(entry, Event):
                entry.succeed()
            else:
                entry._fire(CAUSE_DONE)


class Mailbox:
    """An unbounded FIFO channel between simulated processes.

    Used by the runtime for the "probe the network for incoming tasks" step
    of Algorithm 1: remote places push task closures into the home place's
    mailbox and idle workers drain it.
    """

    __slots__ = ("env", "name", "_items", "_getters")

    def __init__(self, env: Environment, name: str = "mailbox") -> None:
        self.env = env
        self.name = name
        self._items: Deque = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        """Deposit ``item``; wakes the oldest *live* blocked getter if any.

        Getters abandoned by an interrupted process (their place crashed
        while they were blocked on :meth:`get`) are skipped, exactly as
        :meth:`SimLock.release` skips dead lock waiters — delivering to a
        dead process would silently lose the task.
        """
        getters = self._getters
        while getters:
            ev = getters.popleft()
            if ev._abandoned:
                continue
            ev.succeed(item)
            return
        self._items.append(item)

    def try_get(self) -> Optional[object]:
        """Non-blocking take; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def get(self) -> Event:
        """Event that triggers with the next item (blocks until one arrives)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
